"""Quickstart: train EMBSR on a synthetic micro-behavior dataset.

Generates a small JD-like e-commerce workload, trains the full EMBSR model
for a few epochs, evaluates HR/MRR on the test split, and prints top-5
recommendations for one test session.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.core import EMBSRConfig, build_embsr
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import collate
from repro.eval import TrainConfig, Trainer
from repro.utils import render_table


def main() -> None:
    # 1. Data: a synthetic stand-in for the JD-Appliances clickstream.
    gen_config = jd_appliances_config()
    sessions = generate_dataset(gen_config, num_sessions=1200, seed=7)
    dataset = prepare_dataset(
        sessions, gen_config.operations, name="jd-appliances", min_support=3
    )
    print(
        f"dataset: {len(dataset.train)} train / {len(dataset.validation)} val / "
        f"{len(dataset.test)} test sessions, {dataset.num_items} items, "
        f"{dataset.num_operations} operation types"
    )

    # 2. Model: the full EMBSR (multigraph GNN + operation-aware attention).
    model_config = EMBSRConfig(
        num_items=dataset.num_items,
        num_ops=dataset.num_operations,
        dim=24,
        seed=0,
    )
    model = build_embsr(model_config)
    print(f"EMBSR parameters: {model.num_parameters():,}")

    # 3. Train.
    trainer = Trainer(model, TrainConfig(epochs=6, lr=0.005, verbose=True, seed=1))
    trainer.fit(dataset)

    # 4. Evaluate.
    metrics = trainer.evaluate(dataset.test)
    print(render_table(["metric", "value (%)"], sorted(metrics.items())))

    # 5. Recommend for one session.
    example = dataset.test[0]
    batch = collate([example])
    scores = trainer.predict([example])[0][0]
    top5 = np.argsort(-scores)[:5] + 1
    ops = gen_config.operations
    print("\nsession micro-behaviors:")
    for item, op_seq in zip(example.macro_items, example.op_sequences):
        names = ", ".join(ops.name_of(o) for o in op_seq)
        print(f"  item {item:4d}: {names}")
    print(f"ground truth next item: {example.target}")
    print(f"EMBSR top-5: {list(map(int, top5))}")


if __name__ == "__main__":
    main()
