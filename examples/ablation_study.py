"""Ablation study: which micro-behavior pattern matters? (Table IV)

Trains the full EMBSR against its three ablations:

* EMBSR-NS — sequential patterns only (no operation-aware attention)
* EMBSR-NG — dyadic relational patterns only (no GNN layer)
* EMBSR-NF — both patterns, but concat+MLP instead of the fusion gate

Run:  python examples/ablation_study.py
"""

from __future__ import annotations

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.utils import render_table


def main() -> None:
    gen_config = jd_appliances_config()
    sessions = generate_dataset(gen_config, num_sessions=3500, seed=13)
    dataset = prepare_dataset(
        sessions, gen_config.operations, name="jd-appliances", min_support=3
    )

    runner = ExperimentRunner(dataset, ExperimentConfig(dim=32, epochs=12, lr=0.005, seed=4))
    names = ["EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "EMBSR"]
    for name in names:
        runner.run(name, verbose=True)

    metrics = ("H@10", "H@20", "M@10", "M@20")
    rows = [[name] + [runner.results[name].metrics[m] for m in metrics] for name in names]
    print()
    print(render_table(["variant"] + list(metrics), rows))
    print(
        "\nExpected shape (paper Table IV): the full model leads overall; "
        "single-pattern variants (NS, NG) trail it."
    )


if __name__ == "__main__":
    main()
