"""The paper's hyper-parameter protocol: grid search on the validation set.

Sec. V-A4: "The hyperparameters for all methods in comparison are tuned on
the validation set via grid search" over lr in {0.001 ... 0.01} and dropout
in {0 ... 0.5}. This example runs a compact version of that grid for one
model and reports the selected configuration and its test-set metrics —
note the selection uses *validation* only; the test split is touched once.

Run:  python examples/grid_search_protocol.py
"""

from __future__ import annotations

from dataclasses import replace

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner, grid_search
from repro.utils import render_table


def main() -> None:
    gen_config = jd_appliances_config()
    sessions = generate_dataset(gen_config, num_sessions=1500, seed=29)
    dataset = prepare_dataset(
        sessions, gen_config.operations, name="jd-appliances", min_support=3
    )

    base = ExperimentConfig(dim=24, epochs=4, seed=6)
    result = grid_search(
        dataset,
        "SGNN-HN",
        base,
        lrs=(0.003, 0.005, 0.008),
        dropouts=(0.1, 0.3),
        metric="M@20",
    )

    rows = [[f"{p.lr:g}", f"{p.dropout:g}", p.valid_metric] for p in result.points]
    print(render_table(["lr", "dropout", "valid M@20 (%)"], rows))
    best = result.best
    print(f"\nselected: lr={best.lr}, dropout={best.dropout} "
          f"(valid M@20 = {best.valid_metric:.2f})")

    # Final, single evaluation on the held-out test split.
    final_config = replace(base, lr=best.lr, dropout=best.dropout)
    runner = ExperimentRunner(dataset, final_config)
    test_metrics = runner.run("SGNN-HN").metrics
    print("test metrics:", {k: round(v, 2) for k, v in test_metrics.items()})


if __name__ == "__main__":
    main()
