"""Travel-search scenario: exploration-heavy sessions (trivago-like).

On hotel search, the booked item is almost never one the user already
interacted with — the paper's diagnostic is that S-POP scores exactly zero
there. This example reproduces that regime and shows micro-behavior
models gaining most on H@K (the paper's Sec. V-B discussion).

Run:  python examples/travel_exploration.py
"""

from __future__ import annotations

from repro.data import generate_dataset, prepare_dataset, trivago_config
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.utils import render_table


def main() -> None:
    gen_config = trivago_config()
    sessions = generate_dataset(gen_config, num_sessions=3500, seed=5)
    dataset = prepare_dataset(sessions, gen_config.operations, name="trivago", min_support=2)

    repeat_rate = sum(ex.target in ex.macro_items for ex in dataset.test) / len(dataset.test)
    print(f"ground truth already in session: {repeat_rate:.1%} of test sessions")

    runner = ExperimentRunner(dataset, ExperimentConfig(dim=32, epochs=12, lr=0.005, seed=3))
    names = ["S-POP", "SKNN", "SGNN-HN", "EMBSR"]
    for name in names:
        runner.run(name, verbose=True)

    rows = [
        [name] + [runner.results[name].metrics[m] for m in ("H@5", "H@10", "H@20", "M@20")]
        for name in names
    ]
    print()
    print(render_table(["model", "H@5", "H@10", "H@20", "M@20"], rows))
    spop_h20 = runner.results["S-POP"].metrics["H@20"]
    print(f"\nS-POP H@20 = {spop_h20:.2f}% — near zero, as the paper reports for trivago.")


if __name__ == "__main__":
    main()
