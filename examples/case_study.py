"""Case study: one session, four systems (the paper's Fig. 7).

Trains SGNN-Self (macro only), SGNN-Seq-Self, SGNN-Dyadic, and EMBSR, then
finds a test session where the macro-only system misses the ground truth in
its top-5 while EMBSR recalls it — and prints the session's micro-behaviors
with the competing top-5 lists.

Run:  python examples/case_study.py
"""

from __future__ import annotations

from repro.data import generate_dataset, jd_computers_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner, find_interesting_session, run_case_study
from repro.utils import render_table


def main() -> None:
    gen_config = jd_computers_config()
    sessions = generate_dataset(gen_config, num_sessions=3500, seed=17)
    dataset = prepare_dataset(
        sessions, gen_config.operations, name="jd-computers", min_support=3
    )

    runner = ExperimentRunner(dataset, ExperimentConfig(dim=32, epochs=12, lr=0.005, seed=5))
    names = ["SGNN-Self", "SGNN-Seq-Self", "SGNN-Dyadic", "EMBSR"]
    systems = {name: runner.run(name, verbose=True).recommender for name in names}

    example = find_interesting_session(
        dataset, systems, macro_only="SGNN-Self", full_model="EMBSR", k=5
    )
    if example is None:
        print("no flip-case found in the scanned test sessions; showing session 0")
        example = dataset.test[0]

    ops = gen_config.operations
    print("\nsession micro-behaviors:")
    for item, op_seq in zip(example.macro_items, example.op_sequences):
        names_str = ", ".join(ops.name_of(o) for o in op_seq)
        print(f"  item {item:4d}: {names_str}")
    print(f"ground truth next item: {example.target}\n")

    rows = [
        [row.model, " ".join(map(str, row.top_items)), row.target_rank, "yes" if row.hit_at_k else "no"]
        for row in run_case_study(example, systems, k=5)
    ]
    print(render_table(["model", "top-5 items", "target rank", "hit@5"], rows))


if __name__ == "__main__":
    main()
