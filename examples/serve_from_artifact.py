"""Boot the serving gateway from a model artifact — no dataset required.

A self-describing artifact (``docs/registry.md``) carries the model spec,
the item vocabulary, the weights, and a popularity ranking. This script
demonstrates the deployment story end to end: given nothing but the
artifact path, it boots the full HTTP gateway, ingests one event, and
fetches a recommendation over the wire. CI runs it as the deployment
smoke test.

Run:  python examples/serve_from_artifact.py [artifact.npz]

With no argument, a tiny STAMP model is trained and saved first so the
script stays self-contained.
"""

from __future__ import annotations

import json
import pathlib
import sys
import tempfile
import urllib.request

from repro.artifacts import load_artifact
from repro.serving import ServingGateway


def train_tiny_artifact(path: pathlib.Path) -> pathlib.Path:
    """Produce a throwaway artifact so the demo needs no prior step."""
    from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
    from repro.eval import ExperimentConfig, ExperimentRunner

    gen = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(gen, 250, seed=11), gen.operations,
        name="jd-appliances", min_support=2,
    )
    runner = ExperimentRunner(dataset, ExperimentConfig(dim=8, epochs=1, seed=0))
    runner.run("STAMP", verbose=True).recommender.save(path)
    print(f"trained a tiny STAMP model -> {path}")
    return path


def http_json(url: str, payload: dict | None = None) -> dict:
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read().decode())


def main() -> None:
    if len(sys.argv) > 1:
        artifact_path = pathlib.Path(sys.argv[1])
    else:
        artifact_path = pathlib.Path(tempfile.mkdtemp()) / "stamp.npz"
        train_tiny_artifact(artifact_path)

    # The bundle header tells us what we are serving and gives us a raw
    # item id to play a session with — still no dataset file anywhere.
    bundle = load_artifact(artifact_path)
    print(
        f"artifact: {bundle.spec.name} ({bundle.spec.dtype}), "
        f"{bundle.spec.num_items} items, trained on "
        f"{bundle.metadata.get('dataset', {}).get('name', '?')}"
    )
    first_item = bundle.item_ids[0]

    gateway = ServingGateway.from_artifact(artifact_path)
    with gateway:
        base = gateway.address
        print(f"gateway up at {base}")

        applied = http_json(
            f"{base}/events",
            {"session_id": "demo", "item": first_item, "operation": 0},
        )
        print(f"ingested event: {applied}")

        answer = http_json(f"{base}/recommend?session_id=demo&k=5")
        items = answer["items"]
        assert items, "gateway returned no recommendations"
        assert len(items) == 5, f"asked for 5 items, got {len(items)}"
        print(f"top-5 for 'demo' (source={answer['source']}): {items}")

    print("round-trip OK: artifact -> gateway -> /recommend, no dataset touched")


if __name__ == "__main__":
    main()
