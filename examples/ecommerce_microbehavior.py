"""E-commerce scenario: do micro-behaviors help? (the paper's Fig. 1 story)

Compares a macro-behavior model (SGNN-HN), a sequential micro-behavior
model (MKM-SR), and EMBSR on a JD-like workload where users with identical
item sequences but different operations want different next items. Also
runs the paper's Wilcoxon significance test between EMBSR and the best
baseline.

Run:  python examples/ecommerce_microbehavior.py
"""

from __future__ import annotations

from repro.data import generate_dataset, jd_computers_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner, wilcoxon_reciprocal_ranks
from repro.utils import render_table


def main() -> None:
    gen_config = jd_computers_config()
    sessions = generate_dataset(gen_config, num_sessions=3500, seed=11)
    dataset = prepare_dataset(
        sessions, gen_config.operations, name="jd-computers", min_support=3
    )

    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=32, epochs=12, lr=0.005, seed=2)
    )
    names = ["SGNN-HN", "MKM-SR", "EMBSR"]
    for name in names:
        runner.run(name, verbose=True)

    rows = [
        [name] + [runner.results[name].metrics[m] for m in ("H@5", "H@10", "H@20", "M@10", "M@20")]
        for name in names
    ]
    print()
    print(render_table(["model", "H@5", "H@10", "H@20", "M@10", "M@20"], rows))

    embsr = runner.results["EMBSR"]
    best_baseline = max(
        (runner.results[n] for n in names[:-1]), key=lambda r: r.metrics["M@20"]
    )
    test = wilcoxon_reciprocal_ranks(
        embsr.scores, best_baseline.scores, embsr.target_classes, k=20
    )
    print(f"\nEMBSR vs {best_baseline.name}: {test}")


if __name__ == "__main__":
    main()
