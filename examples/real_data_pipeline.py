"""Using the library on real event logs (CSV -> train -> evaluate).

The paper's datasets are CSV event logs; this example shows the exact
pipeline an adopter with real data would run. Since this environment is
offline, we first *export* a synthetic log to CSV in the JD layout, then
treat that file as if it came from production:

1. parse the CSV with ``load_event_log`` (column mapping configurable);
2. validate the prepared dataset (leakage / id-range checks);
3. train EMBSR and print paper-style results with best-score marking.

Run:  python examples/real_data_pipeline.py
"""

from __future__ import annotations

import csv
import tempfile
from pathlib import Path

from repro.data import (
    generate_dataset,
    jd_appliances_config,
    load_event_log,
    prepare_dataset,
    validate_dataset,
)
from repro.eval import ExperimentConfig, ExperimentRunner, format_results_markdown


def export_csv(path: Path, num_sessions: int = 3000) -> None:
    """Write a synthetic micro-behavior log in the JD CSV layout."""
    gen_config = jd_appliances_config()
    sessions = generate_dataset(gen_config, num_sessions, seed=23)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["session_id", "item_id", "operation", "timestamp"])
        for session in sessions:
            for t, event in enumerate(session.interactions):
                writer.writerow(
                    [
                        f"s{session.session_id}",
                        event.item,
                        gen_config.operations.name_of(event.operation),
                        t,
                    ]
                )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "clickstream.csv"
        export_csv(csv_path)
        print(f"event log: {csv_path.stat().st_size / 1024:.0f} KiB")

        # 1. Parse.
        sessions, vocab = load_event_log(csv_path)
        print(f"parsed {len(sessions)} sessions, {len(vocab)} operation types")

        # 2. Prepare + validate.
        dataset = prepare_dataset(sessions, vocab, name="clickstream", min_support=3)
        report = validate_dataset(dataset)
        print(report.summary())
        report.raise_if_invalid()

        # 3. Train and compare.
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=32, epochs=12, lr=0.005, seed=1))
        for name in ("S-POP", "SGNN-HN", "EMBSR"):
            runner.run(name, verbose=True)
        measured = {n: runner.results[n].metrics for n in ("S-POP", "SGNN-HN", "EMBSR")}
        print()
        print(format_results_markdown(measured))


if __name__ == "__main__":
    main()
