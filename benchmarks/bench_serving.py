"""Serving-stack benchmark: micro-batched vs. per-request scoring.

Not a paper experiment — this measures the `repro.serving` gateway layer.
A small neural model is trained on the synthetic JD-like dataset, live
sessions are seeded into a :class:`RecommenderService`, and closed-loop
worker threads then request top-K rankings two ways:

* **unbatched** — each request is its own ``top_k`` (= one batch-1 model
  call) under a service lock, the seed's serving behaviour;
* **batched** — requests go through :class:`MicroBatcher`, so up to
  ``max_batch_size`` concurrent requests share one model call.

Throughput and latency are reported per concurrency level, an HTTP
load-generator leg exercises the full gateway (cache + admission +
metrics), and everything lands in
``benchmarks/results/serving_throughput.json`` for trajectory tracking.

Run standalone (``python benchmarks/bench_serving.py``) or via pytest
(``pytest benchmarks/bench_serving.py``). ``REPRO_BENCH_FAST=1`` shrinks
the run; the ≥2x batching-speedup shape criterion is asserted at
concurrency ≥ 16 either way.

A second cell benchmarks the **million-item retrieval regime**
(``repro.retrieval``): a clustered synthetic catalogue far beyond any
trainable dataset here, scored exact vs. IVF vs. IVF-PQ, with the
recall@k-vs-latency frontier written to
``benchmarks/results/retrieval.json``. Run it alone with
``python benchmarks/bench_serving.py --retrieval-only``.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

import numpy as np

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.eval.topk import top_k_indices
from repro.retrieval import IndexSpec, build_index, recall_frontier, sample_queries
from repro.serve import RecommenderService
from repro.serving import (
    GatewayConfig,
    MicroBatcher,
    PopularityFallback,
    ServingGateway,
    run_load,
)

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SESSIONS = 400 if FAST else 1200
MODEL = "NARM"  # a realistically-sized scorer: ~0.5 ms per batch-1 call
DIM = 64
CONCURRENCY_LEVELS = (4, 16, 32)
REQUESTS_PER_WORKER = 20 if FAST else 40
LIVE_SESSIONS = 64
TOP_K = 10
MAX_WAIT_MS = 0.5  # low-latency batching window

# Retrieval cell: catalogue sizes no trainable dataset here reaches.
RETRIEVAL_ITEMS = 200_000 if FAST else 1_000_000
RETRIEVAL_DIM = 32
RETRIEVAL_CELLS = 512 if FAST else 1024
RETRIEVAL_QUERIES = 60 if FAST else 200
RETRIEVAL_K = 20
# FAST's smaller catalogue shrinks the exact matmul the ANN path is racing;
# the full-size acceptance bar is 5x.
RETRIEVAL_MIN_SPEEDUP = 2.0 if FAST else 5.0
RETRIEVAL_MIN_RECALL = 0.95


def build_stack():
    """Synthetic JD-like dataset + a small trained model + live sessions."""
    cfg = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(cfg, SESSIONS, seed=0), cfg.operations, min_support=3, name="jd"
    )
    runner = ExperimentRunner(dataset, ExperimentConfig(dim=DIM, epochs=1, seed=0))
    recommender = runner.run(MODEL).recommender
    service = RecommenderService(recommender, dataset.vocab, num_ops=dataset.num_operations)
    # Seed live sessions with real event streams from the test split.
    for i in range(LIVE_SESSIONS):
        example = dataset.test[i % len(dataset.test)]
        for item, ops in zip(example.macro_items, example.op_sequences):
            for op in ops:
                service.record(f"s{i}", dataset.vocab.decode(item), op)
    return dataset, service


def _drive(workers: int, one_request) -> dict:
    """Closed loop: ``workers`` threads each issue REQUESTS_PER_WORKER calls."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors = [0]

    def work(worker_id: int) -> None:
        local = []
        for i in range(REQUESTS_PER_WORKER):
            sid = f"s{(worker_id * REQUESTS_PER_WORKER + i) % LIVE_SESSIONS}"
            started = time.perf_counter()
            try:
                one_request(sid)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            local.append((time.perf_counter() - started) * 1000.0)
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=work, args=(w,)) for w in range(workers)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]

    return {
        "requests": len(latencies),
        "errors": errors[0],
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(pct(0.50), 3),
        "p95_ms": round(pct(0.95), 3),
        "p99_ms": round(pct(0.99), 3),
        "duration_s": round(elapsed, 3),
    }


def bench_modes(service) -> dict:
    """Batched vs unbatched throughput at each concurrency level."""
    service_lock = threading.Lock()

    def unbatched(sid: str) -> None:
        with service_lock:  # the seed's behaviour: one model call per request
            service.top_k(sid, k=TOP_K)

    out: dict[str, dict] = {}
    for workers in CONCURRENCY_LEVELS:
        batcher = MicroBatcher(
            service, max_batch_size=64, max_wait_ms=MAX_WAIT_MS, max_queue_depth=1024, lock=service_lock
        ).start()
        try:
            batched = _drive(workers, lambda sid: batcher.submit(sid, k=TOP_K).result(timeout=30))
        finally:
            batcher.stop()
        unbatched_stats = _drive(workers, unbatched)
        speedup = (
            batched["throughput_rps"] / unbatched_stats["throughput_rps"]
            if unbatched_stats["throughput_rps"]
            else float("inf")
        )
        out[str(workers)] = {
            "batched": batched,
            "unbatched": unbatched_stats,
            "speedup": round(speedup, 2),
        }
        print(
            f"concurrency {workers:>3}: unbatched {unbatched_stats['throughput_rps']:>8.1f} rps"
            f" | batched {batched['throughput_rps']:>8.1f} rps | speedup {speedup:.2f}x"
        )
    return out


def bench_gateway(dataset, service) -> dict:
    """One HTTP load-generator run against the full gateway stack."""
    gateway = ServingGateway(
        service,
        GatewayConfig(max_batch_size=64, max_wait_ms=MAX_WAIT_MS, deadline_ms=1000.0),
        fallback=PopularityFallback(dataset),
    )
    items = [dataset.vocab.decode(d) for d in range(1, min(50, dataset.num_items) + 1)]
    with gateway:
        report = run_load(
            gateway.config.host,
            gateway.port,
            items,
            num_ops=dataset.num_operations,
            workers=16,
            requests_per_worker=REQUESTS_PER_WORKER,
            event_every=4,
        )
        metrics = gateway.registry.snapshot()
    print(
        f"gateway loadgen: {report.throughput_rps:.1f} rps, "
        f"p50 {report.percentile(0.5):.2f} ms, p99 {report.percentile(0.99):.2f} ms, "
        f"cache hit rate {metrics.get('cache_hit_rate', 0.0):.2f}"
    )
    return {"loadgen": report.summary(), "metrics": metrics}


def synthetic_catalogue(n: int, dim: int, seed: int = 0) -> np.ndarray:
    """Clustered item embeddings: a mixture of Gaussians around ~sqrt(n) topics.

    Trained item tables cluster by co-purchase topic; uniform random vectors
    have no neighborhood structure at all and would understate ANN recall.
    """
    rng = np.random.default_rng(seed)
    topics = max(64, int(round(n**0.5)) // 4)
    centers = rng.standard_normal((topics, dim)) * 2.0
    vecs = centers[rng.integers(0, topics, n)] + 0.3 * rng.standard_normal((n, dim))
    return np.ascontiguousarray(vecs)


def _latency_summary(samples_ms: list[float]) -> dict:
    arr = np.array(samples_ms)
    return {
        "p50_ms": round(float(np.percentile(arr, 50)), 4),
        "p95_ms": round(float(np.percentile(arr, 95)), 4),
        "p99_ms": round(float(np.percentile(arr, 99)), 4),
        "qps": round(1000.0 / float(arr.mean()), 1),
    }


def bench_retrieval() -> dict:
    """Exact vs. IVF vs. IVF-PQ at catalogue scale, plus the recall frontier."""
    print(f"retrieval: building {RETRIEVAL_ITEMS} item catalogue (dim {RETRIEVAL_DIM})")
    vectors = synthetic_catalogue(RETRIEVAL_ITEMS, RETRIEVAL_DIM)
    queries = sample_queries(vectors, RETRIEVAL_QUERIES, seed=1)

    # Exact baseline: the full [n] matvec + top-k every request pays today.
    exact_ms = []
    exact_top = []
    for q in queries:
        started = time.perf_counter()
        exact_top.append(top_k_indices(vectors @ q, RETRIEVAL_K))
        exact_ms.append((time.perf_counter() - started) * 1000.0)
    modes = {"exact": _latency_summary(exact_ms)}
    print(f"  exact  p95 {modes['exact']['p95_ms']:.3f} ms, {modes['exact']['qps']:.0f} qps")

    specs = {
        "ivf": IndexSpec(kind="ivf", cells=RETRIEVAL_CELLS, seed=0),
        "ivfpq": IndexSpec(
            kind="ivfpq",
            cells=RETRIEVAL_CELLS,
            seed=0,
            pq_m=RETRIEVAL_DIM // 4,
            rerank=1024,
            train_size=32768 if FAST else 131072,
        ),
    }
    frontier = {}
    operating = {}
    ivf_index = None
    for name, spec in specs.items():
        started = time.perf_counter()
        index = build_index(vectors, spec)
        build_s = time.perf_counter() - started
        if name == "ivf":
            ivf_index = index
        nprobes = tuple(
            p for p in (4, 8, 16, 32, 64, 128) if p <= index.n_cells
        )
        points = recall_frontier(index, queries, nprobes, ks=(10, RETRIEVAL_K))
        frontier[name] = points
        # Operating point: the fewest probes reaching the recall bar.
        chosen = next(
            (p for p in points if p["recall"][str(RETRIEVAL_K)] >= RETRIEVAL_MIN_RECALL),
            points[-1],
        )
        # Measure the chosen point end-to-end (candidates + shortlist + re-rank).
        ann_ms = []
        for q in queries:
            started = time.perf_counter()
            cand, _ = index.candidates(q, chosen["nprobe"], min_candidates=RETRIEVAL_K)
            short = index.shortlist(q, cand)
            short[top_k_indices(index.vectors[short] @ q, RETRIEVAL_K)]
            ann_ms.append((time.perf_counter() - started) * 1000.0)
        summary = _latency_summary(ann_ms)
        summary["nprobe"] = chosen["nprobe"]
        summary["recall_at_20"] = chosen["recall"][str(RETRIEVAL_K)]
        summary["speedup_p95"] = round(modes["exact"]["p95_ms"] / summary["p95_ms"], 2)
        summary["build_s"] = round(build_s, 2)
        summary["index_bytes"] = index.memory_bytes()
        modes[name] = summary
        operating[name] = chosen
        print(
            f"  {name:6s} p95 {summary['p95_ms']:.3f} ms ({summary['speedup_p95']}x), "
            f"recall@20 {summary['recall_at_20']:.4f} at nprobe={chosen['nprobe']}, "
            f"build {build_s:.1f}s"
        )

    results = {
        "items": RETRIEVAL_ITEMS,
        "dim": RETRIEVAL_DIM,
        "cells": RETRIEVAL_CELLS,
        "queries": RETRIEVAL_QUERIES,
        "k": RETRIEVAL_K,
        "fast_mode": FAST,
        "modes": modes,
        "frontier": frontier,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "retrieval.json"
    path.write_text(json.dumps(results, indent=2))
    print(f"wrote {path}")
    return results


def run_benchmark() -> dict:
    dataset, service = build_stack()
    results = {
        "dataset": "jd-appliances-synthetic",
        "model": MODEL,
        "dim": DIM,
        "fast_mode": FAST,
        "requests_per_worker": REQUESTS_PER_WORKER,
        "concurrency": bench_modes(service),
        "gateway": bench_gateway(dataset, service),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "serving_throughput.json"
    path.write_text(json.dumps(results, indent=2))
    print(f"wrote {path}")
    return results


def test_bench_retrieval():
    """Shape criterion: ANN+re-rank keeps recall and cuts tail latency."""
    results = bench_retrieval()
    for name in ("ivf", "ivfpq"):
        mode = results["modes"][name]
        assert mode["recall_at_20"] >= RETRIEVAL_MIN_RECALL, (
            f"{name} recall@20 {mode['recall_at_20']} < {RETRIEVAL_MIN_RECALL}"
        )
        assert mode["speedup_p95"] >= RETRIEVAL_MIN_SPEEDUP, (
            f"{name} p95 speedup {mode['speedup_p95']}x < {RETRIEVAL_MIN_SPEEDUP}x"
        )
    # The frontier is monotone: more probes never hurt recall.
    for points in results["frontier"].values():
        recalls = [p["recall"][str(results["k"])] for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(recalls, recalls[1:])), recalls


def test_bench_serving_throughput():
    """Shape criterion: micro-batching >= 2x unbatched at concurrency >= 16."""
    results = run_benchmark()
    for workers in CONCURRENCY_LEVELS:
        if workers >= 16:
            level = results["concurrency"][str(workers)]
            assert level["speedup"] >= 2.0, (
                f"batching speedup {level['speedup']}x < 2x at concurrency {workers}"
            )
            assert level["batched"]["errors"] == 0
    gateway = results["gateway"]
    assert gateway["loadgen"]["errors"] == 0
    assert gateway["metrics"]["request_latency_ms"]["count"] > 0


if __name__ == "__main__":
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--retrieval-only",
        action="store_true",
        help="run only the million-item retrieval cell (writes retrieval.json)",
    )
    cli_args = parser.parse_args()
    if cli_args.retrieval_only:
        bench_retrieval()
    else:
        run_benchmark()
        bench_retrieval()
