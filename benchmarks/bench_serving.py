"""Serving-stack benchmark: micro-batched vs. per-request scoring.

Not a paper experiment — this measures the `repro.serving` gateway layer.
A small neural model is trained on the synthetic JD-like dataset, live
sessions are seeded into a :class:`RecommenderService`, and closed-loop
worker threads then request top-K rankings two ways:

* **unbatched** — each request is its own ``top_k`` (= one batch-1 model
  call) under a service lock, the seed's serving behaviour;
* **batched** — requests go through :class:`MicroBatcher`, so up to
  ``max_batch_size`` concurrent requests share one model call.

Throughput and latency are reported per concurrency level, an HTTP
load-generator leg exercises the full gateway (cache + admission +
metrics), and everything lands in
``benchmarks/results/serving_throughput.json`` for trajectory tracking.

Run standalone (``python benchmarks/bench_serving.py``) or via pytest
(``pytest benchmarks/bench_serving.py``). ``REPRO_BENCH_FAST=1`` shrinks
the run; the ≥2x batching-speedup shape criterion is asserted at
concurrency ≥ 16 either way.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.serve import RecommenderService
from repro.serving import (
    GatewayConfig,
    MicroBatcher,
    PopularityFallback,
    ServingGateway,
    run_load,
)

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

SESSIONS = 400 if FAST else 1200
MODEL = "NARM"  # a realistically-sized scorer: ~0.5 ms per batch-1 call
DIM = 64
CONCURRENCY_LEVELS = (4, 16, 32)
REQUESTS_PER_WORKER = 20 if FAST else 40
LIVE_SESSIONS = 64
TOP_K = 10
MAX_WAIT_MS = 0.5  # low-latency batching window


def build_stack():
    """Synthetic JD-like dataset + a small trained model + live sessions."""
    cfg = jd_appliances_config()
    dataset = prepare_dataset(
        generate_dataset(cfg, SESSIONS, seed=0), cfg.operations, min_support=3, name="jd"
    )
    runner = ExperimentRunner(dataset, ExperimentConfig(dim=DIM, epochs=1, seed=0))
    recommender = runner.run(MODEL).recommender
    service = RecommenderService(recommender, dataset.vocab, num_ops=dataset.num_operations)
    # Seed live sessions with real event streams from the test split.
    for i in range(LIVE_SESSIONS):
        example = dataset.test[i % len(dataset.test)]
        for item, ops in zip(example.macro_items, example.op_sequences):
            for op in ops:
                service.record(f"s{i}", dataset.vocab.decode(item), op)
    return dataset, service


def _drive(workers: int, one_request) -> dict:
    """Closed loop: ``workers`` threads each issue REQUESTS_PER_WORKER calls."""
    latencies: list[float] = []
    lock = threading.Lock()
    errors = [0]

    def work(worker_id: int) -> None:
        local = []
        for i in range(REQUESTS_PER_WORKER):
            sid = f"s{(worker_id * REQUESTS_PER_WORKER + i) % LIVE_SESSIONS}"
            started = time.perf_counter()
            try:
                one_request(sid)
            except Exception:
                with lock:
                    errors[0] += 1
                continue
            local.append((time.perf_counter() - started) * 1000.0)
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=work, args=(w,)) for w in range(workers)]
    started = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    ordered = sorted(latencies)

    def pct(q: float) -> float:
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]

    return {
        "requests": len(latencies),
        "errors": errors[0],
        "throughput_rps": round(len(latencies) / elapsed, 1),
        "p50_ms": round(pct(0.50), 3),
        "p95_ms": round(pct(0.95), 3),
        "p99_ms": round(pct(0.99), 3),
        "duration_s": round(elapsed, 3),
    }


def bench_modes(service) -> dict:
    """Batched vs unbatched throughput at each concurrency level."""
    service_lock = threading.Lock()

    def unbatched(sid: str) -> None:
        with service_lock:  # the seed's behaviour: one model call per request
            service.top_k(sid, k=TOP_K)

    out: dict[str, dict] = {}
    for workers in CONCURRENCY_LEVELS:
        batcher = MicroBatcher(
            service, max_batch_size=64, max_wait_ms=MAX_WAIT_MS, max_queue_depth=1024, lock=service_lock
        ).start()
        try:
            batched = _drive(workers, lambda sid: batcher.submit(sid, k=TOP_K).result(timeout=30))
        finally:
            batcher.stop()
        unbatched_stats = _drive(workers, unbatched)
        speedup = (
            batched["throughput_rps"] / unbatched_stats["throughput_rps"]
            if unbatched_stats["throughput_rps"]
            else float("inf")
        )
        out[str(workers)] = {
            "batched": batched,
            "unbatched": unbatched_stats,
            "speedup": round(speedup, 2),
        }
        print(
            f"concurrency {workers:>3}: unbatched {unbatched_stats['throughput_rps']:>8.1f} rps"
            f" | batched {batched['throughput_rps']:>8.1f} rps | speedup {speedup:.2f}x"
        )
    return out


def bench_gateway(dataset, service) -> dict:
    """One HTTP load-generator run against the full gateway stack."""
    gateway = ServingGateway(
        service,
        GatewayConfig(max_batch_size=64, max_wait_ms=MAX_WAIT_MS, deadline_ms=1000.0),
        fallback=PopularityFallback(dataset),
    )
    items = [dataset.vocab.decode(d) for d in range(1, min(50, dataset.num_items) + 1)]
    with gateway:
        report = run_load(
            gateway.config.host,
            gateway.port,
            items,
            num_ops=dataset.num_operations,
            workers=16,
            requests_per_worker=REQUESTS_PER_WORKER,
            event_every=4,
        )
        metrics = gateway.registry.snapshot()
    print(
        f"gateway loadgen: {report.throughput_rps:.1f} rps, "
        f"p50 {report.percentile(0.5):.2f} ms, p99 {report.percentile(0.99):.2f} ms, "
        f"cache hit rate {metrics.get('cache_hit_rate', 0.0):.2f}"
    )
    return {"loadgen": report.summary(), "metrics": metrics}


def run_benchmark() -> dict:
    dataset, service = build_stack()
    results = {
        "dataset": "jd-appliances-synthetic",
        "model": MODEL,
        "dim": DIM,
        "fast_mode": FAST,
        "requests_per_worker": REQUESTS_PER_WORKER,
        "concurrency": bench_modes(service),
        "gateway": bench_gateway(dataset, service),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "serving_throughput.json"
    path.write_text(json.dumps(results, indent=2))
    print(f"wrote {path}")
    return results


def test_bench_serving_throughput():
    """Shape criterion: micro-batching >= 2x unbatched at concurrency >= 16."""
    results = run_benchmark()
    for workers in CONCURRENCY_LEVELS:
        if workers >= 16:
            level = results["concurrency"][str(workers)]
            assert level["speedup"] >= 2.0, (
                f"batching speedup {level['speedup']}x < 2x at concurrency {workers}"
            )
            assert level["batched"]["errors"] == 0
    gateway = results["gateway"]
    assert gateway["loadgen"]["errors"] == 0
    assert gateway["metrics"]["request_latency_ms"]["count"] > 0


if __name__ == "__main__":
    run_benchmark()
