#!/usr/bin/env python
"""EMBSR-SSL ablation: contrastive-weight sweep + sparse-session robustness.

Measures the claim behind the ``EMBSR-SSL`` registry entry
(docs/objectives.md): the InfoNCE term over augmented session views acts
as a representation regularizer, and its payoff concentrates on
*low-signal* sessions — the regime the ``sparsity`` knob of the synthetic
generators (``repro.data.synthetic``) injects as "drifter" personas whose
micro-behavior carries no predictive structure.

Two splits are evaluated, deliberately data-starved (small session count,
wide model) so regularization matters:

* **dense**  — the stock JD-Appliances generator (``sparsity=0.0``);
* **sparse** — the same generator with ``sparsity=0.7``: most sessions
  are short single-operation drifts.

On each split EMBSR (pure cross-entropy) is the baseline and
``EMBSR-SSL-cl=<w>`` sweeps the contrastive weight; every cell is the
mean over several seeds. The headline number is the sparse-split HR@20
delta at the default-ish weight 0.3 — smoke mode asserts it is
non-negative (mean over seeds), which is the CI ``ssl-smoke`` gate.

Results land in ``benchmarks/results/ssl_ablation.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_ssl_ablation.py           # full sweep
    PYTHONPATH=src python benchmarks/bench_ssl_ablation.py --smoke   # CI gate
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.registry import FIXED_CL_PREFIX

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# The headline weight: the sweep's robust winner on the sparse split, and
# the weight the smoke gate asserts on.
HEADLINE_CL = 0.3

SPLITS = {"dense": 0.0, "sparse": 0.7}
METRICS = ("H@20", "M@20")


def _mean(values: list[float]) -> float:
    return float(np.mean(values))


def run_split(
    sparsity: float,
    weights: tuple[float, ...],
    seeds: tuple[int, ...],
    *,
    sessions: int,
    dim: int,
    epochs: int,
    data_seed: int,
) -> dict:
    """Baseline-vs-SSL table for one generator split, mean over seeds."""
    cfg = jd_appliances_config(sparsity=sparsity)
    dataset = prepare_dataset(
        generate_dataset(cfg, sessions, seed=data_seed),
        cfg.operations,
        min_support=2,
        name=f"jd-sparsity-{sparsity}",
    )
    models = ["EMBSR"] + [f"{FIXED_CL_PREFIX}{w}" for w in weights]
    per_seed: dict[str, list[dict[str, float]]] = {m: [] for m in models}
    for seed in seeds:
        runner = ExperimentRunner(
            dataset,
            ExperimentConfig(
                dim=dim,
                epochs=epochs,
                batch_size=64,
                seed=seed,
                dtype="float64",
                patience=epochs,
            ),
        )
        for model in models:
            result = runner.run(model)
            per_seed[model].append({m: float(result.metrics[m]) for m in METRICS})

    section: dict = {
        "sparsity": sparsity,
        "sessions": sessions,
        "num_items": dataset.num_items,
        "seeds": list(seeds),
        "models": {},
    }
    baseline = {m: _mean([r[m] for r in per_seed["EMBSR"]]) for m in METRICS}
    for model in models:
        means = {m: round(_mean([r[m] for r in per_seed[model]]), 4) for m in METRICS}
        entry = {
            "mean": means,
            "per_seed_h20": [round(r["H@20"], 4) for r in per_seed[model]],
        }
        if model != "EMBSR":
            entry["delta_h20_vs_embsr"] = round(means["H@20"] - baseline["H@20"], 4)
            entry["seed_wins_vs_embsr"] = sum(
                base["H@20"] <= ssl["H@20"]
                for base, ssl in zip(per_seed["EMBSR"], per_seed[model])
            )
        section["models"][model] = entry
        tag = model if model == "EMBSR" else f"cl={model.removeprefix(FIXED_CL_PREFIX)}"
        delta = "" if model == "EMBSR" else (
            f"  dHR={entry['delta_h20_vs_embsr']:+.2f}"
            f" wins={entry['seed_wins_vs_embsr']}/{len(seeds)}"
        )
        print(
            f"sparsity={sparsity}  {tag:10s} "
            f"HR@20={means['H@20']:6.2f}  MRR@20={means['M@20']:6.2f}{delta}"
        )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized run + gate")
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--seed", type=int, default=11, help="dataset-generation seed")
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "ssl_ablation.json"), help="output JSON"
    )
    args = parser.parse_args(argv)

    # Small + wide on purpose: ~250 sessions under a dim-32 model is the
    # data-starved regime where the contrastive regularizer has headroom.
    sessions = args.sessions or 250
    dim = args.dim or 32
    epochs = args.epochs or 8
    seeds = (3, 5, 7) if args.smoke else (3, 5, 7, 9, 11)
    weights = (HEADLINE_CL,) if args.smoke else (0.05, 0.1, 0.2, 0.3, 0.5)

    t0 = time.time()
    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": args.smoke,
            "profile": "smoke" if args.smoke else "full",
            "sessions": sessions,
            "dim": dim,
            "epochs": epochs,
            "data_seed": args.seed,
            "headline_cl_weight": HEADLINE_CL,
        },
        "splits": {},
    }
    for name, sparsity in SPLITS.items():
        payload["splits"][name] = run_split(
            sparsity,
            weights,
            seeds,
            sessions=sessions,
            dim=dim,
            epochs=epochs,
            data_seed=args.seed,
        )

    headline_model = f"{FIXED_CL_PREFIX}{HEADLINE_CL}"
    sparse = payload["splits"]["sparse"]["models"]
    delta = sparse[headline_model]["delta_h20_vs_embsr"]
    payload["headline"] = {
        "model": headline_model,
        "split": "sparse",
        "delta_h20_vs_embsr": delta,
        "seed_wins_vs_embsr": sparse[headline_model]["seed_wins_vs_embsr"],
        "seeds": len(seeds),
    }
    print(
        f"\nheadline: {headline_model} on sparse split "
        f"dHR@20={delta:+.2f} over EMBSR "
        f"({sparse[headline_model]['seed_wins_vs_embsr']}/{len(seeds)} seed wins, "
        f"{time.time() - t0:.1f}s)"
    )

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    if args.smoke and delta < 0.0:
        raise SystemExit(
            f"ssl-smoke gate: EMBSR-SSL sparse-split HR@20 delta {delta:+.2f} < 0 "
            "— the contrastive term stopped paying for itself"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
