"""Extension bench: operation importance weighting (the paper's future work).

The paper's conclusion asks "whether it would be beneficial to weight, or
filter, micro-behavior operations according to their importance". This
bench runs both ideas:

* **weight** — EMBSR + a learned importance gate per operation
  (``repro.core.extensions.WeightedOpEMBSR``);
* **filter** — EMBSR trained after dropping the low-signal "similar items"
  browsing operation from every session.

There is no paper table to match; the bench reports our measurements and
the learned importance ranking (which should place Cart/Order style
operations above browsing ones on JD-like data — the supplemental
material's intuition).
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.core import filter_operations
from repro.data import JD_OPERATIONS
from repro.eval import ExperimentRunner

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
METRICS = ["H@10", "H@20", "M@10", "M@20"]


def test_ext_operation_weighting(runners, datasets, report, benchmark):
    dataset_name = "Appliances"
    runner = runners[dataset_name]
    dataset, gen_cfg = datasets[dataset_name]

    measured = {"EMBSR": runner.run("EMBSR", verbose=True).metrics}

    # Weighted: EMBSR + learned per-operation importance (registered as
    # the "EMBSR-W" extension model).
    weighted = runner.build("EMBSR-W")
    weighted.fit(dataset)
    scores, targets = runner.score_on_test(weighted)
    from repro.eval.metrics import evaluate_scores

    measured["EMBSR-W"] = evaluate_scores(scores, targets)

    # Filtered: drop the browsing operation everywhere and retrain EMBSR.
    drop = {JD_OPERATIONS.id_of("Detail_similar")}
    filtered = replace(
        dataset,
        train=filter_operations(dataset.train, drop),
        validation=filter_operations(dataset.validation, drop),
        test=filter_operations(dataset.test, drop),
    )
    filtered_runner = ExperimentRunner(filtered, runner.config)
    measured["EMBSR-filtered"] = filtered_runner.run("EMBSR", verbose=True).metrics

    report("Ext op-weighting", dataset_name, measured, {}, METRICS)

    ops_by_importance = sorted(
        zip(
            ["<pad>"] + list(gen_cfg.operations),
            weighted.model.op_importance.values(),
        ),
        key=lambda t: -t[1],
    )
    print("\nlearned operation importance (descending):")
    for name, value in ops_by_importance:
        print(f"  {name:24s} {value:.3f}")

    benchmark.pedantic(
        runner.score_on_test, args=(weighted,), rounds=1, iterations=1
    )

    if FAST:
        return
    # The extension must at least not break the model.
    assert measured["EMBSR-W"]["M@20"] >= measured["EMBSR"]["M@20"] * 0.9
