"""Supplemental Table I: macro baselines on single-operation item sequences.

The paper re-runs the macro-behavior baselines on sequences restricted to
one "click-like" operation type (click-related events on JD, click-outs on
trivago) while keeping each session's ground truth fixed, and shows EMBSR
(which uses *all* operations) still wins.

We build the same single-operation view with
``repro.data.preprocess.single_operation_view`` and train BERT4Rec and
SGNN-HN on it; EMBSR uses the full micro-behavior data.
"""

from __future__ import annotations

import os
from dataclasses import replace

import pytest

from repro.data import JD_OPERATIONS, TRIVAGO_OPERATIONS, single_operation_view
from repro.eval import ExperimentConfig, ExperimentRunner

from paper_numbers import PAPER_SUPP1

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
METRICS = ["H@5", "H@10", "H@20", "M@5", "M@10", "M@20"]

# "Click-like" operations per dataset family (Supp. Sec. I-A).
_CLICK_OPS = {
    "Appliances": {JD_OPERATIONS.id_of(n) for n in (
        "Home2Product", "SearchList2Product", "ShopList2Product",
        "SaleList2Product", "CartList2Product",
    )},
    "Computers": {JD_OPERATIONS.id_of(n) for n in (
        "Home2Product", "SearchList2Product", "ShopList2Product",
        "SaleList2Product", "CartList2Product",
    )},
    "Trivago": {TRIVAGO_OPERATIONS.id_of("clickout item")},
}


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers", "Trivago"])
def test_supp1_single_operation_view(runners, datasets, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    dataset, _cfg = datasets[dataset_name]

    # Build the single-operation dataset view for the macro baselines.
    keep = _CLICK_OPS[dataset_name]
    view = replace(
        dataset,
        train=single_operation_view(dataset.train, dataset.operations, keep),
        validation=single_operation_view(dataset.validation, dataset.operations, keep),
        test=single_operation_view(dataset.test, dataset.operations, keep),
    )
    view_runner = ExperimentRunner(view, runner.config)

    measured = {}
    for name in ("BERT4Rec", "SGNN-HN"):
        measured[name] = view_runner.run(name, verbose=True).metrics
    measured["EMBSR"] = runner.run("EMBSR", verbose=True).metrics

    report("Supp Table I", dataset_name, measured, PAPER_SUPP1[dataset_name], METRICS)

    benchmark.pedantic(
        view_runner.score_on_test,
        args=(view_runner.results["SGNN-HN"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST:
        return

    # EMBSR with all operations beats macro baselines limited to one type.
    for metric in ("H@20", "M@20"):
        best_macro = max(measured["BERT4Rec"][metric], measured["SGNN-HN"][metric])
        assert measured["EMBSR"][metric] >= best_macro * 0.97, metric
