"""Table III: overall performance of all 12 systems on all 3 datasets.

The headline experiment. Trains every baseline and EMBSR, prints the
measured-vs-paper table per dataset, runs the paper's Wilcoxon significance
test (EMBSR vs. best baseline), and asserts the reproduction shape criteria
from DESIGN.md §4:

* EMBSR is the best system overall on every dataset;
* S-POP scores ~0 on the exploration-only trivago-like data but is
  competitive on the JD-like data;
* micro-behavior information helps (EMBSR beats the macro-only SGNN-HN).
"""

from __future__ import annotations

import os

import pytest

from repro.eval import MODEL_NAMES, wilcoxon_reciprocal_ranks
from repro.parallel import run_experiment_cells

from paper_numbers import PAPER_TABLE3

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
METRICS = ["H@5", "H@10", "H@20", "M@5", "M@10", "M@20"]


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers", "Trivago"])
def test_table3_overall(runners, report, benchmark, workers, dataset_name):
    runner = runners[dataset_name]
    # Cells are independent (each model builds from its own seeded streams),
    # so fanning them across processes changes wall-clock, never the JSON.
    run_experiment_cells(runner, MODEL_NAMES, workers=workers, verbose=True)

    measured = {name: runner.results[name].metrics for name in MODEL_NAMES}
    report(f"Table III", dataset_name, measured, PAPER_TABLE3[dataset_name], METRICS)

    # Timed region: scoring the full test split with the trained EMBSR.
    embsr = runner.results["EMBSR"]
    benchmark.pedantic(
        runner.score_on_test, args=(embsr.recommender,), rounds=1, iterations=1
    )

    # Significance (paper Sec. V-B): EMBSR vs. the best baseline on M@20.
    best_name = max(
        (n for n in MODEL_NAMES if n != "EMBSR"),
        key=lambda n: measured[n]["M@20"],
    )
    sig = wilcoxon_reciprocal_ranks(
        embsr.scores, runner.results[best_name].scores, embsr.target_classes
    )
    print(f"\nEMBSR vs best baseline ({best_name}): {sig}")

    if FAST:
        return  # smoke-scale run: tables printed, shape not asserted

    # ---- shape criteria ------------------------------------------------
    if dataset_name == "Trivago":
        # S-POP collapses without repeat targets (paper: exactly 0).
        assert measured["S-POP"]["H@20"] < 7.0
    else:
        assert measured["S-POP"]["H@20"] > 15.0

    # Micro-behaviors matter (the paper's headline): EMBSR must lead (or
    # tie) EVERY macro-only baseline — strictly on recall, within a whisker
    # on MRR (macro models pick up rank-1 repeats from recency alone, so
    # MRR is their least disadvantaged column).
    macro = ["S-POP", "SKNN", "NARM", "STAMP", "SR-GNN", "GC-SAN", "BERT4Rec", "SGNN-HN"]
    for metric in ("H@5", "H@10", "H@20", "M@10", "M@20"):
        best_macro = max(measured[n][metric] for n in macro)
        tolerance = 0.999 if metric.startswith("H") else 0.99
        assert measured["EMBSR"][metric] >= best_macro * tolerance, (
            f"EMBSR behind a macro-only baseline on {metric}: "
            f"{measured['EMBSR'][metric]:.2f} vs {best_macro:.2f}"
        )

    # Against the micro-behavior baselines (RIB/HUP/MKM-SR) EMBSR leads or
    # ties within run-to-run noise on the JD-like data. On the
    # trivago-like workload the persona signal is purely sequential over
    # only 6 operation types, which plays to HUP's hierarchical GRUs at
    # laptop scale — there EMBSR gets a wider parity band (EXPERIMENTS.md
    # "Known limits" discusses this divergence from the paper).
    band = 0.90 if dataset_name == "Trivago" else 0.96
    for metric in ("H@10", "H@20", "M@10", "M@20"):
        competitors = [measured[n][metric] for n in MODEL_NAMES if n != "EMBSR"]
        assert measured["EMBSR"][metric] >= max(competitors) * band, (
            f"EMBSR not competitive on {metric}: "
            f"{measured['EMBSR'][metric]:.2f} vs max {max(competitors):.2f}"
        )
