"""Table II: dataset statistics.

Regenerates the paper's dataset-statistics table for the three synthetic
stand-ins and checks the structural properties the paper relies on
(split ratios, operation counts, repeat-vs-exploration regimes).
"""

from __future__ import annotations

from repro.data import compute_stats

from paper_numbers import PAPER_TABLE2

_PAPER_KEY = {"Appliances": "JD-Appliances", "Computers": "JD-Computers", "Trivago": "Trivago"}


def test_table2_statistics(datasets, report, benchmark):
    measured = {}
    for name, (dataset, _cfg) in datasets.items():
        stats = benchmark.pedantic(
            compute_stats, args=(dataset,), rounds=1, iterations=1
        ) if name == "Appliances" else compute_stats(dataset)
        row = stats.as_row()
        measured[name] = {k: v for k, v in row.items() if k != "dataset"}

    paper = {k: PAPER_TABLE2[v] for k, v in _PAPER_KEY.items()}
    report(
        "Table II",
        "all",
        measured,
        paper,
        ["# train", "# validation", "# test", "# items", "# micro-behavior"],
    )

    for name, (dataset, cfg) in datasets.items():
        stats = compute_stats(dataset)
        total = stats.num_train + stats.num_validation + stats.num_test
        # 70/10/20 split (Sec. V-A1).
        assert abs(stats.num_train / total - 0.7) < 0.05
        assert abs(stats.num_test / total - 0.2) < 0.05
        # Operation vocabulary sizes: 10 for JD-like, 6 for trivago-like.
        assert stats.num_operations == (6 if name == "Trivago" else 10)
        # Micro-behaviors outnumber macro steps (merging actually occurred).
        assert stats.avg_ops_per_item > 1.0
