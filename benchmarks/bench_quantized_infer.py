#!/usr/bin/env python
"""Quantized inference benchmark: scoring latency + ranking fidelity.

Measures the two claims behind ``repro serve --compute {float32,float16,
int8}`` (``repro.compile.quantize``):

1. **Fidelity** — a small EMBSR is trained and its test split is scored
   through every compute mode; recall@20 of each reduced-precision mode
   against the exact float32 ranking must be >= 0.999 (the quantized
   modes end in an exact float32 re-rank, so misses can only come from
   the true top-k falling outside the candidate set).
2. **Latency** — the catalogue-scaling stage is microbenchmarked on a
   synthetic item matrix large enough for memory bandwidth to matter, at
   two granularities: raw scoring (``queries @ items.T`` — native float64
   vs ``QuantizedScorer.scores``) and the serving-relevant end-to-end
   score-plus-top-20 path (float64 matmul + ``top_k_indices`` vs the
   fused ``QuantizedScorer.top_k``, which reuses the exact re-rank
   candidates as the selection pool instead of re-selecting over the full
   catalogue).

Results land in ``benchmarks/results/quantized_infer.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_quantized_infer.py           # full
    PYTHONPATH=src python benchmarks/bench_quantized_infer.py --smoke   # CI
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro.compile.quantize import QuantizedScorer
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import DataLoader
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.eval.topk import top_k_indices
from repro.retrieval.factorize import factorize

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
QUANT_MODES = ("float32", "float16", "int8")


def recall_at_k(approx: np.ndarray, exact: np.ndarray, k: int = 20) -> float:
    """Mean fraction of the exact top-k recovered by the approximate top-k."""
    exact_top = np.argsort(-exact, axis=1, kind="stable")[:, :k]
    approx_top = np.argsort(-approx, axis=1, kind="stable")[:, :k]
    hits = 0
    for row in range(exact.shape[0]):
        hits += len(set(exact_top[row]) & set(approx_top[row]))
    return hits / (exact.shape[0] * k)


def fidelity_section(sessions: int, dim: int, epochs: int, seed: int) -> dict:
    """Train a small EMBSR; score its test split through every mode."""
    cfg = jd_appliances_config()
    raw = generate_dataset(cfg, sessions, seed=seed)
    dataset = prepare_dataset(raw, cfg.operations, name="bench", min_support=3, seed=seed)
    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=dim, epochs=epochs, seed=seed, patience=epochs)
    )
    recommender = runner.run("EMBSR").recommender
    fact = factorize(recommender.model)
    batches = list(DataLoader(dataset.test, batch_size=128))

    scorers = {mode: QuantizedScorer(fact, compute=mode) for mode in QUANT_MODES}
    exact32 = np.concatenate([scorers["float32"].score_batch(b) for b in batches])
    section = {
        "num_items": dataset.num_items,
        "dim": dim,
        "queries": int(exact32.shape[0]),
        "modes": {},
    }
    exact_top20 = top_k_indices(exact32, 20)
    for mode in QUANT_MODES:
        scored = np.concatenate([scorers[mode].score_batch(b) for b in batches])
        recall = recall_at_k(scored, exact32, k=20)
        fused_top = np.concatenate(
            [
                scorers[mode].top_k(scorers[mode].factorization.query_matrix(b), 20)[0]
                for b in batches
            ]
        )
        top_k_agree = float(np.mean(fused_top == exact_top20))
        section["modes"][mode] = {
            "recall_at_20_vs_float32": round(recall, 6),
            "fused_top_k_agreement": round(top_k_agree, 6),
            "storage_nbytes": scorers[mode].storage_nbytes(),
        }
        print(
            f"fidelity  {mode:8s} recall@20 vs float32 exact: {recall:.4f} "
            f"(fused top_k agreement {top_k_agree:.4f})"
        )
        if recall < 0.999:
            raise SystemExit(
                f"{mode}: recall@20 {recall:.4f} < 0.999 — the exact re-rank "
                "contract is broken"
            )
    return section


class _MatrixFactorization:
    """Minimal factorization seam around a fixed item matrix (latency bench)."""

    def __init__(self, table: np.ndarray) -> None:
        self._table = table

    def item_matrix(self) -> np.ndarray:
        return self._table

    def query_matrix(self, batch):  # pragma: no cover - not used by scores()
        raise NotImplementedError


def latency_section(num_items: int, dim: int, batch: int, repeats: int, seed: int) -> dict:
    """Microbenchmark the catalogue matmul: native float64 vs each mode."""
    rng = np.random.default_rng(seed)
    table = np.ascontiguousarray(rng.standard_normal((num_items, dim)))
    queries64 = np.ascontiguousarray(rng.standard_normal((batch, dim)))
    fact = _MatrixFactorization(table)

    def best_of(fn) -> float:
        fn()  # warm
        return min(
            (lambda s: (fn(), time.perf_counter() - s)[1])(time.perf_counter())
            for _ in range(repeats)
        )

    out64 = np.empty((batch, num_items))
    native = best_of(lambda: np.matmul(queries64, table.T, out=out64))
    native_topk = best_of(
        lambda: top_k_indices(np.matmul(queries64, table.T, out=out64), 20)
    )
    section = {
        "num_items": num_items,
        "dim": dim,
        "batch": batch,
        "repeats": repeats,
        "native_float64_ms": round(native * 1e3, 4),
        "native_float64_top20_ms": round(native_topk * 1e3, 4),
        "modes": {},
    }
    print(
        f"latency   native64 {native * 1e3:8.3f} ms/batch scores, "
        f"{native_topk * 1e3:8.3f} ms/batch top-20 (N={num_items}, d={dim})"
    )
    for mode in QUANT_MODES:
        scorer = QuantizedScorer(fact, compute=mode)
        elapsed = best_of(lambda s=scorer: s.scores(queries64))
        topk = best_of(lambda s=scorer: s.top_k(queries64, 20))
        section["modes"][mode] = {
            "ms_per_batch": round(elapsed * 1e3, 4),
            "speedup_vs_native": round(native / elapsed, 3),
            "top20_ms_per_batch": round(topk * 1e3, 4),
            "top20_speedup_vs_native": round(native_topk / topk, 3),
            "storage_nbytes": scorer.storage_nbytes(),
        }
        print(
            f"latency   {mode:8s} {elapsed * 1e3:8.3f} ms/batch scores "
            f"({native / elapsed:.2f}x), {topk * 1e3:8.3f} ms/batch top-20 "
            f"({native_topk / topk:.2f}x, "
            f"{scorer.storage_nbytes() / 1024:.0f} KiB stored)"
        )
    return section


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--epochs", type=int, default=None)
    parser.add_argument("--catalog", type=int, default=None, help="latency-bench items")
    parser.add_argument("--batch", type=int, default=128)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "quantized_infer.json"), help="output JSON"
    )
    args = parser.parse_args(argv)

    sessions = args.sessions or (300 if args.smoke else 1200)
    dim = args.dim or (16 if args.smoke else 32)
    epochs = args.epochs or (1 if args.smoke else 3)
    catalog = args.catalog or (50_000 if args.smoke else 200_000)
    repeats = args.repeats or (5 if args.smoke else 20)

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": args.smoke,
            "profile": "smoke" if args.smoke else "full",
            "seed": args.seed,
        },
        "fidelity": fidelity_section(sessions, dim, epochs, args.seed),
        "latency": latency_section(catalog, max(dim, 64), args.batch, repeats, args.seed),
    }
    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
