"""Hot-swap benchmark: two live deployments under faulty load, zero 500s.

Not a paper experiment — this measures the `repro.deploy` control plane.
A gateway serves an incumbent model while closed-loop load-generator
workers (the default persona mix: long-lived browsers + churning
visitors) hammer it over HTTP. While the load runs, the bench performs
two full hot-swaps:

1. stage an identical-weights candidate → **promote** it;
2. stage a corrupted candidate (shuffled embedding rows) → **rollback**.

Throughout, a ``batcher.score`` failpoint injects a scoring fault into
20% of model calls, so the retry/breaker machinery is live during both
swaps. The acceptance shape: every HTTP response is a 200 — no request
observes a swap, a fault, or a demoted generation.

The deployment timeline (every stage/flip/promote/rollback event plus
loadgen and metrics summaries) lands in
``benchmarks/results/deploy_timeline.json``.

Run standalone (``python benchmarks/bench_deploy.py``) or via pytest.
``REPRO_BENCH_FAST=1`` shrinks the run.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import threading
import time

import numpy as np

from repro.artifacts import load_artifact, save_artifact
from repro.deploy import (
    DeploymentConfig,
    DeploymentManager,
    DeploymentStore,
    EventRingBuffer,
)
from repro.registry import ModelSpec, build_module
from repro.reliability import armed, disarm_all, raising
from repro.serve import RecommenderService
from repro.serving import GatewayConfig, ServingGateway, run_load

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

N_ITEMS = 200
NUM_OPS = 4
DIM = 16
WORKERS = 8
REQUESTS_PER_WORKER = 150 if FAST else 400
FAULT_EVERY = 5  # 20% of model calls raise inside the batcher
CANARY_PCT = 25.0


def build_artifacts(directory: pathlib.Path):
    """v1 incumbent, v2 identical (promote), v3 corrupted (rollback)."""
    spec = ModelSpec(
        name="STAMP", family="stamp", num_items=N_ITEMS, num_ops=NUM_OPS,
        params={"dim": DIM, "seed": 0},
    )
    raw_ids = list(range(1000, 1000 + N_ITEMS))
    weights = dict(build_module(spec).state_dict())
    meta = {"popularity": raw_ids[:20]}

    corrupted = {k: v.copy() for k, v in weights.items()}
    emb = max(corrupted, key=lambda k: corrupted[k].shape[0])
    rng = np.random.default_rng(0)
    corrupted[emb] = corrupted[emb][rng.permutation(corrupted[emb].shape[0])]

    paths = {}
    for name, w in [("v1", weights), ("v2", weights), ("v3", corrupted)]:
        paths[name] = directory / f"{name}.npz"
        save_artifact(paths[name], spec=spec, weights=w, item_ids=raw_ids, metadata=meta)
    return paths, raw_ids


def bench_hot_swaps() -> dict:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="bench-deploy-"))
    paths, raw_ids = build_artifacts(workdir)

    store = DeploymentStore(workdir / "deploy")
    service = RecommenderService.from_artifact(
        paths["v1"], event_buffer=EventRingBuffer()
    )
    manager = DeploymentManager(
        service,
        store=store,
        config=DeploymentConfig(
            canary_pct=CANARY_PCT, shadow_sample_pct=100.0, auto_decide=False
        ),
        incumbent_path=str(paths["v1"]),
    )
    gateway = ServingGateway(
        service,
        GatewayConfig(max_wait_ms=2.0, deadline_ms=2000.0),
        deployment=manager,
    )

    swap_log: list[dict] = []

    def swaps():
        """Two full hot-swaps, spaced so both land mid-load."""
        for artifact, decide, label in [
            (paths["v2"], manager.promote, "promote-identical"),
            (paths["v3"], manager.rollback, "rollback-corrupted"),
        ]:
            time.sleep(0.4)
            started = time.perf_counter()
            staged = manager.stage(str(artifact), wait=True)
            time.sleep(0.3)  # let the canary take traffic
            decide(reason=f"bench:{label}")
            swap_log.append(
                {
                    "swap": label,
                    "staged": bool(staged),
                    "wall_ms": round((time.perf_counter() - started) * 1000.0, 1),
                }
            )

    with gateway:
        with armed("batcher.score", raising(RuntimeError("injected fault")), every=FAULT_EVERY):
            swapper = threading.Thread(target=swaps, daemon=True)
            swapper.start()
            report = run_load(
                gateway.config.host,
                gateway.port,
                raw_ids,
                num_ops=NUM_OPS,
                workers=WORKERS,
                requests_per_worker=REQUESTS_PER_WORKER,
            )
            swapper.join(timeout=30)
        disarm_all()
        metrics = gateway.registry.snapshot()

    assert manager.generation == 1, "the identical candidate must have promoted"
    assert manager.incumbent.param_hash == param_hash_of(paths["v2"])
    non_200 = {s: n for s, n in report.status_counts.items() if s != 200}

    out = {
        "loadgen": report.summary(),
        "faults_injected_every": FAULT_EVERY,
        "swaps": swap_log,
        "timeline": [
            {k: v for k, v in event.items() if k != "detail"}
            for event in manager.timeline
            if event["event"] != "shadow_eval"
        ],
        "lineage": [
            {"version": r["version"], "status": r["status"]} for r in store.lineage()
        ],
        "metrics": {
            key: metrics[key]
            for key in sorted(metrics)
            if key.startswith(("deploy_", "canary_", "shadow_", "scoring_", "breaker_open"))
        },
        "non_200_responses": non_200,
    }
    print(
        f"hot-swap loadgen: {report.throughput_rps:.1f} rps over {report.requests} requests, "
        f"p99 {report.percentile(0.99):.2f} ms, non-200s: {non_200 or 'none'}"
    )
    for entry in swap_log:
        print(f"  {entry['swap']}: staged={entry['staged']} in {entry['wall_ms']} ms")
    return out


def param_hash_of(path) -> str:
    from repro.deploy import param_hash

    return param_hash(load_artifact(path).weights)


def test_hot_swaps_under_faulty_load():
    RESULTS_DIR.mkdir(exist_ok=True)
    out = bench_hot_swaps()
    (RESULTS_DIR / "deploy_timeline.json").write_text(json.dumps(out, indent=2))

    # Shape criteria: the whole point of the subsystem.
    assert out["loadgen"]["errors"] == 0
    assert out["non_200_responses"] == {}
    assert [s["swap"] for s in out["swaps"]] == ["promote-identical", "rollback-corrupted"]
    events = [e["event"] for e in out["timeline"]]
    assert "promoted" in events and "rolled_back" in events
    statuses = {r["version"]: r["status"] for r in out["lineage"]}
    assert statuses[2] == "promoted" and statuses[3] == "rolled_back"


if __name__ == "__main__":
    test_hot_swaps_under_faulty_load()
    print(f"results -> {RESULTS_DIR / 'deploy_timeline.json'}")
