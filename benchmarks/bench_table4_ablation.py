"""Table IV: ablation studies (EMBSR-NS / EMBSR-NG / EMBSR-NF vs. full).

Shape criteria (paper Sec. V-C): on the JD-like datasets the full model
generally leads and the single-pattern ablations (NS, NG) clearly trail it;
EMBSR-NF sits in between.
"""

from __future__ import annotations

import os

import pytest

from repro.parallel import run_experiment_cells

from paper_numbers import PAPER_TABLE4

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
VARIANTS = ["EMBSR-NS", "EMBSR-NG", "EMBSR-NF", "EMBSR"]
METRICS = ["H@10", "H@20", "M@10", "M@20"]


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers", "Trivago"])
def test_table4_ablation(runners, report, benchmark, workers, dataset_name):
    runner = runners[dataset_name]
    run_experiment_cells(runner, VARIANTS, workers=workers, verbose=True)

    measured = {name: runner.results[name].metrics for name in VARIANTS}
    report("Table IV", dataset_name, measured, PAPER_TABLE4[dataset_name], METRICS)

    benchmark.pedantic(
        runner.score_on_test,
        args=(runner.results["EMBSR-NS"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST or dataset_name == "Trivago":
        # The paper itself reports mixed ablation results on trivago
        # ("the results are slightly more complicated", Sec. V-C).
        return

    full = measured["EMBSR"]
    # Single-pattern ablations (NS, NG) must not beat the full model beyond
    # noise. On the larger Computers catalogue the dyadic table is the most
    # data-starved component, so the sequential-only ablation (NS) gets
    # closer there — same root cause as EXPERIMENTS.md "Known limits" #1 —
    # and the band widens accordingly. EMBSR-NF keeps both patterns and the
    # paper itself reports it winning two cells, hence its loose band.
    single_band = 0.88 if dataset_name == "Computers" else 0.97
    for metric in METRICS:
        single_best = max(measured["EMBSR-NS"][metric], measured["EMBSR-NG"][metric])
        assert full[metric] >= single_best * single_band, (
            f"full EMBSR behind a single-pattern ablation on {metric}: "
            f"{full[metric]:.2f} vs {single_best:.2f}"
        )
        assert full[metric] >= measured["EMBSR-NF"][metric] * 0.93, metric
    # The relational-only ablation (NG) must clearly trail the full model
    # on MRR — the sequential pattern is indispensable (paper Sec. V-C).
    assert full["M@20"] > measured["EMBSR-NG"]["M@20"]
