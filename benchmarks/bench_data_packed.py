#!/usr/bin/env python
"""Packed-data scale benchmark: bounded-memory ingest and memmap sharing.

Two claims of ``docs/data.md`` are measured here:

1. **Bounded-memory ingest** — streaming a large synthetic corpus
   (default: one million sessions) from chunked JSONL into a packed
   ``.rpk`` file never materializes the corpus as Python objects. The
   script samples ``VmRSS`` throughout the pack and reports the peak
   against the on-disk corpus size; the peak stays roughly flat as the
   corpus grows (two-pass CSR ingest, ``repro.data.packed``).

2. **Memmap page sharing** — data-parallel workers training from a
   memmap-loaded packed dataset keep the session arrays in *file-backed*
   pages (``RssFile``, shared across all workers by the page cache)
   instead of each holding anonymous object-heap pages. Per-worker
   ``RssAnon`` is compared between the object-path baseline and the
   memmap path on the same data; the memmap workers must come in lower.

Results land in ``benchmarks/results/data_packed.json`` and a flat
summary in ``BENCH_data.json`` at the repo root.

Usage::

    PYTHONPATH=src python benchmarks/bench_data_packed.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_data_packed.py           # 1e6 sessions
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import threading
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro import nn
from repro.data import (
    generate_dataset,
    jd_appliances_config,
    pack_sessions_jsonl,
)
from repro.data.dataset import DataLoader
from repro.data.packed import load_packed
from repro.eval import ExperimentConfig, ExperimentRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = ROOT / "BENCH_data.json"


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - not a git checkout
        return "unknown"


def _proc_status(pid: int | None = None) -> dict[str, int]:
    """VmRSS / RssAnon / RssFile of ``pid`` (default: self), in kB."""
    path = f"/proc/{pid or 'self'}/status"
    out = {}
    try:
        for line in pathlib.Path(path).read_text().splitlines():
            if line.startswith(("VmRSS:", "RssAnon:", "RssFile:")):
                key, value = line.split(":", 1)
                out[key] = int(value.strip().split()[0])
    except (OSError, ValueError):  # pragma: no cover - non-Linux
        pass
    return out


class RssSampler:
    """Samples this process's VmRSS on a thread; records the peak."""

    def __init__(self, interval: float = 0.05) -> None:
        self.interval = interval
        self.peak_kb = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.is_set():
            self.peak_kb = max(self.peak_kb, _proc_status().get("VmRSS", 0))
            self._stop.wait(self.interval)

    def __enter__(self) -> "RssSampler":
        self.peak_kb = _proc_status().get("VmRSS", 0)
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)
        self.peak_kb = max(self.peak_kb, _proc_status().get("VmRSS", 0))


def generate_jsonl(path: pathlib.Path, sessions: int, seed: int, chunk: int = 20_000):
    """Write ``sessions`` synthetic sessions as JSONL in bounded chunks.

    Each chunk is generated, appended, and freed before the next — the
    writer itself never holds more than ``chunk`` sessions, so the
    corpus on disk can exceed what would fit as objects in memory.
    """
    cfg = jd_appliances_config()
    written = 0
    start = time.perf_counter()
    with path.open("w", encoding="utf-8") as sink:
        chunk_index = 0
        while written < sessions:
            n = min(chunk, sessions - written)
            batch = generate_dataset(cfg, n, seed=seed + chunk_index)
            # Re-number so session ids stay unique across chunks.
            for offset, session in enumerate(batch):
                sink.write(
                    json.dumps(
                        {
                            "session_id": written + offset,
                            "events": [[x.item, x.operation] for x in session.interactions],
                        }
                    )
                    + "\n"
                )
            written += n
            chunk_index += 1
    return cfg, time.perf_counter() - start


def worker_rss(dataset_sessions: int, seed: int, packed_path: pathlib.Path):
    """Per-worker RssAnon: object-path baseline vs memmap-loaded packed.

    Both runs train the same NARM model on the same examples with 2
    forked workers; only the storage of the training split differs.
    ``RssAnon`` counts each worker's resident anonymous pages — object
    examples land there, memmap arrays do not (they are ``RssFile``,
    shared through the page cache).
    """
    from repro.parallel import DataParallelEngine

    packed = load_packed(packed_path, mmap=True)
    out = {}
    # Memmap first: materializing the object baseline bloats the parent
    # heap, and forked workers inherit every resident page — running it
    # first would charge the object examples to the memmap workers too.
    for mode in ("memmap", "object"):
        dataset = packed.to_prepared() if mode == "object" else packed
        runner = ExperimentRunner(dataset, ExperimentConfig(dim=16, dropout=0.1, seed=seed))
        model = runner.build("NARM").build_model()
        optimizer = nn.Adam(model.parameters(), lr=0.003)
        model.train()
        loader = DataLoader(
            dataset.train, batch_size=64, shuffle=True, seed=seed,
            max_ops_per_item=6, reuse_buffers=True,
        )
        engine = DataParallelEngine(
            model, loader, workers=2, grad_shards=2, seed=seed,
            dtype="float64", num_items=dataset.num_items,
        )
        try:
            steps = min(20, max(2, len(dataset.train) // 64))
            for i in range(steps):
                optimizer.zero_grad()
                engine.compute(0, i, 0, batch=None)
                nn.clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
            stats = [_proc_status(proc.pid) for proc in engine._procs]
        finally:
            engine.shutdown()
        out[mode] = {
            "workers": len(stats),
            "rss_anon_kb_per_worker": [s.get("RssAnon", 0) for s in stats],
            "rss_file_kb_per_worker": [s.get("RssFile", 0) for s in stats],
            "vm_rss_kb_per_worker": [s.get("VmRSS", 0) for s in stats],
            "max_rss_anon_kb": max((s.get("RssAnon", 0) for s in stats), default=0),
        }
        print(
            f"workers [{mode:6s}] RssAnon/worker "
            f"{[f'{kb / 1024:.0f}MB' for kb in out[mode]['rss_anon_kb_per_worker']]}"
        )
        del dataset, runner, model, loader, engine
    out["memmap_below_object"] = bool(
        out["memmap"]["max_rss_anon_kb"] < out["object"]["max_rss_anon_kb"]
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--sessions", type=int, default=None,
                        help="corpus size for the ingest phase (default 1e6; smoke 20k)")
    parser.add_argument("--worker-sessions", type=int, default=None,
                        help="corpus size for the per-worker RSS phase (default 50k; smoke 5k)")
    parser.add_argument("--min-support", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--keep", action="store_true", help="keep the scratch JSONL/.rpk files")
    parser.add_argument("--out", default=str(RESULTS_DIR / "data_packed.json"))
    args = parser.parse_args(argv)

    sessions = args.sessions or (20_000 if args.smoke else 1_000_000)
    worker_sessions = args.worker_sessions or (20_000 if args.smoke else 100_000)

    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench_data_packed_"))
    jsonl = scratch / "corpus.jsonl"
    rpk = scratch / "corpus.rpk"
    worker_rpk = scratch / "worker.rpk"
    try:
        print(f"generating {sessions} sessions -> {jsonl} (chunked)")
        with RssSampler() as gen_rss:
            cfg, gen_sec = generate_jsonl(jsonl, sessions, args.seed)
        jsonl_bytes = jsonl.stat().st_size
        print(
            f"generated in {gen_sec:.0f}s, {jsonl_bytes / 1e6:.0f} MB on disk, "
            f"peak RSS {gen_rss.peak_kb / 1024:.0f} MB"
        )

        print("packing (two-pass streaming ingest)")
        with RssSampler() as pack_rss:
            start = time.perf_counter()
            packed = pack_sessions_jsonl(
                jsonl, cfg.operations, name="bench-1m",
                min_support=args.min_support, seed=args.seed,
                fingerprint=False,  # fingerprinting walks every example; skip at 1e6 scale
            )
            pack_sec = time.perf_counter() - start
            packed.save(rpk)
        rpk_bytes = rpk.stat().st_size
        n_examples = sum(len(s) for s in packed.splits().values())
        print(
            f"packed {n_examples} examples in {pack_sec:.0f}s "
            f"({sessions / pack_sec:.0f} sessions/s), {rpk_bytes / 1e6:.0f} MB packed, "
            f"peak RSS {pack_rss.peak_kb / 1024:.0f} MB "
            f"({pack_rss.peak_kb * 1024 / max(jsonl_bytes, 1):.2f}x the corpus bytes)"
        )
        del packed

        # A smaller corpus for the fork-heavy worker phase keeps the
        # object-path baseline affordable while the RssAnon gap is still
        # unambiguous.
        if worker_sessions == sessions:
            worker_rpk = rpk
        else:
            sub = scratch / "worker.jsonl"
            generate_jsonl(sub, worker_sessions, args.seed + 1)
            pack_sessions_jsonl(
                sub, cfg.operations, name="bench-workers",
                min_support=args.min_support, seed=args.seed, fingerprint=False,
            ).save(worker_rpk)
        workers = worker_rss(worker_sessions, args.seed, worker_rpk)
        if not workers["memmap_below_object"]:
            print("WARNING: memmap workers did not beat the object baseline")

        payload = {
            "meta": {
                "python": platform.python_version(),
                "numpy": np.__version__,
                "machine": platform.machine(),
                "git_rev": _git_rev(),
                "smoke": args.smoke,
                "seed": args.seed,
                "min_support": args.min_support,
            },
            "ingest": {
                "sessions": sessions,
                "jsonl_bytes": jsonl_bytes,
                "packed_bytes": rpk_bytes,
                "examples": n_examples,
                "generate_sec": gen_sec,
                "pack_sec": pack_sec,
                "sessions_per_sec": sessions / pack_sec,
                "peak_rss_kb_generate": gen_rss.peak_kb,
                "peak_rss_kb_pack": pack_rss.peak_kb,
                "pack_rss_over_corpus": pack_rss.peak_kb * 1024 / max(jsonl_bytes, 1),
            },
            "workers": {"sessions": worker_sessions, **workers},
        }
    finally:
        if not args.keep:
            import shutil

            shutil.rmtree(scratch, ignore_errors=True)

    out_path = pathlib.Path(args.out)
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    summary = {
        "schema": 1,
        "generated_by": "benchmarks/bench_data_packed.py",
        "git_rev": payload["meta"]["git_rev"],
        "smoke": args.smoke,
        "sessions": sessions,
        "pack_sec": round(pack_sec, 1),
        "sessions_per_sec": round(sessions / pack_sec, 1),
        "peak_rss_mb_pack": round(pack_rss.peak_kb / 1024, 1),
        "jsonl_mb": round(jsonl_bytes / 1e6, 1),
        "packed_mb": round(rpk_bytes / 1e6, 1),
        "worker_rss_anon_mb": {
            "object": round(workers["object"]["max_rss_anon_kb"] / 1024, 1),
            "memmap": round(workers["memmap"]["max_rss_anon_kb"] / 1024, 1),
        },
        "memmap_below_object": workers["memmap_below_object"],
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {SUMMARY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
