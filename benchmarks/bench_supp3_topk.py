"""Supplemental Table III: top-{1,3,5} ranked results — plus top-k perf.

Reuses the Table III fits and re-evaluates at K in {1, 3, 5}. Verifies the
paper's structural identity H@1 == M@1 and the ordering
EMBSR > SGNN-HN / MKM-SR at small K on the JD-like datasets.

``test_topk_selection_speedup`` measures the argpartition-based
:func:`repro.eval.topk.top_k_indices` against the full stable argsort at
production catalogue sizes (10k and 100k items), asserting exact
equality of the returned rankings while reporting the speedup.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.eval.metrics import evaluate_scores
from repro.eval.topk import top_k_indices

from paper_numbers import PAPER_SUPP3

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SYSTEMS = ["SGNN-HN", "MKM-SR", "EMBSR"]
METRICS = ["H@1", "H@3", "H@5", "M@3", "M@5"]


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers", "Trivago"])
def test_supp3_top_ranked(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    measured = {}
    for name in SYSTEMS:
        result = runner.run(name, verbose=True)
        metrics = benchmark.pedantic(
            evaluate_scores,
            args=(result.scores, result.target_classes),
            kwargs={"ks": (1, 3, 5)},
            rounds=1,
            iterations=1,
        ) if name == "EMBSR" else evaluate_scores(
            result.scores, result.target_classes, ks=(1, 3, 5)
        )
        measured[name] = metrics

    report("Supp Table III", dataset_name, measured, PAPER_SUPP3[dataset_name], METRICS)

    # Structural identity the paper points out: H@1 == M@1.
    for name in SYSTEMS:
        assert measured[name]["H@1"] == pytest.approx(measured[name]["M@1"])

    if FAST or dataset_name == "Trivago":
        # Paper: on trivago EMBSR is *not* best at K = 1 (Imp. = -2.66%).
        return

    assert measured["EMBSR"]["M@5"] >= max(
        measured["SGNN-HN"]["M@5"], measured["MKM-SR"]["M@5"]
    ) * 0.96


# --------------------------------------------------------------- topk perf
def _full_argsort_topk(scores: np.ndarray, k: int) -> np.ndarray:
    return np.argsort(-scores, axis=1, kind="stable")[:, :k]


@pytest.mark.parametrize("num_items", [10_000, 100_000])
def test_topk_selection_speedup(num_items):
    """Exact-equality + wall-clock comparison at catalogue scale."""
    batch = 64 if not FAST else 16
    k = 20
    rounds = 5 if not FAST else 2
    rng = np.random.default_rng(7)
    # Quantize so ties actually occur: the stable tie-break is part of the
    # contract being benchmarked, not just the speed.
    scores = np.round(rng.normal(size=(batch, num_items)).astype(np.float32), 2)

    expected = _full_argsort_topk(scores, k)
    np.testing.assert_array_equal(top_k_indices(scores, k), expected)

    def best_of(fn) -> float:
        times = []
        for _ in range(rounds):
            start = time.perf_counter()
            fn(scores, k)
            times.append(time.perf_counter() - start)
        return min(times)

    t_full = best_of(_full_argsort_topk)
    t_part = best_of(top_k_indices)
    speedup = t_full / t_part
    print(
        f"\ntop-{k} over {num_items:,} items x {batch} rows: "
        f"argsort {t_full * 1e3:.2f}ms vs argpartition {t_part * 1e3:.2f}ms "
        f"-> {speedup:.1f}x"
    )

    out = pathlib.Path(__file__).parent / "results"
    out.mkdir(exist_ok=True)
    result_path = out / f"topk_speedup_{num_items}.json"
    result_path.write_text(
        json.dumps(
            {
                "num_items": num_items,
                "batch": batch,
                "k": k,
                "argsort_ms": t_full * 1e3,
                "argpartition_ms": t_part * 1e3,
                "speedup": speedup,
            },
            indent=2,
        )
    )

    # Selection should never be slower than the full sort at these sizes;
    # keep the floor loose so CI jitter doesn't flake.
    assert speedup > 1.0
