"""Supplemental Table III: top-{1,3,5} ranked results.

Reuses the Table III fits and re-evaluates at K in {1, 3, 5}. Verifies the
paper's structural identity H@1 == M@1 and the ordering
EMBSR > SGNN-HN / MKM-SR at small K on the JD-like datasets.
"""

from __future__ import annotations

import os

import pytest

from repro.eval.metrics import evaluate_scores

from paper_numbers import PAPER_SUPP3

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SYSTEMS = ["SGNN-HN", "MKM-SR", "EMBSR"]
METRICS = ["H@1", "H@3", "H@5", "M@3", "M@5"]


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers", "Trivago"])
def test_supp3_top_ranked(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    measured = {}
    for name in SYSTEMS:
        result = runner.run(name, verbose=True)
        metrics = benchmark.pedantic(
            evaluate_scores,
            args=(result.scores, result.target_classes),
            kwargs={"ks": (1, 3, 5)},
            rounds=1,
            iterations=1,
        ) if name == "EMBSR" else evaluate_scores(
            result.scores, result.target_classes, ks=(1, 3, 5)
        )
        measured[name] = metrics

    report("Supp Table III", dataset_name, measured, PAPER_SUPP3[dataset_name], METRICS)

    # Structural identity the paper points out: H@1 == M@1.
    for name in SYSTEMS:
        assert measured[name]["H@1"] == pytest.approx(measured[name]["M@1"])

    if FAST or dataset_name == "Trivago":
        # Paper: on trivago EMBSR is *not* best at K = 1 (Imp. = -2.66%).
        return

    assert measured["EMBSR"]["M@5"] >= max(
        measured["SGNN-HN"]["M@5"], measured["MKM-SR"]["M@5"]
    ) * 0.96
