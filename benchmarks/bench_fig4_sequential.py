"""Fig. 4: utility of the *sequential* pattern of micro-behaviors.

Compares SGNN-Self (no micro info), SGNN-Seq-Self (+ micro-op GRU in the
GNN), RNN-Self (flat RNN over item+op embeddings) and full EMBSR on the two
JD-like datasets (the paper uses the JD datasets here because they have
more operation types).

Shape criteria: EMBSR best overall; SGNN-Seq-Self >= SGNN-Self in general;
RNN-Self worst on M@K.
"""

from __future__ import annotations

import os

import pytest

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
VARIANTS = ["SGNN-Self", "SGNN-Seq-Self", "RNN-Self", "EMBSR"]
METRICS = ["H@10", "H@20", "M@10", "M@20"]

# Fig. 4 is a bar plot; values below are read off the bars (approximate) for
# JD-Appliances, to give a sense of the paper's ordering.
PAPER_FIG4 = {
    "Appliances": {
        "SGNN-Self": {"H@10": 47.2, "H@20": 59.5, "M@10": 22.7, "M@20": 23.6},
        "SGNN-Seq-Self": {"H@10": 48.3, "H@20": 60.4, "M@10": 23.9, "M@20": 24.8},
        "RNN-Self": {"H@10": 44.8, "H@20": 57.0, "M@10": 19.8, "M@20": 20.7},
        "EMBSR": {"H@10": 49.57, "H@20": 61.64, "M@10": 25.21, "M@20": 26.06},
    },
    "Computers": {
        "SGNN-Self": {"H@10": 32.2, "H@20": 43.9, "M@10": 13.1, "M@20": 13.9},
        "SGNN-Seq-Self": {"H@10": 33.3, "H@20": 44.9, "M@10": 14.2, "M@20": 15.0},
        "RNN-Self": {"H@10": 30.5, "H@20": 42.0, "M@10": 11.6, "M@20": 12.4},
        "EMBSR": {"H@10": 34.75, "H@20": 46.29, "M@10": 15.38, "M@20": 16.18},
    },
}


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers"])
def test_fig4_sequential_patterns(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    for name in VARIANTS:
        runner.run(name, verbose=True)

    measured = {name: runner.results[name].metrics for name in VARIANTS}
    report("Fig 4", dataset_name, measured, PAPER_FIG4[dataset_name], METRICS)

    benchmark.pedantic(
        runner.score_on_test,
        args=(runner.results["SGNN-Seq-Self"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST:
        return

    # Micro-behavior information must help: the best micro-aware variant
    # beats the micro-blind SGNN-Self.
    for metric in ("H@20", "M@20"):
        micro_best = max(measured[v][metric] for v in ("SGNN-Seq-Self", "EMBSR"))
        assert micro_best > measured["SGNN-Self"][metric], metric
    # RNN-Self trails the GNN variants on MRR (paper Sec. V-D).
    assert measured["RNN-Self"]["M@20"] < measured["EMBSR"]["M@20"]
