"""Substrate micro-benchmarks: autograd / nn primitive throughput.

Not a paper experiment — these measure the NumPy autograd engine that
replaces PyTorch (DESIGN.md §2), so regressions in the substrate are
visible independently of recommendation quality. Sizes mirror the shapes
the EMBSR benchmarks actually use (batch 64, d=32, sessions of ~10 macro /
~25 micro steps).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor
from repro.core import EMBSRConfig, build_embsr
from repro.data import MacroSession, collate
from repro.graphs import BatchGraph

B, N, T, D = 64, 10, 25, 32


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(0)


def test_perf_matmul_forward_backward(benchmark, rng):
    a = Tensor(rng.normal(size=(B, T, D)), requires_grad=True)
    w = Tensor(rng.normal(size=(D, D)), requires_grad=True)

    def step():
        a.zero_grad()
        w.zero_grad()
        ((a @ w).tanh().sum()).backward()

    benchmark(step)


def test_perf_gru_sequence(benchmark, rng):
    gru = nn.GRU(D, D, rng=rng)
    x = Tensor(rng.normal(size=(B, N, D)))
    mask = np.ones((B, N))

    def step():
        gru.zero_grad()
        _, final = gru(x, mask)
        final.sum().backward()

    benchmark(step)


def test_perf_operation_aware_attention(benchmark, rng):
    from repro.core import OperationAwareSelfAttention

    attn = OperationAwareSelfAttention(D, num_ops=10, max_len=T + 1, dropout=0.0, rng=rng)
    x = Tensor(rng.normal(size=(B, T, D)), requires_grad=True)
    ops = rng.integers(1, 11, size=(B, T))
    mask = np.ones((B, T))
    weights = Tensor(rng.normal(size=(B, T, D)))

    def step():
        attn.zero_grad()
        (attn(x, ops, mask) * weights).sum().backward()

    benchmark(step)


def test_perf_embsr_train_step(benchmark, rng):
    config = EMBSRConfig(num_items=500, num_ops=10, dim=D, dropout=0.0, seed=0)
    model = build_embsr(config)
    opt = nn.Adam(model.parameters(), lr=1e-3)
    examples = []
    for _ in range(B):
        items = list(dict.fromkeys(rng.integers(1, 501, size=6).tolist()))
        ops = [rng.integers(0, 10, size=rng.integers(1, 4)).tolist() for _ in items]
        examples.append(MacroSession(items, ops, target=int(rng.integers(1, 501))))
    batch = collate(examples)
    graph = BatchGraph.from_batch(batch)

    def step():
        opt.zero_grad()
        loss = nn.cross_entropy(model(batch, graph=graph), batch.target_classes)
        loss.backward()
        opt.step()

    benchmark(step)


def test_perf_failpoint_disarmed(benchmark):
    """A disarmed failpoint is one falsy dict check — the trainer pays one
    per batch, so it must stay indistinguishable from a no-op."""
    from repro.reliability import disarm_all, failpoint

    disarm_all()

    def step():
        for _ in range(1000):
            failpoint("trainer.after_batch")

    benchmark(step)


def test_perf_batch_graph_construction(benchmark, rng):
    examples = []
    for _ in range(B):
        items = list(dict.fromkeys(rng.integers(1, 100, size=8).tolist()))
        ops = [rng.integers(0, 10, size=2).tolist() for _ in items]
        examples.append(MacroSession(items, ops, target=1))
    batch = collate(examples)
    benchmark(BatchGraph.from_batch, batch)
