"""Fig. 7: case study — one session, four systems, top-5 lists.

Reproduces the paper's qualitative analysis: find a test session where the
micro-blind SGNN-Self misses the ground truth in its top-5 while EMBSR
recalls it, and print the session's micro-behaviors next to each system's
top-5 list.
"""

from __future__ import annotations

import os

import pytest

from repro.eval import find_interesting_session, run_case_study
from repro.utils import render_table

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
SYSTEMS = ["SGNN-Self", "SGNN-Seq-Self", "SGNN-Dyadic", "EMBSR"]


def test_fig7_case_study(runners, datasets, benchmark):
    dataset_name = "Computers"  # the paper's case comes from JD-Computers
    runner = runners[dataset_name]
    dataset, gen_cfg = datasets[dataset_name]
    systems = {name: runner.run(name, verbose=True).recommender for name in SYSTEMS}

    example = benchmark.pedantic(
        find_interesting_session,
        args=(dataset, systems),
        kwargs={"macro_only": "SGNN-Self", "full_model": "EMBSR", "k": 5},
        rounds=1,
        iterations=1,
    )

    if example is None:
        if FAST:
            pytest.skip("no flip-case at smoke scale")
        example = dataset.test[0]

    ops = gen_cfg.operations
    print("\n=== Fig 7 — case study session (micro-behaviors) ===")
    for item, op_seq in zip(example.macro_items, example.op_sequences):
        print(f"  item {item:4d}: {', '.join(ops.name_of(o) for o in op_seq)}")
    print(f"  ground truth next item: {example.target}")

    rows = [
        [r.model, " ".join(map(str, r.top_items)), r.target_rank, "yes" if r.hit_at_k else "no"]
        for r in run_case_study(example, systems, k=5)
    ]
    print(render_table(["model", "top-5", "target rank", "hit@5"], rows))

    if not FAST and example is not dataset.test[0]:
        by_model = {r.model: r for r in run_case_study(example, systems, k=5)}
        # The defining property of the paper's case: micro-behavior
        # awareness flips a top-5 miss into a hit.
        assert not by_model["SGNN-Self"].hit_at_k
        assert by_model["EMBSR"].hit_at_k
