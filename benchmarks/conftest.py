"""Shared fixtures for the benchmark suite.

Datasets are generated once per pytest session; trained systems are cached
inside each dataset's :class:`ExperimentRunner`, so a model fitted for the
Table III bench is reused by the ablation / figure benches. Training is
deliberately *outside* the timed region — ``benchmark`` measures test-set
scoring, while the recommendation-quality tables are printed and written to
``benchmarks/results/*.json`` for EXPERIMENTS.md.

Set ``REPRO_BENCH_FAST=1`` for a quick smoke-scale run (minutes instead of
tens of minutes; shape criteria are not expected to hold at that scale).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.data import (
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    prepare_dataset,
    trivago_config,
)
from repro.eval import ExperimentConfig, ExperimentRunner
from repro.utils import render_table

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"

SCALE = {
    "sessions": {"Appliances": 700, "Computers": 700, "Trivago": 600} if FAST
    else {"Appliances": 5000, "Computers": 5000, "Trivago": 4000},
    "epochs": 3 if FAST else 14,
    "patience": 2 if FAST else 5,
    "dim": 16 if FAST else 32,
    "lr": 0.005,
    "seed": 0,
}

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_WORKERS", "1")),
        help="fan independent model×dataset cells across N processes "
        "(repro.parallel.run_experiment_cells); results are byte-identical "
        "to --workers 1",
    )


@pytest.fixture(scope="session")
def workers(request):
    """Process count for benchmark cell fan-out (--workers N)."""
    return max(1, int(request.config.getoption("--workers")))

_GENERATORS = {
    "Appliances": (jd_appliances_config, 3),
    "Computers": (jd_computers_config, 3),
    "Trivago": (trivago_config, 2),
}


def _build_dataset(name: str):
    config_fn, min_support = _GENERATORS[name]
    cfg = config_fn()
    sessions = generate_dataset(cfg, SCALE["sessions"][name], seed=SCALE["seed"])
    return prepare_dataset(
        sessions, cfg.operations, name=name, min_support=min_support,
        seed=SCALE["seed"],
    ), cfg


@pytest.fixture(scope="session")
def datasets():
    """All three prepared datasets plus their generator configs."""
    return {name: _build_dataset(name) for name in _GENERATORS}


@pytest.fixture(scope="session")
def runners(datasets):
    """One cached ExperimentRunner per dataset."""
    out = {}
    for name, (dataset, _cfg) in datasets.items():
        out[name] = ExperimentRunner(
            dataset,
            ExperimentConfig(
                dim=SCALE["dim"],
                epochs=SCALE["epochs"],
                lr=SCALE["lr"],
                patience=SCALE["patience"],
                seed=SCALE["seed"],
            ),
        )
    return out


@pytest.fixture(scope="session")
def report():
    """Print a measured-vs-paper table and persist it as JSON."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(experiment: str, dataset: str, measured: dict, paper: dict, metrics: list[str]):
        headers = ["model"] + [f"{m} (ours)" for m in metrics] + [f"{m} (paper)" for m in metrics]
        rows = []
        for model in measured:
            row = [model]
            row += [measured[model].get(m, float("nan")) for m in metrics]
            row += [paper.get(model, {}).get(m, float("nan")) for m in metrics]
            rows.append(row)
        print(f"\n=== {experiment} — {dataset} (ours vs. paper) ===")
        print(render_table(headers, rows))
        path = RESULTS_DIR / f"{experiment.lower().replace(' ', '_')}_{dataset.lower()}.json"
        path.write_text(json.dumps({"measured": measured, "paper": paper}, indent=2))

    return _report
