"""Supplemental Table II: isolating the dyadic idea on SGNN-HN.

The paper grafts the dyadic relational encoding onto the strongest macro
baseline (SGNN-HN) — that model is exactly our ``SGNN-Dyadic`` variant
(star GNN without the micro-op GRU + operation-aware attention) — and shows
it beats vanilla SGNN-HN, with the full EMBSR still ahead.
"""

from __future__ import annotations

import os

import pytest

from paper_numbers import PAPER_SUPP2

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
METRICS = ["H@5", "H@10", "H@20", "M@5", "M@10", "M@20"]
_NAME_MAP = {"SGNN-HN": "SGNN-HN", "EMBSR-Dyadic": "SGNN-Dyadic", "EMBSR": "EMBSR"}


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers"])
def test_supp2_dyadic_on_sgnn(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    measured = {}
    for paper_name, our_name in _NAME_MAP.items():
        measured[paper_name] = runner.run(our_name, verbose=True).metrics

    report("Supp Table II", dataset_name, measured, PAPER_SUPP2[dataset_name], METRICS)

    benchmark.pedantic(
        runner.score_on_test,
        args=(runner.results["SGNN-Dyadic"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST:
        return

    # The dyadic graft improves on vanilla SGNN-HN. At laptop scale the
    # dominant, stable gain shows on hit rate (the graft recalls targets
    # SGNN-HN misses entirely); MRR moves within the seed-noise band, so it
    # gets a parity assertion (same situation as Fig. 5 — see
    # EXPERIMENTS.md "Known limit").
    assert measured["EMBSR-Dyadic"]["H@20"] > measured["SGNN-HN"]["H@20"]
    assert measured["EMBSR-Dyadic"]["H@10"] > measured["SGNN-HN"]["H@10"]
    assert measured["EMBSR-Dyadic"]["M@20"] >= measured["SGNN-HN"]["M@20"] * 0.94
