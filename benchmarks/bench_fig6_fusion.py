"""Fig. 6: utility of the fusion gating mechanism.

Sweeps a fixed fusion weight beta in {0, 0.2, 0.4, 0.6, 0.8, 1} and
compares against the learned gate.

Shape criteria (paper Sec. V-F): beta = 0 (recent interest only) is the
worst; the learned gate is at least competitive with the best fixed beta.
"""

from __future__ import annotations

import os

import pytest

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
BETAS = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
METRICS = ["H@10", "H@20", "M@10", "M@20"]

# Fig. 6 line-plot values (approximate, JD-Appliances H@20 / M@20 trend).
PAPER_FIG6 = {
    "Appliances": {
        "beta=0.0": {"H@20": 57.5, "M@20": 23.4},
        "beta=0.2": {"H@20": 60.2, "M@20": 25.0},
        "beta=0.4": {"H@20": 60.9, "M@20": 25.5},
        "beta=0.6": {"H@20": 61.1, "M@20": 25.7},
        "beta=0.8": {"H@20": 61.2, "M@20": 25.8},
        "beta=1.0": {"H@20": 60.8, "M@20": 25.6},
        "gate": {"H@20": 61.64, "M@20": 26.06},
    },
}


@pytest.mark.parametrize("dataset_name", ["Appliances"])
def test_fig6_fusion_gate(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    names = [f"EMBSR-beta={beta}" for beta in BETAS]
    for name in names:
        runner.run(name, verbose=True)
    runner.run("EMBSR", verbose=True)  # the learned gate (cached if present)

    measured = {
        f"beta={beta}": runner.results[f"EMBSR-beta={beta}"].metrics for beta in BETAS
    }
    measured["gate"] = runner.results["EMBSR"].metrics
    report("Fig 6", dataset_name, measured, PAPER_FIG6.get(dataset_name, {}), ["H@20", "M@20"])

    benchmark.pedantic(
        runner.score_on_test,
        args=(runner.results["EMBSR-beta=0.4"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST:
        return

    # beta = 0 (recent interest only) is the worst configuration.
    for metric in ("H@20", "M@20"):
        others = [measured[f"beta={b}"][metric] for b in BETAS[1:]]
        assert measured["beta=0.0"][metric] <= max(others), metric
    # The learned gate is competitive with the best fixed beta.
    best_fixed = max(measured[f"beta={b}"]["M@20"] for b in BETAS)
    assert measured["gate"]["M@20"] >= best_fixed * 0.95
