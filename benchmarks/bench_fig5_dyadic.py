"""Fig. 5: utility of the *dyadic relational* pattern of micro-behaviors.

Compares SGNN-Abs-Self (absolute operation embeddings in standard
self-attention) against SGNN-Dyadic (operation-aware attention with pair
encodings), plus SGNN-Self / RNN-Self / EMBSR context.

Shape criteria: SGNN-Dyadic beats SGNN-Abs-Self (the paper's headline for
this figure — pair-wise semantics matter beyond absolute operation
identity), and both beat the micro-blind SGNN-Self.

The synthetic JD-like personas are constructed as an XOR in operation-pair
space (identical per-position operation marginals, different pairings — see
``repro.data.synthetic._jd_personas``), which is precisely the structure
where pair encodings carry information that absolute embeddings plus
positions cannot express per item. This mirrors the paper's claim that real
micro-behavior logs contain pair-level semantics.
"""

from __future__ import annotations

import os

import pytest

FAST = os.environ.get("REPRO_BENCH_FAST") == "1"
VARIANTS = ["SGNN-Self", "RNN-Self", "SGNN-Abs-Self", "SGNN-Dyadic", "EMBSR"]
METRICS = ["H@10", "H@20", "M@10", "M@20"]

# Fig. 5 bar-plot values (approximate, JD datasets).
PAPER_FIG5 = {
    "Appliances": {
        "SGNN-Self": {"H@10": 47.2, "H@20": 59.5, "M@10": 22.7, "M@20": 23.6},
        "RNN-Self": {"H@10": 44.8, "H@20": 57.0, "M@10": 19.8, "M@20": 20.7},
        "SGNN-Abs-Self": {"H@10": 47.8, "H@20": 60.0, "M@10": 23.3, "M@20": 24.2},
        "SGNN-Dyadic": {"H@10": 48.6, "H@20": 60.8, "M@10": 24.4, "M@20": 25.3},
        "EMBSR": {"H@10": 49.57, "H@20": 61.64, "M@10": 25.21, "M@20": 26.06},
    },
    "Computers": {
        "SGNN-Self": {"H@10": 32.2, "H@20": 43.9, "M@10": 13.1, "M@20": 13.9},
        "RNN-Self": {"H@10": 30.5, "H@20": 42.0, "M@10": 11.6, "M@20": 12.4},
        "SGNN-Abs-Self": {"H@10": 32.8, "H@20": 44.2, "M@10": 13.7, "M@20": 14.5},
        "SGNN-Dyadic": {"H@10": 33.9, "H@20": 45.2, "M@10": 14.9, "M@20": 15.7},
        "EMBSR": {"H@10": 34.75, "H@20": 46.29, "M@10": 15.38, "M@20": 16.18},
    },
}


@pytest.mark.parametrize("dataset_name", ["Appliances", "Computers"])
def test_fig5_dyadic_patterns(runners, report, benchmark, dataset_name):
    runner = runners[dataset_name]
    for name in VARIANTS:
        runner.run(name, verbose=True)

    measured = {name: runner.results[name].metrics for name in VARIANTS}
    report("Fig 5", dataset_name, measured, PAPER_FIG5[dataset_name], METRICS)

    benchmark.pedantic(
        runner.score_on_test,
        args=(runner.results["SGNN-Dyadic"].recommender,),
        rounds=1,
        iterations=1,
    )

    if FAST:
        return

    # Dyadic encoding beats the micro-blind baseline on every metric
    # (tiny tolerance: H@20 saturates on repeat-heavy JD-like data).
    for metric in METRICS:
        assert measured["SGNN-Dyadic"][metric] >= measured["SGNN-Self"][metric] * 0.99, metric
    assert measured["SGNN-Dyadic"]["M@20"] > measured["SGNN-Self"]["M@20"]
    # Pair-wise semantics vs. absolute operation embeddings: the paper's
    # margin is ~1 point, which at laptop scale sits inside our seed-noise
    # band. A 121-row relation table simply needs more than a few thousand
    # sessions to dominate an 11-row absolute table — the assertion
    # therefore demands parity within the noise band; the printed table
    # records the exact values (EXPERIMENTS.md discusses this limit).
    assert measured["SGNN-Dyadic"]["M@20"] >= measured["SGNN-Abs-Self"]["M@20"] * 0.94
