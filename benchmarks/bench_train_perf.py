#!/usr/bin/env python
"""Training-throughput benchmark: steps/sec and tokens/sec per model.

Unlike the paper-figure benches (which measure recommendation *quality*),
this script measures how fast the pure-NumPy substrate can push trainer
steps for EMBSR and two representative baselines (NARM, SR-GNN) on the
synthetic JD-like data. It is the repo's training-perf trajectory: CI runs
it with ``--smoke`` and uploads the JSON, and ``docs/performance.md``
explains how to read the output.

Modes
-----
``fused``
    The default code path: fused kernels (``repro.perf.fused``) on.
``unfused``
    Fusion disabled via ``repro.perf.set_fusion(False)`` — the op-by-op
    composition the substrate used before the perf PR. On a tree that
    predates ``repro.perf`` only this mode exists (used to record the
    committed ``train_perf_baseline.json``).

The timed region replicates ``Trainer._train_batch`` without the
watchdog: zero_grad -> forward -> cross-entropy -> backward -> clip ->
Adam step. ``tokens/sec`` counts valid *micro-behavior events*
(``micro_mask.sum()``) so the number is comparable across models.

A convergence check trains the same model for a fixed number of steps in
both modes (same seed, same batches, float64) and records the absolute
final-loss difference; the acceptance bar is <= 1e-6.

With ``--workers N`` the script additionally benchmarks the data-parallel
engine (``repro.parallel``) against the single-process shard executor on
the same grid, records the speedup, and *asserts bit-identical final
parameters* (``max_abs_param_diff`` must be exactly 0 — the determinism
contract of ``docs/performance.md`` § Parallelism). The observed speedup
is only meaningful when the machine grants at least ``N`` cores; the
available core count is recorded alongside.

With ``--packed`` (and optionally ``--prefetch``) the script additionally
benchmarks the packed data pipeline (``repro.data.packed``): loop vs
vectorized collate per batch, and end-to-end *live-loader* steps/sec —
collation inside the timed region — object path vs packed columnar, on a
longer-session dataset where the data path is visible next to compute.

Every run also writes a stable, flat summary to ``BENCH_train.json`` at
the repository root (schema 3: steps/sec, tokens/sec, collate ms/batch,
workers, dtype, git rev) so external trackers can diff training
throughput across commits without parsing the full payload.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_train_perf.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_train_perf.py --workers 4
    PYTHONPATH=src python benchmarks/bench_train_perf.py --packed --prefetch
    PYTHONPATH=src python benchmarks/bench_train_perf.py \
        --out benchmarks/results/train_perf_baseline.json           # seed tree
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro import nn
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import DataLoader
from repro.eval import ExperimentConfig, ExperimentRunner

try:  # absent on the pre-optimization tree that records the baseline
    from repro import perf
except ImportError:  # pragma: no cover - exercised only on the seed tree
    perf = None

try:  # absent on trees that predate the compiled-step PR
    from repro.compile.step import CompileEngine
except ImportError:  # pragma: no cover - exercised only on older trees
    CompileEngine = None

try:  # absent on trees that predate the packed-data PR
    from repro.data.packed import pack_dataset
except ImportError:  # pragma: no cover - exercised only on older trees
    pack_dataset = None

MODELS = ("EMBSR", "NARM", "SR-GNN")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SUMMARY_PATH = ROOT / "BENCH_train.json"  # stable flat summary for trackers


def _git_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=ROOT, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except Exception:  # pragma: no cover - not a git checkout
        return "unknown"


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _set_fusion(enabled: bool) -> None:
    if perf is not None:
        perf.set_fusion(enabled)


def build_batches(sessions: int, batch_size: int, seed: int = 0, bucket: bool = False):
    cfg = jd_appliances_config()
    raw = generate_dataset(cfg, sessions, seed=seed)
    dataset = prepare_dataset(raw, cfg.operations, name="bench", min_support=3, seed=seed)
    kwargs = {"bucket_lengths": True} if bucket else {}
    loader = DataLoader(
        dataset.train, batch_size=batch_size, shuffle=True, seed=seed,
        max_ops_per_item=6, **kwargs,
    )
    return dataset, list(loader)


def build_model(dataset, name: str, dim: int, seed: int) -> nn.Module:
    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=dim, dropout=0.1, seed=seed)
    )
    recommender = runner.build(name)
    return recommender.build_model()


def train_steps(
    model, batches, steps: int, lr: float = 0.003, grad_clip: float = 5.0, engine=None
):
    """Run ``steps`` trainer steps; returns (elapsed_seconds, losses).

    With ``engine`` (a :class:`repro.compile.step.CompileEngine`) the
    forward/backward goes through trace/validate/replay; the engine
    guarantees the result is bitwise the eager step.
    """
    optimizer = nn.Adam(model.parameters(), lr=lr)
    model.train()
    losses = []
    start = time.perf_counter()
    for i in range(steps):
        batch = batches[i % len(batches)]
        optimizer.zero_grad()
        if engine is not None:
            losses.append(engine.step(batch))
        else:
            logits = model(batch)
            loss = nn.cross_entropy(logits, batch.target_classes)
            loss.backward()
            losses.append(float(loss.item()))
        nn.clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
    return time.perf_counter() - start, losses


def measure(
    name: str, dataset, batches, dim: int, steps: int, warmup: int, seed: int,
    compiled: bool = False,
):
    model = build_model(dataset, name, dim, seed)
    engine = None
    if compiled:
        engine = CompileEngine(model)
        # Every distinct shape key needs a trace + a validation step before
        # replays kick in; the timed region below measures the steady state.
        warmup = max(warmup, 2 * len(batches) + 1)
    train_steps(model, batches, warmup, engine=engine)  # warm caches / amortize first-touch
    elapsed, losses = train_steps(model, batches, steps, engine=engine)
    tokens = sum(float(batches[i % len(batches)].micro_mask.sum()) for i in range(steps))
    stats = {
        "steps_per_sec": steps / elapsed,
        "tokens_per_sec": tokens / elapsed,
        "elapsed_sec": elapsed,
        "steps": steps,
        "final_loss": losses[-1],
    }
    if engine is not None:
        stats["compile_stats"] = {
            "traces": engine.stats.traces,
            "validations": engine.stats.validations,
            "replays": engine.stats.replays,
            "eager_fallbacks": engine.stats.eager_steps,
        }
    return stats


def build_heavy_dataset(sessions: int, seed: int):
    """A longer-session variant of the JD-like data for the packed section.

    The data-pipeline numbers are about *collation* cost, which scales with
    macro steps and micro ops per session — the default config's short
    sessions would hide it behind model compute. Kept separate from the
    main bench dataset so the committed fused/compiled baselines stay
    comparable across revisions.
    """
    import dataclasses

    cfg = jd_appliances_config()
    cfg = dataclasses.replace(cfg, max_macro_len=20, mean_macro_len=12.0)
    raw = generate_dataset(cfg, sessions, seed=seed)
    return prepare_dataset(raw, cfg.operations, name="bench-heavy", min_support=3, seed=seed)


def collate_benchmark(dataset, packed_ds, batch_size: int, seed: int, repeats: int = 3):
    """Loop vs vectorized collate over identical index batches.

    Both paths pad the same examples to the same dims with the same op cap
    and reuse a :class:`CollateBuffers` pool — the exact configuration
    ``Trainer.fit`` runs — so the per-batch wall-clock is directly
    comparable; the outputs are bitwise identical
    (tests/data/test_packed.py pins that).
    """
    from repro.data.dataset import CollateBuffers, collate

    split = dataset.train
    packed_split = packed_ds.train
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(split))
    index_batches = [
        order[s : s + batch_size]
        for s in range(0, len(order) - batch_size + 1, batch_size)
    ]

    def run(fn):
        fn(index_batches[0])  # warm caches / first-touch allocations
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for idx in index_batches:
                fn(idx)
            best = min(best, time.perf_counter() - start)
        return best / len(index_batches)

    loop_buf, vec_buf = CollateBuffers(), CollateBuffers()
    loop_sec = run(
        lambda idx: collate(
            [split[int(i)] for i in idx], max_ops_per_item=6, buffers=loop_buf
        )
    )
    vec_sec = run(
        lambda idx: packed_split.collate(idx, max_ops_per_item=6, buffers=vec_buf)
    )
    return {
        "batch_size": batch_size,
        "batches": len(index_batches),
        "repeats": repeats,
        "loop_ms": loop_sec * 1e3,
        "vectorized_ms": vec_sec * 1e3,
        "speedup": loop_sec / vec_sec,
    }


def measure_live(
    name: str, dataset, packed_ds, dim: int, steps: int, warmup: int, seed: int,
    batch_size: int, packed: bool = False, prefetch: bool = False, repeats: int = 3,
):
    """End-to-end steps/sec through a *live* loader (collation included).

    Unlike :func:`measure`, which pre-collates its batches, this drains the
    loader inside the timed region — exactly what ``Trainer.fit`` pays per
    epoch — so packed collation and prefetch overlap show up in the number.
    Reported as the best of ``repeats`` timed windows (least-interference
    estimate; the box CI runs on is noisy and single-core).
    """
    model = build_model(dataset, name, dim, seed)
    optimizer = nn.Adam(model.parameters(), lr=0.003)
    model.train()
    source = packed_ds.train if packed else dataset.train
    loader = DataLoader(
        source, batch_size=batch_size, shuffle=True, seed=seed,
        max_ops_per_item=6, reuse_buffers=True, prefetch=prefetch,
    )

    def run(n_steps):
        done = 0
        tokens = 0.0
        start = time.perf_counter()
        while done < n_steps:
            for batch in loader:
                optimizer.zero_grad()
                logits = model(batch)
                loss = nn.cross_entropy(logits, batch.target_classes)
                loss.backward()
                nn.clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
                tokens += float(batch.micro_mask.sum())
                done += 1
                if done >= n_steps:
                    break
        return time.perf_counter() - start, tokens

    run(warmup)
    windows = [run(steps) for _ in range(repeats)]
    elapsed, tokens = min(windows, key=lambda w: w[0])
    return {
        "packed": packed,
        "prefetch": prefetch,
        "steps_per_sec": steps / elapsed,
        "tokens_per_sec": tokens / elapsed,
        "elapsed_sec": elapsed,
        "steps": steps,
        "repeats": repeats,
    }


def compile_parity_check(name: str, dataset, batches, dim: int, steps: int, seed: int):
    """Same seed + batches, eager vs compiled: parameters must match bitwise."""
    eager = build_model(dataset, name, dim, seed)
    _, eager_losses = train_steps(eager, batches, steps)
    comp = build_model(dataset, name, dim, seed)
    _, comp_losses = train_steps(comp, batches, steps, engine=CompileEngine(comp))
    eager_params, comp_params = eager.state_dict(), comp.state_dict()
    identical = all(
        np.array_equal(eager_params[key], comp_params[key]) for key in eager_params
    ) and eager_losses == comp_losses
    return {
        "steps": steps,
        "final_loss_eager": eager_losses[-1],
        "final_loss_compiled": comp_losses[-1],
        "bitwise_identical": bool(identical),
    }


def train_steps_sharded(
    model,
    loader,
    batches,
    steps: int,
    *,
    grad_shards: int,
    workers: int,
    seed: int,
    dtype: str,
    num_items: int,
    lr: float = 0.003,
    grad_clip: float = 5.0,
    compile: bool = False,
):
    """Run ``steps`` shard-grid trainer steps through the chosen executor.

    ``workers <= 1`` uses the in-process :class:`SerialShardExecutor`;
    above that a :class:`DataParallelEngine` is forked for the duration.
    Returns ``(elapsed_seconds, losses)``. Both executors replay the
    identical ``(epoch=0, batch_index)`` schedule, so final parameters are
    bit-identical across worker counts by construction — the caller diffs
    them to prove it.
    """
    from repro.parallel import DataParallelEngine, SerialShardExecutor

    optimizer = nn.Adam(model.parameters(), lr=lr)
    model.train()
    engine = None
    if workers > 1:
        engine = DataParallelEngine(
            model, loader,
            workers=min(workers, grad_shards), grad_shards=grad_shards,
            seed=seed, dtype=dtype, num_items=num_items, compile=compile,
        )
        executor = engine
    else:
        executor = SerialShardExecutor(
            model, grad_shards=grad_shards, seed=seed, compile=compile
        )
    losses = []
    try:
        start = time.perf_counter()
        for i in range(steps):
            index = i % len(batches)
            optimizer.zero_grad()
            loss = executor.compute(0, index, 0, batch=None if engine else batches[index])
            nn.clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            losses.append(loss)
        elapsed = time.perf_counter() - start
    finally:
        if engine is not None:
            engine.shutdown()
    return elapsed, losses


def measure_parallel(
    name: str, dataset, loader, batches, dim: int, steps: int, warmup: int,
    seed: int, dtype: str, grad_shards: int, workers: int, compile: bool = False,
):
    """Throughput + final parameters of one executor configuration."""
    model = build_model(dataset, name, dim, seed)
    kwargs = dict(
        grad_shards=grad_shards, workers=workers, seed=seed, dtype=dtype,
        num_items=dataset.num_items, compile=compile,
    )
    if compile:
        warmup = max(warmup, 2 * len(batches) + 1)
    train_steps_sharded(model, loader, batches, warmup, **kwargs)
    elapsed, losses = train_steps_sharded(model, loader, batches, steps, **kwargs)
    tokens = sum(float(batches[i % len(batches)].micro_mask.sum()) for i in range(steps))
    stats = {
        "workers": workers,
        "grad_shards": grad_shards,
        "steps_per_sec": steps / elapsed,
        "tokens_per_sec": tokens / elapsed,
        "elapsed_sec": elapsed,
        "steps": steps,
        "final_loss": losses[-1],
    }
    return stats, model.state_dict()


def parallel_section(
    models, dataset, loader, batches, dim: int, steps: int, warmup: int,
    seed: int, dtype: str, grad_shards: int, workers: int, compile: bool = False,
):
    """Benchmark N workers vs 1 on the same shard grid; assert parity."""
    section = {}
    for name in models:
        serial_stats, serial_params = measure_parallel(
            name, dataset, loader, batches, dim, steps, warmup, seed, dtype,
            grad_shards, workers=1, compile=compile,
        )
        fanned_stats, fanned_params = measure_parallel(
            name, dataset, loader, batches, dim, steps, warmup, seed, dtype,
            grad_shards, workers=workers, compile=compile,
        )
        diff = max(
            float(np.max(np.abs(serial_params[key] - fanned_params[key])))
            for key in serial_params
        )
        speedup = fanned_stats["steps_per_sec"] / serial_stats["steps_per_sec"]
        section[name] = {
            "serial": serial_stats,
            "parallel": fanned_stats,
            "speedup": speedup,
            "max_abs_param_diff": diff,
            "bitwise_identical": bool(diff == 0.0),
            "compiled": compile,
        }
        print(
            f"{name:8s} [shards={grad_shards}] 1w {serial_stats['steps_per_sec']:8.2f} steps/s | "
            f"{workers}w {fanned_stats['steps_per_sec']:8.2f} steps/s | "
            f"speedup {speedup:.2f}x | |Δparam|={diff:.1e} "
            f"({'ok' if diff == 0.0 else 'MISMATCH'})"
        )
        if diff != 0.0:
            raise SystemExit(
                f"{name}: {workers}-worker parameters differ from single-process "
                f"by {diff:.3e}; the determinism contract is broken"
            )
    return section


def convergence_check(name: str, dataset, batches, dim: int, steps: int, seed: int):
    """Same seed + batches, fused vs unfused: final losses must agree."""
    results = {}
    for mode, enabled in (("fused", True), ("unfused", False)):
        _set_fusion(enabled)
        model = build_model(dataset, name, dim, seed)
        _, losses = train_steps(model, batches, steps)
        results[mode] = losses
    _set_fusion(True)
    diff = abs(results["fused"][-1] - results["unfused"][-1])
    return {
        "steps": steps,
        "final_loss_fused": results["fused"][-1],
        "final_loss_unfused": results["unfused"][-1],
        "abs_final_loss_diff": diff,
        "identical_convergence": bool(diff <= 1e-6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--models", nargs="+", default=list(MODELS))
    parser.add_argument("--skip-convergence", action="store_true")
    parser.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="also benchmark the N-worker data-parallel engine vs 1 worker "
        "on the same shard grid, asserting bit-identical parameters",
    )
    parser.add_argument(
        "--grad-shards", type=int, default=0, metavar="G",
        help="summation-tree grid for the parallel section (0 = auto: max(workers, 1))",
    )
    parser.add_argument(
        "--compile", action="store_true",
        help="run the parallel section through the compiled (trace/replay) "
        "executors; the |Δparam| = 0 parity assert still applies",
    )
    parser.add_argument(
        "--skip-compile", action="store_true",
        help="skip the eager-vs-compiled single-process comparison",
    )
    parser.add_argument(
        "--packed", action="store_true",
        help="also benchmark the packed data pipeline: loop vs vectorized "
        "collate, and end-to-end live-loader steps/sec object vs packed",
    )
    parser.add_argument(
        "--prefetch", action="store_true",
        help="enable double-buffered prefetch on the packed live-loader run "
        "(implies --packed)",
    )
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "train_perf.json"), help="output JSON path"
    )
    parser.add_argument(
        "--baseline",
        default=str(RESULTS_DIR / "train_perf_baseline.json"),
        help="committed pre-optimization baseline to diff against",
    )
    args = parser.parse_args(argv)

    sessions = args.sessions or (300 if args.smoke else 1500)
    steps = args.steps or (6 if args.smoke else 25)
    warmup = args.warmup if args.warmup is not None else (1 if args.smoke else 4)
    dim = args.dim or (16 if args.smoke else 32)
    grad_shards = args.grad_shards or max(args.workers, 1)
    cores = _available_cores()
    do_compile = CompileEngine is not None and not args.skip_compile
    if args.compile and CompileEngine is None:
        raise SystemExit("--compile requires the repro.compile package")
    do_packed = (args.packed or args.prefetch) and pack_dataset is not None
    if (args.packed or args.prefetch) and pack_dataset is None:
        raise SystemExit("--packed requires the repro.data.packed module")

    from repro.autograd import default_dtype

    # Bucketed padded lengths whenever the compiled path participates, so
    # its shape keys repeat; eager numbers are measured on the SAME batches.
    dataset, batches = build_batches(
        sessions, args.batch_size, seed=args.seed, bucket=do_compile
    )
    print(
        f"dataset: {len(dataset.train)} train examples, {dataset.num_items} items; "
        f"{len(batches)} batches of {args.batch_size}; {cores} core(s) available"
    )

    modes = ["fused", "unfused"] if perf is not None else ["unfused"]
    results: dict[str, dict] = {name: {} for name in args.models}
    with default_dtype(args.dtype):
        for name in args.models:
            for mode in modes:
                _set_fusion(mode == "fused")
                stats = measure(name, dataset, batches, dim, steps, warmup, args.seed)
                results[name][mode] = stats
                print(
                    f"{name:8s} [{mode:7s}] {stats['steps_per_sec']:8.2f} steps/s "
                    f"{stats['tokens_per_sec']:10.0f} tokens/s"
                )
            if len(modes) == 2:
                ratio = (
                    results[name]["fused"]["steps_per_sec"]
                    / results[name]["unfused"]["steps_per_sec"]
                )
                results[name]["fused_over_unfused"] = ratio
                print(f"{name:8s} fused/unfused speedup: {ratio:.2f}x")
            if do_compile:
                _set_fusion(True)
                stats = measure(
                    name, dataset, batches, dim, steps, warmup, args.seed,
                    compiled=True,
                )
                results[name]["compiled"] = stats
                eager = results[name].get("fused") or results[name]["unfused"]
                ratio = stats["steps_per_sec"] / eager["steps_per_sec"]
                results[name]["compiled_over_eager"] = ratio
                cs = stats["compile_stats"]
                print(
                    f"{name:8s} [compiled] {stats['steps_per_sec']:8.2f} steps/s "
                    f"{stats['tokens_per_sec']:10.0f} tokens/s | "
                    f"{ratio:.2f}x vs eager | "
                    f"{cs['traces']}t/{cs['validations']}v/{cs['replays']}r/"
                    f"{cs['eager_fallbacks']}f"
                )
                parity = compile_parity_check(
                    name, dataset, batches, dim, 5 if args.smoke else 20, args.seed
                )
                results[name]["compile_parity"] = parity
                print(
                    f"{name:8s} compile parity: "
                    f"{'bitwise identical' if parity['bitwise_identical'] else 'MISMATCH'}"
                )
                if not parity["bitwise_identical"]:
                    raise SystemExit(
                        f"{name}: compiled training diverged from eager; the "
                        "trace/replay contract is broken"
                    )
        _set_fusion(True)

        collate_stats = {}
        live = {}
        if do_packed:
            # Longer sessions + a small model: the live numbers isolate the
            # data pipeline, which short sessions would hide behind compute.
            heavy = build_heavy_dataset(300 if args.smoke else 600, args.seed)
            heavy_packed = pack_dataset(heavy)
            collate_stats = collate_benchmark(
                heavy, heavy_packed, args.batch_size, args.seed,
                repeats=2 if args.smoke else 4,
            )
            print(
                f"collate   [b={args.batch_size}] loop {collate_stats['loop_ms']:.3f} ms | "
                f"vectorized {collate_stats['vectorized_ms']:.3f} ms | "
                f"{collate_stats['speedup']:.1f}x"
            )
            live_dim = 8
            live_steps = 40 if args.smoke else 100
            live_repeats = 2 if args.smoke else 3
            live_warmup = max(warmup, 10)
            for name in args.models:
                base = measure_live(
                    name, heavy, heavy_packed, live_dim, live_steps, live_warmup,
                    args.seed, args.batch_size, repeats=live_repeats,
                )
                fast = measure_live(
                    name, heavy, heavy_packed, live_dim, live_steps, live_warmup,
                    args.seed, args.batch_size, repeats=live_repeats,
                    packed=True, prefetch=args.prefetch,
                )
                ratio = fast["steps_per_sec"] / base["steps_per_sec"]
                live[name] = {"object": base, "packed": fast, "packed_speedup": ratio}
                print(
                    f"{name:8s} [live]     object {base['steps_per_sec']:8.2f} steps/s | "
                    f"packed{'+prefetch' if args.prefetch else ''} "
                    f"{fast['steps_per_sec']:8.2f} steps/s | {ratio:.2f}x"
                )

        parallel = {}
        if args.workers > 1:
            loader_kwargs = {"bucket_lengths": True} if do_compile else {}
            loader = DataLoader(
                dataset.train, batch_size=args.batch_size, shuffle=True,
                seed=args.seed, max_ops_per_item=6, **loader_kwargs,
            )
            parallel = parallel_section(
                args.models, dataset, loader, batches, dim, steps, warmup,
                args.seed, args.dtype, grad_shards, args.workers,
                compile=args.compile,
            )
            if cores < args.workers:
                print(
                    f"note: only {cores} core(s) available for {args.workers} workers — "
                    "the measured speedup understates what the engine delivers on real cores"
                )

        convergence = {}
        if perf is not None and not args.skip_convergence:
            conv_steps = 5 if args.smoke else 20
            for name in args.models:
                convergence[name] = convergence_check(
                    name, dataset, batches, dim, conv_steps, args.seed
                )
                print(
                    f"{name:8s} convergence: |Δloss|={convergence[name]['abs_final_loss_diff']:.2e} "
                    f"({'ok' if convergence[name]['identical_convergence'] else 'DIVERGED'})"
                )

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cores": cores,
            "git_rev": _git_rev(),
            "smoke": args.smoke,
            "sessions": sessions,
            "steps": steps,
            "dim": dim,
            "batch_size": args.batch_size,
            "seed": args.seed,
            "dtype": args.dtype,
            "workers": args.workers,
            "grad_shards": grad_shards,
            "has_perf_package": perf is not None,
            "has_compile_package": CompileEngine is not None,
            "bucket_lengths": do_compile,
            "parallel_compiled": bool(args.compile),
            "has_packed_module": pack_dataset is not None,
            "packed": do_packed,
            "prefetch": bool(args.prefetch),
        },
        "results": results,
        "parallel": parallel,
        "convergence": convergence,
        "collate": collate_stats,
        "live": live,
    }

    baseline_path = pathlib.Path(args.baseline)
    out_path = pathlib.Path(args.out)
    if baseline_path.exists() and baseline_path.resolve() != out_path.resolve():
        baseline = json.loads(baseline_path.read_text())
        speedups = {}
        for name in args.models:
            base = baseline.get("results", {}).get(name, {})
            base_mode = "fused" if "fused" in base else "unfused"
            here = results[name].get("fused") or results[name].get("unfused")
            if base.get(base_mode) and here and baseline["meta"]["smoke"] == args.smoke:
                speedups[name] = here["steps_per_sec"] / base[base_mode]["steps_per_sec"]
                print(f"{name:8s} speedup vs committed baseline: {speedups[name]:.2f}x")
        payload["speedup_vs_baseline"] = speedups

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")

    # Stable flat summary at the repo root: one object, fixed top-level
    # keys, one entry per model — safe for external trackers to diff.
    summary_models = {}
    for name in args.models:
        source = parallel.get(name, {}).get("parallel") or results[name].get(
            "fused"
        ) or results[name].get("unfused")
        summary_models[name] = {
            "steps_per_sec": round(source["steps_per_sec"], 4),
            "tokens_per_sec": round(source["tokens_per_sec"], 1),
        }
        eager = results[name].get("fused") or results[name].get("unfused")
        compiled = results[name].get("compiled")
        if compiled is not None:
            # Eager vs compiled side by side, measured single-process on the
            # same batches within this run.
            summary_models[name]["steps_per_sec_eager"] = round(
                eager["steps_per_sec"], 4
            )
            summary_models[name]["steps_per_sec_compiled"] = round(
                compiled["steps_per_sec"], 4
            )
            summary_models[name]["compiled_speedup"] = round(
                results[name]["compiled_over_eager"], 3
            )
        if name in live:
            # Live-loader numbers (collation inside the timed region):
            # object path vs packed columnar (+prefetch when enabled).
            summary_models[name]["steps_per_sec_object_live"] = round(
                live[name]["object"]["steps_per_sec"], 4
            )
            summary_models[name]["steps_per_sec_packed"] = round(
                live[name]["packed"]["steps_per_sec"], 4
            )
            summary_models[name]["packed_speedup"] = round(
                live[name]["packed_speedup"], 3
            )
    summary = {
        "schema": 3,
        "generated_by": "benchmarks/bench_train_perf.py",
        "git_rev": payload["meta"]["git_rev"],
        "python": payload["meta"]["python"],
        "numpy": payload["meta"]["numpy"],
        "cores": cores,
        "smoke": args.smoke,
        # Unambiguous run-size marker (mirrors "smoke", which older
        # trackers already read): "smoke" or "full".
        "profile": "smoke" if args.smoke else "full",
        "dtype": args.dtype,
        "batch_size": args.batch_size,
        "dim": dim,
        "steps": steps,
        "workers": args.workers,
        "grad_shards": grad_shards,
        "models": summary_models,
        "parallel_speedup": {
            name: round(entry["speedup"], 3) for name, entry in parallel.items()
        },
        "parallel_bitwise_identical": all(
            entry["bitwise_identical"] for entry in parallel.values()
        ) if parallel else None,
        "parallel_compiled": bool(args.compile) if parallel else None,
        "compile_bitwise_identical": all(
            results[name]["compile_parity"]["bitwise_identical"]
            for name in args.models
        ) if do_compile else None,
        # Schema 3: packed-pipeline numbers (null when --packed was off).
        "packed": do_packed,
        "prefetch": bool(args.prefetch) if do_packed else None,
        "collate_ms_per_batch": {
            "loop": round(collate_stats["loop_ms"], 4),
            "vectorized": round(collate_stats["vectorized_ms"], 4),
            "speedup": round(collate_stats["speedup"], 2),
        } if collate_stats else None,
    }
    SUMMARY_PATH.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {SUMMARY_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
