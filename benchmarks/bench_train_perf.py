#!/usr/bin/env python
"""Training-throughput benchmark: steps/sec and tokens/sec per model.

Unlike the paper-figure benches (which measure recommendation *quality*),
this script measures how fast the pure-NumPy substrate can push trainer
steps for EMBSR and two representative baselines (NARM, SR-GNN) on the
synthetic JD-like data. It is the repo's training-perf trajectory: CI runs
it with ``--smoke`` and uploads the JSON, and ``docs/performance.md``
explains how to read the output.

Modes
-----
``fused``
    The default code path: fused kernels (``repro.perf.fused``) on.
``unfused``
    Fusion disabled via ``repro.perf.set_fusion(False)`` — the op-by-op
    composition the substrate used before the perf PR. On a tree that
    predates ``repro.perf`` only this mode exists (used to record the
    committed ``train_perf_baseline.json``).

The timed region replicates ``Trainer._train_batch`` without the
watchdog: zero_grad -> forward -> cross-entropy -> backward -> clip ->
Adam step. ``tokens/sec`` counts valid *micro-behavior events*
(``micro_mask.sum()``) so the number is comparable across models.

A convergence check trains the same model for a fixed number of steps in
both modes (same seed, same batches, float64) and records the absolute
final-loss difference; the acceptance bar is <= 1e-6.

Usage::

    PYTHONPATH=src python benchmarks/bench_train_perf.py            # full
    PYTHONPATH=src python benchmarks/bench_train_perf.py --smoke    # CI
    PYTHONPATH=src python benchmarks/bench_train_perf.py \
        --out benchmarks/results/train_perf_baseline.json           # seed tree
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
if not any((pathlib.Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(ROOT / "src"))

import numpy as np

from repro import nn
from repro.data import generate_dataset, jd_appliances_config, prepare_dataset
from repro.data.dataset import DataLoader
from repro.eval import ExperimentConfig, ExperimentRunner

try:  # absent on the pre-optimization tree that records the baseline
    from repro import perf
except ImportError:  # pragma: no cover - exercised only on the seed tree
    perf = None

MODELS = ("EMBSR", "NARM", "SR-GNN")
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _set_fusion(enabled: bool) -> None:
    if perf is not None:
        perf.set_fusion(enabled)


def build_batches(sessions: int, batch_size: int, seed: int = 0):
    cfg = jd_appliances_config()
    raw = generate_dataset(cfg, sessions, seed=seed)
    dataset = prepare_dataset(raw, cfg.operations, name="bench", min_support=3, seed=seed)
    loader = DataLoader(
        dataset.train, batch_size=batch_size, shuffle=True, seed=seed, max_ops_per_item=6
    )
    return dataset, list(loader)


def build_model(dataset, name: str, dim: int, seed: int) -> nn.Module:
    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=dim, dropout=0.1, seed=seed)
    )
    recommender = runner.build(name)
    return recommender.build_model()


def train_steps(model, batches, steps: int, lr: float = 0.003, grad_clip: float = 5.0):
    """Run ``steps`` trainer steps; returns (elapsed_seconds, losses)."""
    optimizer = nn.Adam(model.parameters(), lr=lr)
    model.train()
    losses = []
    start = time.perf_counter()
    for i in range(steps):
        batch = batches[i % len(batches)]
        optimizer.zero_grad()
        logits = model(batch)
        loss = nn.cross_entropy(logits, batch.target_classes)
        loss.backward()
        nn.clip_grad_norm(model.parameters(), grad_clip)
        optimizer.step()
        losses.append(float(loss.item()))
    return time.perf_counter() - start, losses


def measure(name: str, dataset, batches, dim: int, steps: int, warmup: int, seed: int):
    model = build_model(dataset, name, dim, seed)
    train_steps(model, batches, warmup)  # warm caches / amortize first-touch
    elapsed, losses = train_steps(model, batches, steps)
    tokens = sum(float(batches[i % len(batches)].micro_mask.sum()) for i in range(steps))
    return {
        "steps_per_sec": steps / elapsed,
        "tokens_per_sec": tokens / elapsed,
        "elapsed_sec": elapsed,
        "steps": steps,
        "final_loss": losses[-1],
    }


def convergence_check(name: str, dataset, batches, dim: int, steps: int, seed: int):
    """Same seed + batches, fused vs unfused: final losses must agree."""
    results = {}
    for mode, enabled in (("fused", True), ("unfused", False)):
        _set_fusion(enabled)
        model = build_model(dataset, name, dim, seed)
        _, losses = train_steps(model, batches, steps)
        results[mode] = losses
    _set_fusion(True)
    diff = abs(results["fused"][-1] - results["unfused"][-1])
    return {
        "steps": steps,
        "final_loss_fused": results["fused"][-1],
        "final_loss_unfused": results["unfused"][-1],
        "abs_final_loss_diff": diff,
        "identical_convergence": bool(diff <= 1e-6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI-sized quick run")
    parser.add_argument("--sessions", type=int, default=None)
    parser.add_argument("--steps", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument("--dim", type=int, default=None)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--models", nargs="+", default=list(MODELS))
    parser.add_argument("--skip-convergence", action="store_true")
    parser.add_argument(
        "--out", default=str(RESULTS_DIR / "train_perf.json"), help="output JSON path"
    )
    parser.add_argument(
        "--baseline",
        default=str(RESULTS_DIR / "train_perf_baseline.json"),
        help="committed pre-optimization baseline to diff against",
    )
    args = parser.parse_args(argv)

    sessions = args.sessions or (300 if args.smoke else 1500)
    steps = args.steps or (6 if args.smoke else 25)
    warmup = args.warmup if args.warmup is not None else (1 if args.smoke else 4)
    dim = args.dim or (16 if args.smoke else 32)

    dataset, batches = build_batches(sessions, args.batch_size, seed=args.seed)
    print(
        f"dataset: {len(dataset.train)} train examples, {dataset.num_items} items; "
        f"{len(batches)} batches of {args.batch_size}"
    )

    modes = ["fused", "unfused"] if perf is not None else ["unfused"]
    results: dict[str, dict] = {name: {} for name in args.models}
    for name in args.models:
        for mode in modes:
            _set_fusion(mode == "fused")
            stats = measure(name, dataset, batches, dim, steps, warmup, args.seed)
            results[name][mode] = stats
            print(
                f"{name:8s} [{mode:7s}] {stats['steps_per_sec']:8.2f} steps/s "
                f"{stats['tokens_per_sec']:10.0f} tokens/s"
            )
        if len(modes) == 2:
            ratio = (
                results[name]["fused"]["steps_per_sec"]
                / results[name]["unfused"]["steps_per_sec"]
            )
            results[name]["fused_over_unfused"] = ratio
            print(f"{name:8s} fused/unfused speedup: {ratio:.2f}x")
    _set_fusion(True)

    convergence = {}
    if perf is not None and not args.skip_convergence:
        conv_steps = 5 if args.smoke else 20
        for name in args.models:
            convergence[name] = convergence_check(
                name, dataset, batches, dim, conv_steps, args.seed
            )
            print(
                f"{name:8s} convergence: |Δloss|={convergence[name]['abs_final_loss_diff']:.2e} "
                f"({'ok' if convergence[name]['identical_convergence'] else 'DIVERGED'})"
            )

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "smoke": args.smoke,
            "sessions": sessions,
            "steps": steps,
            "dim": dim,
            "batch_size": args.batch_size,
            "seed": args.seed,
            "has_perf_package": perf is not None,
        },
        "results": results,
        "convergence": convergence,
    }

    baseline_path = pathlib.Path(args.baseline)
    out_path = pathlib.Path(args.out)
    if baseline_path.exists() and baseline_path.resolve() != out_path.resolve():
        baseline = json.loads(baseline_path.read_text())
        speedups = {}
        for name in args.models:
            base = baseline.get("results", {}).get(name, {})
            base_mode = "fused" if "fused" in base else "unfused"
            here = results[name].get("fused") or results[name].get("unfused")
            if base.get(base_mode) and here and baseline["meta"]["smoke"] == args.smoke:
                speedups[name] = here["steps_per_sec"] / base[base_mode]["steps_per_sec"]
                print(f"{name:8s} speedup vs committed baseline: {speedups[name]:.2f}x")
        payload["speedup_vs_baseline"] = speedups

    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
