"""Retry, per-call timeout, and a closed/open/half-open circuit breaker.

One wedged or crashing model call must not take the whole serving path
down with it. The composition here is the standard production recipe:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and an
  optional per-call timeout (the call runs on a daemon thread so a truly
  wedged dependency cannot pin the caller);
* :class:`CircuitBreaker` — counts consecutive failures; at the threshold
  it *opens* and fails fast (callers route to their fallback) until a
  recovery timeout elapses, then *half-opens* to let a single probe
  through, closing again only after enough probe successes;
* :class:`ResilientCaller` — glues the two around any zero-arg callable.

Every failure surfaced by the caller derives from
:class:`ReliabilityError`, so upstream degradation logic can catch one
type instead of enumerating failure modes. This module deliberately
imports nothing from the rest of ``repro`` — metrics hooks are plain
callables the serving layer wires up.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, TypeVar

__all__ = [
    "ReliabilityError",
    "CircuitOpenError",
    "ScoringTimeoutError",
    "RetriesExhaustedError",
    "RetryPolicy",
    "CircuitBreaker",
    "ResilientCaller",
    "call_with_timeout",
]

T = TypeVar("T")


class ReliabilityError(RuntimeError):
    """Base of every failure the resilient call path can surface."""


class CircuitOpenError(ReliabilityError):
    """The breaker is open: fail fast, serve the fallback."""


class ScoringTimeoutError(ReliabilityError, TimeoutError):
    """A single call exceeded its per-call timeout."""


class RetriesExhaustedError(ReliabilityError):
    """Every retry attempt failed; the last cause is ``__cause__``."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff: 1x, 2x, 4x, ... of ``backoff_base_s``."""

    max_attempts: int = 3
    backoff_base_s: float = 0.005
    backoff_max_s: float = 0.25
    timeout_s: float | None = None

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retrying after failed attempt number ``attempt`` (1-based)."""
        return min(self.backoff_max_s, self.backoff_base_s * (2 ** (attempt - 1)))


def call_with_timeout(fn: Callable[[], T], timeout_s: float | None) -> T:
    """Run ``fn`` with a wall-clock budget.

    The call executes on a daemon thread; on timeout the caller gets
    :class:`ScoringTimeoutError` immediately while the stray call finishes
    (or wedges) in the background without pinning anything.
    """
    if timeout_s is None:
        return fn()
    outcome: dict[str, object] = {}
    done = threading.Event()

    def run() -> None:
        try:
            outcome["value"] = fn()
        except BaseException as error:  # noqa: BLE001 — relayed to the caller
            outcome["error"] = error
        finally:
            done.set()

    thread = threading.Thread(target=run, name="timed-call", daemon=True)
    thread.start()
    if not done.wait(timeout_s):
        raise ScoringTimeoutError(f"call exceeded its {timeout_s * 1000:.0f}ms budget")
    if "error" in outcome:
        raise outcome["error"]  # type: ignore[misc]
    return outcome["value"]  # type: ignore[return-value]


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    States: ``closed`` (traffic flows; failures counted), ``open`` (all
    calls rejected until ``reset_timeout_s`` elapses), ``half_open`` (one
    probe in flight at a time; ``half_open_successes`` consecutive probe
    successes close the breaker, any probe failure reopens it).
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        half_open_successes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        on_transition: Callable[[str, str], None] | None = None,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if half_open_successes < 1:
            raise ValueError("half_open_successes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.half_open_successes = half_open_successes
        self.clock = clock
        self.on_transition = on_transition
        self._state = self.CLOSED
        self._failures = 0
        self._probe_successes = 0
        self._probe_in_flight = False
        self._opened_at = 0.0
        self._last_transition_at = 0.0
        self._transition_counts: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def last_transition_at(self) -> float:
        """Clock time of the most recent state change (0.0 if none yet)."""
        with self._lock:
            return self._last_transition_at

    def transition_counts(self) -> dict[tuple[str, str], int]:
        """How many times each ``(old, new)`` edge has been taken."""
        with self._lock:
            return dict(self._transition_counts)

    def _transition(self, new: str) -> tuple[str, str] | None:
        """Swap states (lock held); returns the edge for post-lock callbacks."""
        old, self._state = self._state, new
        if old == new:
            return None
        self._last_transition_at = self.clock()
        edge = (old, new)
        self._transition_counts[edge] = self._transition_counts.get(edge, 0) + 1
        return edge

    def _notify(self, edge: tuple[str, str] | None) -> None:
        if edge is not None and self.on_transition is not None:
            self.on_transition(*edge)

    def allow(self) -> bool:
        """May a call proceed right now? (Half-open admits one probe.)"""
        edge = None
        with self._lock:
            if self._state == self.CLOSED:
                return True
            if self._state == self.OPEN:
                if self.clock() - self._opened_at < self.reset_timeout_s:
                    return False
                edge = self._transition(self.HALF_OPEN)
                self._probe_successes = 0
                self._probe_in_flight = True
            elif self._probe_in_flight:
                return False
            else:
                self._probe_in_flight = True
        self._notify(edge)
        return True

    def record_success(self) -> None:
        edge = None
        with self._lock:
            if self._state == self.CLOSED:
                self._failures = 0
            elif self._state == self.HALF_OPEN:
                self._probe_in_flight = False
                self._probe_successes += 1
                if self._probe_successes >= self.half_open_successes:
                    self._failures = 0
                    edge = self._transition(self.CLOSED)
        self._notify(edge)

    def record_failure(self) -> None:
        edge = None
        with self._lock:
            if self._state == self.CLOSED:
                self._failures += 1
                if self._failures >= self.failure_threshold:
                    self._opened_at = self.clock()
                    edge = self._transition(self.OPEN)
            elif self._state == self.HALF_OPEN:
                self._probe_in_flight = False
                self._opened_at = self.clock()
                edge = self._transition(self.OPEN)
        self._notify(edge)

    def seconds_until_probe(self) -> float:
        """How long until an open breaker will admit a probe (0 if now)."""
        with self._lock:
            if self._state != self.OPEN:
                return 0.0
            return max(0.0, self.reset_timeout_s - (self.clock() - self._opened_at))


class ResilientCaller:
    """Retry + timeout + breaker around a zero-arg callable.

    Raises :class:`CircuitOpenError` without attempting when the breaker
    is open, and :class:`RetriesExhaustedError` (with the last cause
    chained) when every attempt failed. Metrics hooks (``on_retry``,
    ``on_timeout``, ``on_failure``) are optional zero-arg callables.
    """

    def __init__(
        self,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Callable[[], None] | None = None,
        on_timeout: Callable[[], None] | None = None,
        on_failure: Callable[[], None] | None = None,
    ):
        self.retry = retry or RetryPolicy()
        self.breaker = breaker
        self.sleep = sleep
        self.on_retry = on_retry
        self.on_timeout = on_timeout
        self.on_failure = on_failure

    def call(self, fn: Callable[[], T]) -> T:
        breaker = self.breaker
        if breaker is not None and not breaker.allow():
            raise CircuitOpenError(
                f"circuit open; next probe in {breaker.seconds_until_probe():.3f}s"
            )
        last_error: Exception | None = None
        for attempt in range(1, self.retry.max_attempts + 1):
            try:
                result = call_with_timeout(fn, self.retry.timeout_s)
            except Exception as error:  # SimulatedCrash (BaseException) passes through
                last_error = error
                if self.on_failure is not None:
                    self.on_failure()
                if isinstance(error, ScoringTimeoutError) and self.on_timeout is not None:
                    self.on_timeout()
                if breaker is not None:
                    breaker.record_failure()
                    if breaker.state == CircuitBreaker.OPEN:
                        break  # opened mid-retry: stop hammering the dependency
                if attempt == self.retry.max_attempts:
                    break
                if self.on_retry is not None:
                    self.on_retry()
                self.sleep(self.retry.backoff_s(attempt))
            else:
                if breaker is not None:
                    breaker.record_success()
                return result
        raise RetriesExhaustedError(
            f"call failed after {attempt} attempt(s): {last_error}"
        ) from last_error
