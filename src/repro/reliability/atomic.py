"""Crash-safe file writes: temp file in the target directory + ``os.replace``.

A checkpoint that is overwritten in place is a time bomb — a crash midway
through ``np.savez`` leaves a truncated archive and the *previous* good
checkpoint is already gone. The atomic protocol writes to a uniquely named
temp file next to the destination (same filesystem, so the final rename is
atomic), fsyncs, then ``os.replace``\\ s into place. At every instant the
destination path holds either the complete old file or the complete new
one.

The ``serialization.mid_write`` failpoint sits between the payload write
and the rename: arming it proves that a crash at the worst moment leaves
the old file untouched and no temp debris behind.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import IO, Callable, Mapping

import numpy as np

from .failpoints import failpoint

__all__ = ["atomic_write", "atomic_save_npz"]


def atomic_write(path: str | pathlib.Path, writer: Callable[[IO[bytes]], None]) -> pathlib.Path:
    """Run ``writer(file)`` against a temp file, then rename it onto ``path``.

    The temp file is removed on any failure, so aborted saves leave no
    ``.tmp`` litter next to the checkpoint.
    """
    path = pathlib.Path(path)
    directory = path.parent if str(path.parent) else pathlib.Path(".")
    fd, tmp_name = tempfile.mkstemp(dir=directory, prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            writer(handle)
            failpoint("serialization.mid_write", path)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_save_npz(
    path: str | pathlib.Path, arrays: Mapping[str, np.ndarray], compressed: bool = True
) -> pathlib.Path:
    """Atomically write ``arrays`` as an ``.npz`` archive at ``path``.

    Writing through a file handle (not a path) stops NumPy from appending
    its own ``.npz`` suffix, so the destination name is exactly ``path``.
    """
    save = np.savez_compressed if compressed else np.savez
    return atomic_write(path, lambda handle: save(handle, **arrays))
