"""Named fault-injection sites (failpoints).

Production code sprinkles ``failpoint("trainer.after_batch")`` at the
places where a crash, an exception, or a stall would be most damaging;
tests and chaos harnesses *arm* those names with an action (raise, sleep,
simulate a process kill, or any callable). Disarmed sites cost one falsy
check on a module-level dict — the registry is empty in production, so
the hot path never pays for the instrumentation.

Arming supports the standard chaos-testing selectors:

* ``times=N``  — fire at most ``N`` times, then become a no-op;
* ``skip=K``   — let the first ``K`` hits pass untouched (fail the K+1st);
* ``every=M``  — fire on every ``M``-th eligible hit (``every=5`` is a
  deterministic 20% fault rate).

:class:`SimulatedCrash` deliberately derives from ``BaseException`` so the
usual ``except Exception`` recovery paths cannot swallow it — exactly like
a SIGKILL, the only thing that survives is what was already on disk.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "SimulatedCrash",
    "failpoint",
    "arm",
    "disarm",
    "disarm_all",
    "armed",
    "is_armed",
    "stats",
    "raising",
    "sleeping",
    "crashing",
]


class SimulatedCrash(BaseException):
    """A simulated process kill: uncatchable by ``except Exception``."""


class _Arming:
    """One armed site: the action plus its times/skip/every selectors."""

    def __init__(
        self,
        action: Callable[[object], None],
        times: int | None = None,
        skip: int = 0,
        every: int = 1,
    ):
        if every < 1:
            raise ValueError("every must be >= 1")
        if skip < 0:
            raise ValueError("skip must be >= 0")
        if times is not None and times < 1:
            raise ValueError("times must be >= 1 (or None for unlimited)")
        self.action = action
        self.times = times
        self.skip = skip
        self.every = every
        self.hits = 0
        self.fires = 0
        self._lock = threading.Lock()

    def trigger(self, payload: object) -> None:
        with self._lock:
            self.hits += 1
            eligible = self.hits - self.skip
            if eligible <= 0:
                return
            if eligible % self.every != 0:
                return
            if self.times is not None and self.fires >= self.times:
                return
            self.fires += 1
        self.action(payload)


_registry: dict[str, _Arming] = {}
_registry_lock = threading.Lock()


def failpoint(name: str, payload: object = None) -> None:
    """Instrumentation site: a no-op unless ``name`` is armed.

    ``payload`` is handed to the armed action, letting chaos tests mutate
    in-flight values (e.g. corrupt a loss tensor) rather than only raise.
    """
    if not _registry:  # fast path: nothing armed anywhere
        return
    arming = _registry.get(name)
    if arming is None:
        return
    arming.trigger(payload)


def arm(
    name: str,
    action: Callable[[object], None],
    *,
    times: int | None = None,
    skip: int = 0,
    every: int = 1,
) -> None:
    """Arm ``name`` with ``action`` (replacing any previous arming)."""
    with _registry_lock:
        _registry[name] = _Arming(action, times=times, skip=skip, every=every)


def disarm(name: str) -> None:
    """Disarm one site (idempotent)."""
    with _registry_lock:
        _registry.pop(name, None)


def disarm_all() -> None:
    """Disarm every site — test teardown's safety net."""
    with _registry_lock:
        _registry.clear()


def is_armed(name: str) -> bool:
    return name in _registry


def stats(name: str) -> tuple[int, int]:
    """``(hits, fires)`` of an armed site; ``(0, 0)`` when disarmed."""
    arming = _registry.get(name)
    return (arming.hits, arming.fires) if arming is not None else (0, 0)


@contextmanager
def armed(
    name: str,
    action: Callable[[object], None],
    *,
    times: int | None = None,
    skip: int = 0,
    every: int = 1,
) -> Iterator[None]:
    """Scoped arming: ``with armed("batcher.score", raising(...)): ...``."""
    arm(name, action, times=times, skip=skip, every=every)
    try:
        yield
    finally:
        disarm(name)


# ---------------------------------------------------------------- actions
def raising(error: BaseException | type[BaseException]) -> Callable[[object], None]:
    """Action that raises ``error`` (an instance or an exception class)."""

    def action(payload: object) -> None:
        raise error if isinstance(error, BaseException) else error()

    return action


def sleeping(seconds: float) -> Callable[[object], None]:
    """Action that stalls the caller for ``seconds`` (a wedged dependency)."""

    def action(payload: object) -> None:
        time.sleep(seconds)

    return action


def crashing() -> Callable[[object], None]:
    """Action that raises :class:`SimulatedCrash` (process-kill simulation)."""

    def action(payload: object) -> None:
        raise SimulatedCrash("failpoint simulated a process kill")

    return action
