"""Reliability machinery: fault injection, crash-safe state, degradation.

Four pillars, each usable on its own and threaded through the rest of the
system:

* :mod:`~repro.reliability.failpoints` — named fault-injection sites that
  chaos tests arm with exceptions, stalls, or simulated process kills;
  zero overhead while disarmed;
* :mod:`~repro.reliability.atomic` — temp-file + ``os.replace`` writes so
  a crash mid-save never truncates a checkpoint;
* :mod:`~repro.reliability.state` / :mod:`~repro.reliability.watchdog` —
  full training-state capture for bit-identical resume, plus NaN/Inf
  divergence detection with rollback and LR cooldown;
* :mod:`~repro.reliability.breaker` — retry with exponential backoff,
  per-call timeouts, and a closed/open/half-open circuit breaker for the
  serving path.

This package imports nothing from the rest of ``repro`` (stdlib + numpy
only), so every layer — ``nn``, ``data``, ``eval``, ``serving`` — can
depend on it without cycles. See ``docs/reliability.md``.
"""

from .atomic import atomic_save_npz, atomic_write
from .breaker import (
    CircuitBreaker,
    CircuitOpenError,
    ReliabilityError,
    ResilientCaller,
    RetriesExhaustedError,
    RetryPolicy,
    ScoringTimeoutError,
    call_with_timeout,
)
from .failpoints import (
    SimulatedCrash,
    arm,
    armed,
    crashing,
    disarm,
    disarm_all,
    failpoint,
    is_armed,
    raising,
    sleeping,
    stats,
)
from .state import (
    TrainingState,
    capture_rng_states,
    load_training_state,
    restore_rng_states,
    save_training_state,
)
from .watchdog import DivergenceError, DivergenceWatchdog

__all__ = [
    "atomic_write",
    "atomic_save_npz",
    "CircuitBreaker",
    "CircuitOpenError",
    "ReliabilityError",
    "ResilientCaller",
    "RetriesExhaustedError",
    "RetryPolicy",
    "ScoringTimeoutError",
    "call_with_timeout",
    "SimulatedCrash",
    "arm",
    "armed",
    "crashing",
    "disarm",
    "disarm_all",
    "failpoint",
    "is_armed",
    "raising",
    "sleeping",
    "stats",
    "TrainingState",
    "capture_rng_states",
    "load_training_state",
    "restore_rng_states",
    "save_training_state",
    "DivergenceError",
    "DivergenceWatchdog",
]
