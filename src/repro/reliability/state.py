"""Full-fidelity training state: everything a bit-identical resume needs.

A resumable run must capture more than model weights — Adam's moment
estimates, the LR schedule position, the epoch/batch cursor, the shuffle
epoch of the :class:`~repro.data.dataset.DataLoader`, and the state of
every ``np.random.Generator`` the model consults during forward passes
(dropout masks!). :class:`TrainingState` bundles all of it;
:func:`save_training_state` / :func:`load_training_state` round-trip it
through a single atomically-written ``.npz`` archive.

Layout inside the archive: arrays live under reserved key prefixes
(``model/``, ``best/``, and ``opt/<field>/<i>`` for the optimizer's
per-parameter array lists); every scalar/structured field rides in one
JSON document under the ``__meta__`` key. RNG states are JSON-able
because numpy bit generators expose their state as plain dicts (PCG64's
128-bit integers serialize losslessly through Python's arbitrary-precision
JSON ints).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

import numpy as np

from .atomic import atomic_save_npz

__all__ = [
    "TrainingState",
    "save_training_state",
    "load_training_state",
    "capture_rng_states",
    "restore_rng_states",
]

_META_KEY = "__meta__"


@dataclass
class TrainingState:
    """Snapshot of a training run, positioned *between* two batches.

    ``epoch``/``batch_index`` point at the **next** batch to run; a state
    written after the last batch of an epoch has ``batch_index`` equal to
    the epoch's batch count and resumes directly into validation.
    """

    epoch: int
    batch_index: int
    global_step: int
    model_state: dict[str, np.ndarray]
    optimizer_state: dict
    scheduler_state: dict
    loader_state: dict
    rng_states: dict[str, dict]
    best_metric: float
    best_state: dict[str, np.ndarray] | None
    stale: int
    history: list[dict] = field(default_factory=list)
    epoch_losses: list[float] = field(default_factory=list)
    # Per-batch component-loss dicts of the in-flight epoch, parallel to
    # ``epoch_losses`` (e.g. [{"ce": ..., "infonce": ...}, ...]).
    epoch_components: list[dict] = field(default_factory=list)
    config: dict = field(default_factory=dict)
    # Architecture identity (a ModelSpec dict) of the model being trained,
    # when known — lets resume diff architectures instead of array shapes.
    spec: dict | None = None


def _json_safe(value):
    """Recursively convert numpy scalars/arrays into JSON-able builtins."""
    if isinstance(value, dict):
        return {k: _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    if isinstance(value, np.generic):
        return value.item()
    return value


def _json_restore(value):
    if isinstance(value, dict):
        if "__ndarray__" in value:
            return np.asarray(value["__ndarray__"], dtype=value["dtype"])
        return {k: _json_restore(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_json_restore(v) for v in value]
    return value


def save_training_state(path: str | pathlib.Path, state: TrainingState) -> pathlib.Path:
    """Atomically persist ``state`` as one ``.npz`` archive."""
    arrays: dict[str, np.ndarray] = {}
    for name, array in state.model_state.items():
        arrays[f"model/{name}"] = array
    if state.best_state is not None:
        for name, array in state.best_state.items():
            arrays[f"best/{name}"] = array

    optimizer_meta: dict = {}
    for key, value in state.optimizer_state.items():
        if isinstance(value, (list, tuple)) and value and isinstance(value[0], np.ndarray):
            for i, array in enumerate(value):
                arrays[f"opt/{key}/{i}"] = array
            optimizer_meta[key] = {"__arrays__": len(value)}
        else:
            optimizer_meta[key] = _json_safe(value)

    meta = {
        "epoch": state.epoch,
        "batch_index": state.batch_index,
        "global_step": state.global_step,
        "optimizer": optimizer_meta,
        "scheduler": _json_safe(state.scheduler_state),
        "loader": _json_safe(state.loader_state),
        "rng_states": _json_safe(state.rng_states),
        "best_metric": state.best_metric,
        "has_best": state.best_state is not None,
        "stale": state.stale,
        "history": _json_safe(state.history),
        "epoch_losses": [float(x) for x in state.epoch_losses],
        "epoch_components": _json_safe(state.epoch_components),
        "config": _json_safe(state.config),
        "spec": _json_safe(state.spec),
    }
    arrays[_META_KEY] = np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8)
    return atomic_save_npz(path, arrays)


def load_training_state(path: str | pathlib.Path) -> TrainingState:
    """Load a state written by :func:`save_training_state`."""
    with np.load(pathlib.Path(path)) as archive:
        data = {name: archive[name] for name in archive.files}
    if _META_KEY not in data:
        raise ValueError(f"{path} is not a training-state archive (missing {_META_KEY})")
    meta = json.loads(data.pop(_META_KEY).tobytes().decode())

    model_state = {k[len("model/") :]: v for k, v in data.items() if k.startswith("model/")}
    best_state = (
        {k[len("best/") :]: v for k, v in data.items() if k.startswith("best/")}
        if meta["has_best"]
        else None
    )
    optimizer_state: dict = {}
    for key, value in meta["optimizer"].items():
        if isinstance(value, dict) and "__arrays__" in value:
            optimizer_state[key] = [data[f"opt/{key}/{i}"] for i in range(value["__arrays__"])]
        else:
            optimizer_state[key] = _json_restore(value)

    return TrainingState(
        epoch=int(meta["epoch"]),
        batch_index=int(meta["batch_index"]),
        global_step=int(meta["global_step"]),
        model_state=model_state,
        optimizer_state=optimizer_state,
        scheduler_state=_json_restore(meta["scheduler"]),
        loader_state=_json_restore(meta["loader"]),
        rng_states=_json_restore(meta["rng_states"]),
        best_metric=float(meta["best_metric"]),
        best_state=best_state,
        stale=int(meta["stale"]),
        history=_json_restore(meta["history"]),
        epoch_losses=[float(x) for x in meta["epoch_losses"]],
        # Absent in pre-objective archives: restore as empty.
        epoch_components=_json_restore(meta.get("epoch_components", [])),
        config=_json_restore(meta["config"]),
        spec=_json_restore(meta.get("spec")),
    )


# ---------------------------------------------------------------- RNG capture
def capture_rng_states(model) -> dict[str, dict]:
    """Bit-generator states of every ``rng`` a module tree holds.

    Dropout layers (and any module with an ``rng`` attribute) consume
    randomness during *training forwards*, so replaying batches after a
    resume only matches the uninterrupted run if these streams restart
    from the captured position. Modules sharing one generator are each
    recorded (and later restored to the same state), which is idempotent.
    """
    states: dict[str, dict] = {}
    for path, module in model.named_modules():
        rng = getattr(module, "rng", None)
        if isinstance(rng, np.random.Generator):
            states[path] = rng.bit_generator.state
    return states


def restore_rng_states(model, states: dict[str, dict]) -> None:
    """Restore generator states captured by :func:`capture_rng_states`."""
    modules = dict(model.named_modules())
    for path, state in states.items():
        module = modules.get(path)
        rng = getattr(module, "rng", None) if module is not None else None
        if isinstance(rng, np.random.Generator):
            rng.bit_generator.state = state
