"""Divergence watchdog: detect NaN/Inf, roll back, cool the LR, retry.

A single NaN batch poisons every parameter it touches through Adam's
moments, and the run keeps "training" on garbage for hours. The watchdog
snapshots model + optimizer state after healthy steps, checks each batch's
loss and pre-clip gradient norm *before* the optimizer applies it, and on
divergence restores the last good snapshot, halves the learning rate, and
lets the trainer retry. ``max_retries`` consecutive failures abort with a
:class:`DivergenceError` that says exactly where and why, instead of
silently emitting a NaN checkpoint.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = ["DivergenceError", "DivergenceWatchdog"]


class DivergenceError(RuntimeError):
    """Training diverged and retries were exhausted."""


class DivergenceWatchdog:
    """Guards one training run.

    Parameters
    ----------
    model / optimizer:
        Anything exposing ``state_dict()`` / ``load_state_dict()``.
    max_retries:
        Consecutive recoveries allowed before :class:`DivergenceError`;
        the counter resets whenever a healthy step lands.
    grad_limit:
        Optional finite ceiling on the pre-clip gradient norm; ``None``
        flags only non-finite losses/norms.
    lr_backoff:
        Multiplier applied to the learning rate at each recovery (0.5 =
        the classic halving).
    snapshot_every:
        Refresh the good snapshot every N healthy steps; 1 keeps rollback
        losses to a single batch at the cost of copying state per step.
    """

    def __init__(
        self,
        model,
        optimizer,
        max_retries: int = 3,
        grad_limit: float | None = None,
        lr_backoff: float = 0.5,
        snapshot_every: int = 1,
        on_lr_change: Callable[[float], None] | None = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 < lr_backoff < 1.0:
            raise ValueError("lr_backoff must be in (0, 1)")
        if snapshot_every < 1:
            raise ValueError("snapshot_every must be >= 1")
        self.model = model
        self.optimizer = optimizer
        self.max_retries = max_retries
        self.grad_limit = grad_limit
        self.lr_backoff = lr_backoff
        self.snapshot_every = snapshot_every
        self.on_lr_change = on_lr_change
        self.retries = 0  # consecutive, reset by record_good
        self.total_recoveries = 0
        self._good_steps = 0
        self._snapshot: tuple[dict, dict] | None = None
        self.snapshot()

    # ------------------------------------------------------------------
    def healthy(self, loss: float, grad_norm: float) -> bool:
        """Is this batch safe to apply?"""
        if not (math.isfinite(loss) and math.isfinite(grad_norm)):
            return False
        if self.grad_limit is not None and grad_norm > self.grad_limit:
            return False
        return True

    def snapshot(self) -> None:
        """Record the current model + optimizer state as known-good."""
        self._snapshot = (self.model.state_dict(), self.optimizer.state_dict())

    def record_good(self) -> None:
        """A healthy step was applied: reset the retry budget, re-snapshot."""
        self.retries = 0
        self._good_steps += 1
        if self._good_steps % self.snapshot_every == 0:
            self.snapshot()

    def recover(self, *, where: str, loss: float, grad_norm: float) -> None:
        """Roll back to the last good state and halve the LR.

        Raises :class:`DivergenceError` once ``max_retries`` consecutive
        recoveries have not produced a healthy step.
        """
        if self.retries >= self.max_retries:
            raise DivergenceError(
                f"training diverged at {where} (loss={loss!r}, grad_norm={grad_norm!r}) "
                f"and did not recover after {self.max_retries} rollback+LR-halving "
                f"retries; last LR was {self.optimizer.lr:g}. Lower the learning rate "
                "or raise grad_clip, then restart from the last checkpoint."
            )
        self.retries += 1
        self.total_recoveries += 1
        assert self._snapshot is not None
        model_state, optimizer_state = self._snapshot
        self.model.load_state_dict(model_state)
        self.optimizer.load_state_dict(optimizer_state)
        self.model.zero_grad()
        # The restore reset optimizer.lr to the snapshot's value, so the
        # cooldown compounds across consecutive retries of one incident.
        self.optimizer.lr = self.optimizer.lr * (self.lr_backoff**self.retries)
        if self.on_lr_change is not None:
            self.on_lr_change(self.lr_backoff)
