"""MKM-SR's operation-prediction auxiliary loss, on the Objective seam.

MKM-SR (Meng et al., 2020) originally trains next-operation prediction
alongside next-item prediction so the operation GRU learns transition
structure instead of a bag of operations. The knowledge-free port in
``repro.baselines.mkm_sr`` dropped it; this objective restores it as the
second client of :class:`~repro.objectives.CompositeObjective`, proving
the seam is not single-purpose.

The model contributes ``operation_logits(batch)`` — flat ``[B*T,
num_ops]`` scores over real operations, one row per padded micro position
— and the objective picks every valid transition ``t -> t+1`` and scores
the operation at ``t+1`` from the GRU state at ``t``. Normalization is
per-session (the transition-NLL sum divided by the batch's row count), so
the loss decomposes over the shard grid exactly like cross-entropy with
``total``.

This objective gathers a content-driven number of transitions per batch,
so it is deliberately *not* tape-compatible: under ``--compile`` the tape
audit rejects the trace (unregistered gather operands) and the step
trains eagerly — which matches MKM-SR itself, whose direct session-graph
construction already keeps it on the eager path.
"""

from __future__ import annotations

import numpy as np

from ..autograd.tensor import Tensor
from ..nn.loss import cross_entropy
from .base import Objective, ObjectiveParts

__all__ = ["OperationPredictionObjective"]


class OperationPredictionObjective(Objective):
    """Next-operation prediction over the flat micro-behavior sequence."""

    name = "op"
    component_names = ("op",)

    def compute(self, model, batch, *, total: int | None = None) -> ObjectiveParts:
        fn = getattr(model, "operation_logits", None)
        if fn is None:
            raise TypeError(
                f"{type(model).__name__} exposes no operation_logits(); the "
                "operation-prediction objective needs per-position op scores"
            )
        mask = batch.micro_mask
        steps = mask.shape[1]
        valid = (mask[:, :-1] > 0) & (mask[:, 1:] > 0)
        rows, cols = np.nonzero(valid)
        if rows.size == 0:  # degenerate shard: no observed transition
            zero = Tensor(0.0)
            return ObjectiveParts(zero, {"op": zero})
        logits = fn(batch)  # [B*T, num_ops]
        targets = (batch.micro_ops[rows, cols + 1] - 1).astype(np.int64)
        picked = logits.take(rows * steps + cols, axis=0)
        divisor = batch.batch_size if total is None else int(total)
        loss = cross_entropy(picked, targets, total=divisor)
        return ObjectiveParts(loss, {"op": loss})
