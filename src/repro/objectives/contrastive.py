"""InfoNCE over augmented session views: the EMBSR-SSL auxiliary loss.

Two deterministically augmented views of every batch (see
:mod:`repro.data.augment`) are encoded through the model's
``encode_sessions`` seam; matching rows are positives, every other row in
the batch is a negative. The similarity matrix is temperature-scaled
cosine similarity, and the symmetric loss reuses the fused
:func:`~repro.nn.cross_entropy` kernel against the diagonal — which is
exactly the tape-compatible log-softmax path, so ``--compile`` traces and
replays the whole contrastive term.
"""

from __future__ import annotations

import numpy as np

from ..autograd import tensor as _tensor
from ..compile.tape import static_array
from ..data.augment import AugmentConfig, augment_batch, view_generator
from ..data.dataset import SessionBatch
from ..nn.loss import cross_entropy
from .base import Objective, ObjectiveParts

__all__ = ["InfoNCEObjective"]

_VIEW_FIELDS = (
    "items", "item_mask", "ops", "op_mask",
    "micro_items", "micro_ops", "micro_mask", "last_op", "targets",
)


class InfoNCEObjective(Objective):
    """Contrastive alignment of two augmented views of each session.

    Parameters
    ----------
    num_ops:
        Operation-vocabulary size of the dataset (substitution draws
        uniform replacement ids from it).
    temperature:
        Softmax temperature of the similarity logits.
    augment:
        The view-augmentation knobs; defaults match EMBSR-SSL's recipe.

    Shard semantics: on the shard grid each shard contrasts its own rows
    (in-shard negatives) and divides by the *full* batch's row count, so
    the fixed-order shard sum is the batch's per-session mean of in-shard
    InfoNCE — the grid-canonical definition of the objective, identical
    for the serial executor and any worker count.
    """

    name = "infonce"
    component_names = ("infonce",)

    def __init__(
        self,
        num_ops: int,
        temperature: float = 0.2,
        augment: AugmentConfig | None = None,
    ) -> None:
        super().__init__()
        if num_ops < 0:
            raise ValueError(f"num_ops must be >= 0, got {num_ops}")
        self.num_ops = int(num_ops)
        self.temperature = float(temperature)
        if self.temperature <= 0.0:
            raise ValueError(f"temperature must be positive, got {temperature}")
        self.augment = augment or AugmentConfig()

    # ------------------------------------------------------------------
    def _view(self, batch: SessionBatch, view: int) -> SessionBatch:
        """One augmented view, tape-safely.

        Eagerly this is a plain rebuild. Under a tape the view's arrays
        become persistent registered buffers plus one host slot that
        re-runs the (pure) builder against the refreshed source batch and
        the *current* step context — so replays of later batches augment
        with their own coordinates, not the traced step's.
        """

        def build() -> dict[str, np.ndarray]:
            ctx = self._ctx
            rng = view_generator(
                ctx.seed, ctx.epoch, ctx.batch_index, ctx.shard, ctx.retry, view
            )
            return augment_batch(batch, rng, self.num_ops, self.augment)

        tape = _tensor._TAPE
        if tape is None:
            return SessionBatch(**build())
        arrays = build()
        for name in _VIEW_FIELDS:
            tape.register(arrays[name])

        def slot() -> None:
            fresh = build()
            for name in _VIEW_FIELDS:
                np.copyto(arrays[name], fresh[name])

        tape.add_host(f"augment_view{view}", slot)
        return SessionBatch(**arrays)

    def compute(self, model, batch, *, total: int | None = None) -> ObjectiveParts:
        encode = getattr(model, "encode_sessions", None)
        if encode is None:
            raise TypeError(
                f"{type(model).__name__} exposes no encode_sessions(); the "
                "InfoNCE objective needs the session-encoding seam"
            )
        z1 = encode(self._view(batch, 0)).l2_normalize(axis=-1)
        z2 = encode(self._view(batch, 1)).l2_normalize(axis=-1)
        logits = (z1 @ z2.T) * (1.0 / self.temperature)
        rows = batch.batch_size
        # Shape-only (arange of the row count): static under a tape, since
        # the row count is part of the compile shape key.
        targets = static_array(lambda: np.arange(rows, dtype=np.int64))
        loss = (
            cross_entropy(logits, targets, total=total)
            + cross_entropy(logits.T, targets, total=total)
        ) * 0.5
        return ObjectiveParts(loss, {"infonce": loss})
