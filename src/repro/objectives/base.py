"""The composable training-objective seam shared by all four training paths.

Before this package existed the training objective was the literal
expression ``cross_entropy(model(batch), batch.target_classes)`` inlined
into four places — the eager trainer, the compiled step engine, the shard
executors, and the online mini-trainer — so adding any auxiliary loss
meant copy-pasting it four times and keeping the copies bit-identical by
hand. An :class:`Objective` owns that expression instead: every path asks
it for ``(scalar loss, named component losses)`` and stays agnostic of
*what* is being optimized.

Contracts every objective must honor (docs/objectives.md):

* **Purity per step.** ``compute`` must be a pure function of the model
  parameters, the batch content, the module RNG streams it consumes, and
  the :class:`StepContext` installed by ``begin_step``. Any extra
  randomness must come from *stateless* generators keyed by the context
  (see :func:`repro.data.augment.view_generator`) so eager, compiled,
  serial-shard, and forked-worker executions of a step agree bitwise.
* **Tape compatibility.** Batch-derived raw arrays fed into graph ops
  must be routed through :func:`repro.compile.host_array` /
  :func:`repro.compile.static_array` so a traced step replays against
  refreshed buffers. An objective that cannot satisfy this simply fails
  the tape audit and trains eagerly — never incorrectly.
* **Shard decomposability.** With ``total`` set (the full batch's row
  count), the fixed-order sum of per-shard losses must equal the
  whole-batch loss, mirroring :func:`repro.nn.cross_entropy`'s ``total``
  semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..autograd.tensor import Tensor
from ..compile.tape import host_array
from ..nn.loss import cross_entropy

__all__ = [
    "StepContext",
    "ObjectiveParts",
    "Objective",
    "CrossEntropyObjective",
    "CompositeObjective",
]


@dataclass(frozen=True)
class StepContext:
    """Coordinates of one optimization step, for stateless randomness.

    Mirrors the seeding tuple of the shard dropout streams: everything an
    objective needs to rebuild step-local randomness (augmented views)
    identically in any process, including compiled replays that never go
    through ``compute`` again.
    """

    seed: int = 0
    epoch: int = 0
    batch_index: int = 0
    shard: int = 0
    retry: int = 0


@dataclass
class ObjectiveParts:
    """One step's loss tensor plus its named scalar component tensors.

    ``components`` values are live graph tensors (often aliasing ``loss``
    or its addends); callers read ``float(t.data)`` *after* the step so
    compiled replays — which refresh tensor buffers in place — surface
    fresh per-component values without recomputation.
    """

    loss: Tensor
    components: dict[str, Tensor] = field(default_factory=dict)

    def component_values(self) -> dict[str, float]:
        return {name: float(t.data) for name, t in self.components.items()}


class Objective:
    """Produces a scalar training loss from ``(model, batch)``.

    Subclasses override :meth:`compute`; ``component_names`` fixes the
    order in which component losses are reported (the parallel engine
    sizes its shared-memory component block from it, so it must be a
    static property of the objective, not of any particular batch).
    """

    name: str = "objective"
    component_names: tuple[str, ...] = ()

    def __init__(self) -> None:
        self._ctx = StepContext()

    # ------------------------------------------------------------------
    def begin_step(self, ctx: StepContext | None) -> None:
        """Install the step coordinates consumed by stateless randomness.

        Called once per forward — including before compiled *replays*,
        whose host slots re-run builders that read ``self._ctx``.
        """
        if ctx is not None:
            self._ctx = ctx

    def compute(self, model, batch, *, total: int | None = None) -> ObjectiveParts:
        """Loss of ``batch`` under ``model``; see the module contract.

        ``total`` carries the full batch's row count when ``batch`` is one
        shard of it (``None`` on the whole-batch paths).
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


class CrossEntropyObjective(Objective):
    """The paper's objective (Eq. 20): softmax cross-entropy over items.

    Graph-identical to the expression the training paths used to inline,
    so refactored runs train bit-identical parameters. ``target_classes``
    is routed through :func:`~repro.compile.host_array` because the
    :class:`~repro.data.dataset.SessionBatch` property allocates a fresh
    array per access — under a tape it becomes a registered, per-replay
    refreshed buffer.
    """

    name = "ce"
    component_names = ("ce",)

    def compute(self, model, batch, *, total: int | None = None) -> ObjectiveParts:
        logits = model(batch)
        targets = host_array(lambda: batch.target_classes)
        loss = cross_entropy(logits, targets, total=total)
        return ObjectiveParts(loss, {"ce": loss})


class CompositeObjective(Objective):
    """Weighted sum of named sub-objectives.

    ``terms`` is ``[(name, objective, weight), ...]``; the composite loss
    is ``sum(weight_i * loss_i)`` accumulated in term order (fixed-order
    floating-point, like everything else in the determinism contract).
    Reported components are the *unweighted* per-term losses.
    """

    def __init__(self, terms) -> None:
        super().__init__()
        self.terms = [(str(n), obj, float(w)) for n, obj, w in terms]
        if not self.terms:
            raise ValueError("CompositeObjective needs at least one term")
        names = [n for n, _, _ in self.terms]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate component names in composite objective: {names}")
        self.name = "+".join(names)
        self.component_names = tuple(names)

    def begin_step(self, ctx: StepContext | None) -> None:
        super().begin_step(ctx)
        for _, objective, _ in self.terms:
            objective.begin_step(ctx)

    def compute(self, model, batch, *, total: int | None = None) -> ObjectiveParts:
        components: dict[str, Tensor] = {}
        loss: Tensor | None = None
        for name, objective, weight in self.terms:
            part = objective.compute(model, batch, total=total)
            components[name] = part.loss
            term = part.loss if weight == 1.0 else part.loss * weight
            loss = term if loss is None else loss + term
        return ObjectiveParts(loss, components)
