"""Composable training objectives (docs/objectives.md).

Every training path — eager :class:`~repro.eval.Trainer` batches, the
compiled :class:`~repro.compile.CompileEngine` step, the shard-grid
executors of :mod:`repro.parallel`, and the online mini-trainer in
:mod:`repro.deploy` — consumes an :class:`Objective` instead of inlining
a loss expression. :func:`build_objective` maps the ``TrainConfig``
``objective`` name to a concrete instance.
"""

from __future__ import annotations

from .base import (
    CompositeObjective,
    CrossEntropyObjective,
    Objective,
    ObjectiveParts,
    StepContext,
)
from .contrastive import InfoNCEObjective
from .op_prediction import OperationPredictionObjective

__all__ = [
    "StepContext",
    "ObjectiveParts",
    "Objective",
    "CrossEntropyObjective",
    "CompositeObjective",
    "InfoNCEObjective",
    "OperationPredictionObjective",
    "OBJECTIVE_NAMES",
    "build_objective",
]

#: Names accepted by ``TrainConfig.objective`` / ``--objective``.
OBJECTIVE_NAMES = ("ce", "infonce", "ssl", "op-aux")


def build_objective(
    name: str,
    *,
    cl_weight: float = 0.1,
    num_ops: int = 0,
    temperature: float = 0.2,
) -> Objective:
    """Construct the named objective.

    ``ce``
        Plain next-item cross-entropy — the paper's Eq. 20 and the
        default on every path.
    ``infonce``
        Pure contrastive alignment of augmented views (diagnostics; it
        never sees the next-item labels).
    ``ssl``
        EMBSR-SSL: ``ce + cl_weight * infonce``.
    ``op-aux``
        MKM-SR's auxiliary loss: ``ce + cl_weight * op`` where ``op`` is
        next-operation prediction.

    ``cl_weight`` weights whichever auxiliary term the composite carries;
    ``num_ops`` is the dataset's operation-vocabulary size (used by both
    auxiliary terms); ``temperature`` only affects InfoNCE.
    """
    if name == "ce":
        return CrossEntropyObjective()
    if name == "infonce":
        return InfoNCEObjective(num_ops, temperature=temperature)
    if name == "ssl":
        return CompositeObjective(
            [
                ("ce", CrossEntropyObjective(), 1.0),
                ("infonce", InfoNCEObjective(num_ops, temperature=temperature), float(cl_weight)),
            ]
        )
    if name == "op-aux":
        return CompositeObjective(
            [
                ("ce", CrossEntropyObjective(), 1.0),
                ("op", OperationPredictionObjective(), float(cl_weight)),
            ]
        )
    raise KeyError(
        f"unknown objective {name!r}: expected one of {', '.join(OBJECTIVE_NAMES)}"
    )
