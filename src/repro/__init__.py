"""EMBSR reproduction: Micro-Behavior Encoding for Session-based Recommendation.

Reproduces Yuan et al., ICDE 2022 — the EMBSR model, its eleven baselines,
the datasets' preprocessing pipeline, and the full evaluation harness — on a
from-scratch NumPy autograd stack (no PyTorch required).

Subpackages
-----------
``repro.autograd``
    Reverse-mode automatic differentiation over NumPy arrays.
``repro.nn``
    Neural-network module library (Linear, Embedding, GRU, ...).
``repro.data``
    Micro-behavior session schema, synthetic dataset generators,
    preprocessing, and batching.
``repro.graphs``
    Session-to-multigraph conversion with star nodes; batched graph arrays.
``repro.core``
    The EMBSR model and its ablation variants.
``repro.baselines``
    S-POP, SKNN, NARM, STAMP, SR-GNN, GC-SAN, BERT4Rec, SGNN-HN, RIB, HUP,
    MKM-SR.
``repro.eval``
    HR@K / MRR@K metrics, trainer, evaluator, experiment runner,
    significance testing.
``repro.registry``
    Declarative ``ModelSpec`` + the registered construction path for
    every system (docs/registry.md).
``repro.artifacts``
    Self-describing model bundles: spec + vocabulary + weights +
    metadata in one atomic ``.npz``.
``repro.perf``
    Op-level profiler and the fused-kernel fast path (docs/performance.md).
"""

__version__ = "1.0.0"
