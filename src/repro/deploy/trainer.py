"""Incremental training from the live event stream.

:class:`OnlineTrainer` closes the train half of the deployment loop: it
drains the gateway's :class:`~repro.deploy.buffer.EventRingBuffer`,
rebuilds per-session state with the *same* merge-successive semantics the
serving path uses (:class:`~repro.serve.LiveSession`), harvests
prefix→next-item training examples from every genuine macro transition,
and runs seeded mini-epochs of Adam on the most recent examples starting
from the incumbent's weights. Each :meth:`snapshot` emits a
self-describing artifact through :mod:`repro.artifacts` (atomic write)
and records it in the :class:`~repro.deploy.lineage.DeploymentStore` as a
``candidate`` with full version lineage — ready for
:meth:`~repro.deploy.DeploymentManager.stage` to canary it.
"""

from __future__ import annotations

import pathlib
import threading
from collections import OrderedDict, deque

import numpy as np

from ..autograd import default_dtype
from ..data.dataset import collate
from ..data.schema import MacroSession
from ..nn import Adam, clip_grad_norm
from ..serve import LiveSession
from .buffer import EventRingBuffer
from .lineage import DeploymentStore, param_hash

__all__ = ["OnlineTrainer"]


class OnlineTrainer:
    """Mini-epoch incremental trainer over recent live sessions.

    Parameters
    ----------
    base:
        A fitted :class:`~repro.eval.trainer.NeuralRecommender` — supplies
        the spec, the starting weights, the vocabulary order, and the
        artifact metadata (popularity ranking etc.).
    buffer:
        The event ring buffer the serving path appends to.
    store:
        Deployment store snapshots are written into.
    base_version:
        Lineage parent of the first snapshot (the serving generation).
    mini_epochs / batch_size / lr / grad_clip:
        Optimization knobs for each snapshot's mini-run. Learning rates an
        order below the offline run are typical — the goal is drift
        adaptation, not retraining.
    max_examples:
        Recency window: only this many of the newest harvested examples
        train each snapshot.
    min_examples:
        :meth:`snapshot` returns ``None`` (no artifact) below this.
    """

    def __init__(
        self,
        base,
        buffer: EventRingBuffer,
        store: DeploymentStore,
        *,
        base_version: int = 1,
        mini_epochs: int = 1,
        batch_size: int = 32,
        lr: float = 5e-4,
        grad_clip: float = 5.0,
        max_examples: int = 2048,
        min_examples: int = 8,
        max_macro_len: int = 20,
        max_ops_per_item: int = 6,
        max_sessions: int = 512,
        seed: int = 0,
    ):
        if base.trainer is None:
            raise ValueError(f"{base.name} is not fitted; nothing to train from")
        self.base = base
        self.buffer = buffer
        self.store = store
        self.mini_epochs = mini_epochs
        self.batch_size = batch_size
        self.lr = lr
        self.grad_clip = grad_clip
        self.min_examples = min_examples
        self.max_macro_len = max_macro_len
        self.max_ops_per_item = max_ops_per_item
        self.max_sessions = max_sessions
        self.seed = seed
        self.parent_version = int(base_version)
        self._weights = {k: v.copy() for k, v in base.model.state_dict().items()}
        self._sessions: OrderedDict[str, LiveSession] = OrderedDict()
        self._examples: deque[MacroSession] = deque(maxlen=max_examples)
        self._lock = threading.Lock()
        self.events_consumed = 0
        self.examples_harvested = 0
        self.snapshots_emitted = 0

    # ------------------------------------------------------------------
    def ingest_events(self) -> int:
        """Drain the buffer into session tails; harvest training examples.

        An example is emitted whenever an event starts a *new* macro step
        on a session that already has history: the pre-event window is the
        input, the event's item is the target — exactly the next-item
        prediction task the offline pipeline trains.
        """
        events = self.buffer.drain()
        with self._lock:
            for event in events:
                session = self._sessions.get(event.session_id)
                if session is None:
                    session = self._sessions[event.session_id] = LiveSession()
                    while len(self._sessions) > self.max_sessions:
                        self._sessions.popitem(last=False)
                else:
                    self._sessions.move_to_end(event.session_id)
                if session.macro_items and session.macro_items[-1] != event.item:
                    items, ops = session.window(self.max_macro_len)
                    self._examples.append(
                        MacroSession(list(items), [list(o) for o in ops], target=event.item)
                    )
                    self.examples_harvested += 1
                session.record(event.item, event.operation, event.at)
            self.events_consumed += len(events)
        return len(events)

    @property
    def pending_examples(self) -> int:
        return len(self._examples)

    # ------------------------------------------------------------------
    def _mini_fit(self, examples: list[MacroSession]) -> tuple[dict, float]:
        """Run the mini-epochs from the current weights; returns (state, loss).

        The objective comes from the spec's portable train settings, so a
        model offline-trained under EMBSR-SSL keeps its contrastive term
        while adapting online — the spec is the single source of truth for
        *what* is optimized on every path.
        """
        from ..objectives import StepContext, build_objective

        spec = self.base.spec
        train = dict(spec.train or {})
        objective = build_objective(
            train.get("objective", "ce"),
            cl_weight=float(train.get("cl_weight", 0.1)),
            num_ops=spec.num_ops,
        )
        run_seed = self.seed + self.snapshots_emitted
        rng = np.random.default_rng(run_seed)
        with default_dtype(spec.dtype):
            model = self.base.build_model()
            model.load_state_dict(self._weights)
            model.train()
            optimizer = Adam(model.parameters(), lr=self.lr)
            losses: list[float] = []
            for mini_epoch in range(self.mini_epochs):
                order = rng.permutation(len(examples))
                for batch_no, start in enumerate(range(0, len(order), self.batch_size)):
                    chunk = [examples[i] for i in order[start : start + self.batch_size]]
                    batch = collate(chunk, max_ops_per_item=self.max_ops_per_item)
                    optimizer.zero_grad()
                    objective.begin_step(
                        StepContext(seed=run_seed, epoch=mini_epoch, batch_index=batch_no)
                    )
                    parts = objective.compute(model, batch)
                    parts.loss.backward()
                    clip_grad_norm(model.parameters(), self.grad_clip)
                    optimizer.step()
                    losses.append(float(parts.loss.item()))
            return model.state_dict(), float(np.mean(losses))

    def snapshot(self) -> pathlib.Path | None:
        """Train on the recent examples and emit a candidate artifact.

        Returns the artifact path, or ``None`` when there is not yet
        enough fresh signal (fewer than ``min_examples`` examples).
        """
        from ..artifacts import save_artifact

        self.ingest_events()
        with self._lock:
            examples = list(self._examples)
        if len(examples) < self.min_examples:
            return None

        state, mean_loss = self._mini_fit(examples)
        version = self.store.next_version()
        metadata = dict(self._base_metadata())
        metadata["deployment"] = {
            "version": version,
            "parent": self.parent_version,
            "events_consumed": self.events_consumed,
            "examples": len(examples),
            "mini_epochs": self.mini_epochs,
            "lr": self.lr,
            "mean_loss": round(mean_loss, 6),
        }
        path = self.store.artifact_path(version)
        save_artifact(
            path,
            spec=self.base.spec,
            weights=state,
            item_ids=self._item_ids(),
            metadata=metadata,
        )
        self.store.record(
            version, path, param_hash(state), parent=self.parent_version, status="candidate"
        )
        self._weights = state
        self.parent_version = version
        self.snapshots_emitted += 1
        return path

    # ------------------------------------------------------------------
    def _item_ids(self) -> list[int]:
        info = self.base._dataset_info or {}
        item_ids = info.get("item_ids")
        if not item_ids:
            raise RuntimeError(f"{self.base.name} carries no vocabulary to snapshot")
        return list(item_ids)

    def _base_metadata(self) -> dict:
        info = self.base._dataset_info or {}
        return {
            "model": self.base.name,
            "dtype": self.base.spec.dtype,
            "dataset": {"name": info.get("name", "live"), "fingerprint": info.get("fingerprint", "")},
            "popularity": info.get("popularity", []),
        }

    # ------------------------------------------------------------------
    def start_loop(self, interval_s: float, on_snapshot=None) -> threading.Event:
        """Periodic snapshot loop on a daemon thread; returns its stop event.

        ``on_snapshot(path)`` fires for every emitted artifact — the CLI
        wires it to :meth:`~repro.deploy.DeploymentManager.stage` so fresh
        snapshots canary themselves.
        """
        stop = threading.Event()

        def run() -> None:
            while not stop.wait(interval_s):
                try:
                    path = self.snapshot()
                except Exception:  # noqa: BLE001 — the loop must survive bad batches
                    continue
                if path is not None and on_snapshot is not None:
                    on_snapshot(path)

        threading.Thread(target=run, name="online-trainer", daemon=True).start()
        return stop
