"""Zero-downtime hot-swap orchestration: stage → canary → decide.

:class:`DeploymentManager` owns the serving generations of one
:class:`~repro.serve.RecommenderService`:

* **Stage** — a candidate artifact loads and warms on a background thread
  while the incumbent keeps serving; the flip that makes it live is a
  single pointer assignment under the service lock, so in-flight batches
  finish on the model they started with and no request ever waits on a
  load.
* **Canary** — a sticky :class:`~repro.deploy.canary.CanaryRouter` sends
  N% of sessions to the candidate; every session's cache entries are
  scoped by the version that scored them
  (:meth:`~repro.serve.RecommenderService.score_scope`), so a demoted
  generation's rankings can never be served from cache.
* **Shadow + decide** — sampled ingest events drive the prequential
  :class:`~repro.deploy.comparator.ShadowComparator`; candidate scoring
  errors feed a dedicated :class:`~repro.reliability.CircuitBreaker`; and
  non-finite candidate scores trip a divergence check. Any of the three —
  breaker open, HR@k regression, divergence — demotes the candidate and
  restores the incumbent without dropping a request; a clean comparator
  window promotes it.

Every transition runs through a failpoint (``deploy.swap.load`` /
``warm`` / ``flip`` / ``commit``, ``deploy.canary.assign`` / ``promote``
/ ``rollback``) so chaos tests can kill the swap at any step and assert
recovery from the :class:`~repro.deploy.lineage.DeploymentStore`.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..data.dataset import collate
from ..data.schema import MacroSession
from ..eval.topk import top_k_indices
from ..reliability import CircuitBreaker, failpoint
from .canary import CanaryRouter
from .comparator import ShadowComparator
from .lineage import DeploymentStore, param_hash

__all__ = ["DeploymentError", "DeploymentConfig", "DeployedModel", "DeploymentManager"]

_TIMELINE_LIMIT = 256
_SAMPLE_BUCKETS = 10_000


class DeploymentError(RuntimeError):
    """A deployment operation could not proceed (maps to HTTP 409/400)."""


@dataclass(frozen=True)
class DeploymentConfig:
    """Policy knobs for canary routing, shadow scoring, and auto-decisions."""

    canary_pct: float = 10.0          # sessions routed to the candidate
    shadow_sample_pct: float = 25.0   # ingest events shadow-evaluated
    seed: int = 0                     # salts canary + shadow hashes
    hrk: int = 10                     # online HR@k cutoff
    window: int = 200                 # comparator sliding window
    min_observations: int = 50        # observations before any verdict
    regression_threshold: float = 0.10  # absolute HR@k drop that demotes
    breaker_threshold: int = 5        # consecutive candidate errors to open
    breaker_reset_s: float = 30.0
    warm_requests: int = 1            # scoring calls before the flip
    auto_decide: bool = True          # act on comparator verdicts automatically


@dataclass
class DeployedModel:
    """One serving generation: a fitted recommender plus its identity."""

    version: int
    recommender: object
    param_hash: str | None = None
    path: str | None = None

    def summary(self) -> dict:
        return {
            "version": self.version,
            "param_hash": self.param_hash,
            "path": self.path,
            "model": getattr(self.recommender, "name", "?"),
        }


def _recommender_hash(recommender) -> str | None:
    """Parameter hash of a recommender, or ``None`` for non-parametric ones."""
    trainer = getattr(recommender, "trainer", None)
    if trainer is None:
        return None
    return param_hash(trainer.model.state_dict())


class DeploymentManager:
    """Generation pointer, canary policy, and rollback machinery.

    Parameters
    ----------
    service:
        The :class:`~repro.serve.RecommenderService` whose recommender the
        generations replace; the manager attaches itself via
        ``service.attach_deployment``.
    store:
        Optional :class:`DeploymentStore` for version lineage and crash
        recovery; without it, lineage lives only in memory.
    config:
        :class:`DeploymentConfig` policy; per-stage overrides are allowed.
    lock:
        The lock serializing service mutation against scoring — the
        gateway shares its ``service_lock`` (re-entrant) so flips are
        atomic with respect to batched scoring.
    """

    def __init__(
        self,
        service,
        store: DeploymentStore | None = None,
        config: DeploymentConfig | None = None,
        lock: threading.RLock | None = None,
        clock: Callable[[], float] = time.monotonic,
        incumbent_version: int | None = None,
        incumbent_path: str | None = None,
    ):
        self.service = service
        self.store = store
        self.config = config or DeploymentConfig()
        self.lock = lock or threading.RLock()
        self.clock = clock
        self.generation = 0  # promote count since boot
        self.candidate: DeployedModel | None = None
        self.router: CanaryRouter | None = None
        self.comparator: ShadowComparator | None = None
        self.candidate_breaker: CircuitBreaker | None = None
        self.shadow_pct = self.config.shadow_sample_pct
        self.timeline: list[dict] = []
        self.assignments = {"incumbent": 0, "candidate": 0}
        self.observer: Callable[[str, dict], None] | None = None
        self.on_assign: Callable[[str], None] | None = None
        self._swap_thread: threading.Thread | None = None

        version = incumbent_version or (store.next_version() if store else 1)
        self.incumbent = DeployedModel(
            version=version,
            recommender=service.recommender,
            param_hash=_recommender_hash(service.recommender),
            path=incumbent_path,
        )
        if store is not None and store.latest_promoted() is None:
            store.record(
                version,
                incumbent_path or "<booted-in-memory>",
                self.incumbent.param_hash,
                parent=None,
                status="promoted",
            )
        service.attach_deployment(self)
        self._record("booted", {"incumbent": self.incumbent.summary()})

    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, store: DeploymentStore, config: DeploymentConfig | None = None, **service_kwargs):
        """Rebuild the serving generation from lineage after a crash.

        Boots a fresh :class:`~repro.serve.RecommenderService` from the
        last *promoted* artifact on disk — candidates that were mid-swap
        when the process died are simply never loaded, which is the whole
        rollback story for a hard kill.
        """
        from ..serve import RecommenderService

        record = store.latest_promoted()
        if record is None:
            raise DeploymentError(f"no promoted generation recorded in {store.directory}")
        service = RecommenderService.from_artifact(record["path"], **service_kwargs)
        return cls(
            service,
            store=store,
            config=config,
            incumbent_version=record["version"],
            incumbent_path=record["path"],
        )

    # ------------------------------------------------------------------ stage
    def stage(
        self,
        artifact_path,
        canary_pct: float | None = None,
        shadow_sample: float | None = None,
        wait: bool = True,
    ) -> bool:
        """Load, warm, and canary a candidate artifact (background thread).

        With ``wait=True`` the call returns after the swap thread finished
        (flip done or failure recorded); ``wait=False`` returns as soon as
        the thread is running. Returns whether a candidate ended up live.
        Raises :class:`DeploymentError` if a candidate is already staged.
        """
        with self.lock:
            if self.candidate is not None:
                raise DeploymentError(
                    f"candidate v{self.candidate.version} is already live; "
                    "promote or roll it back first"
                )
            if self._swap_thread is not None and self._swap_thread.is_alive():
                raise DeploymentError("a swap is already in progress")
            pct = self.config.canary_pct if canary_pct is None else float(canary_pct)
            sample = (
                self.config.shadow_sample_pct if shadow_sample is None else float(shadow_sample)
            )
            thread = threading.Thread(
                target=self._swap,
                args=(str(artifact_path), pct, sample),
                name="deploy-swap",
                daemon=True,
            )
            self._swap_thread = thread
        thread.start()
        if wait:
            thread.join()
            return self.candidate is not None or self._last_event() == "promoted"
        return True

    def _swap(self, artifact_path: str, pct: float, sample: float) -> None:
        """Background swap body; any failure leaves the incumbent serving."""
        installed = False
        try:
            failpoint("deploy.swap.load", artifact_path)
            model = self._load_candidate(artifact_path)
            failpoint("deploy.swap.warm", model.version)
            self._warm(model)
            with self.lock:
                failpoint("deploy.swap.flip", model.version)
                self.candidate = model
                self.router = CanaryRouter(pct, seed=self.config.seed + model.version)
                self.comparator = ShadowComparator(
                    k=self.config.hrk,
                    window=self.config.window,
                    min_observations=self.config.min_observations,
                    regression_threshold=self.config.regression_threshold,
                )
                self.candidate_breaker = CircuitBreaker(
                    failure_threshold=self.config.breaker_threshold,
                    reset_timeout_s=self.config.breaker_reset_s,
                    clock=self.clock,
                )
                self.shadow_pct = sample
                installed = True
            self._record(
                "canary_started",
                {"candidate": model.summary(), "canary_pct": pct, "shadow_sample_pct": sample},
            )
            failpoint("deploy.swap.commit", model.version)
        except BaseException as error:  # noqa: BLE001 — incl. SimulatedCrash
            if installed:
                # Crashed after the flip: the only consistent exit is down.
                self.rollback(reason=f"swap crashed post-flip: {error!r}")
            else:
                self._record("swap_failed", {"path": artifact_path, "error": repr(error)})

    def _load_candidate(self, artifact_path: str) -> DeployedModel:
        from ..artifacts import load_artifact
        from ..eval.trainer import NeuralRecommender

        bundle = load_artifact(artifact_path)
        if bundle.spec.num_ops != self.service.num_ops:
            raise DeploymentError(
                f"candidate has {bundle.spec.num_ops} operations, service expects "
                f"{self.service.num_ops}"
            )
        if bundle.item_ids != self.service.vocab.ordered_raw_ids():
            raise DeploymentError(
                "candidate vocabulary does not match the serving vocabulary; "
                "live sessions would score against the wrong embedding rows"
            )
        version = int(
            bundle.metadata.get("deployment", {}).get("version", 0)
        ) or (self.store.next_version() if self.store else self.incumbent.version + 1)
        recommender = NeuralRecommender.from_artifact(bundle)
        model = DeployedModel(
            version=version,
            recommender=recommender,
            param_hash=param_hash(bundle.weights),
            path=artifact_path,
        )
        if self.store is not None and not any(
            r["version"] == version for r in self.store.lineage()
        ):
            self.store.record(
                version, artifact_path, model.param_hash,
                parent=self.incumbent.version, status="candidate",
            )
        return model

    def _warm(self, model: DeployedModel) -> None:
        """Pre-flip scoring: JIT caches, first-touch allocations, sanity."""
        example = MacroSession([1], [[0]], target=1)
        batch = collate([example])
        for _ in range(max(1, self.config.warm_requests)):
            scores = np.asarray(model.recommender.score_batch(batch), dtype=float)
        if not np.isfinite(scores).all():
            raise DeploymentError(f"candidate v{model.version} produced non-finite warmup scores")

    # ------------------------------------------------------------------ route
    def arm_for(self, session_id: str) -> DeployedModel:
        """The generation that scores this session right now (sticky)."""
        candidate, router = self.candidate, self.router
        if candidate is None or router is None:
            self.assignments["incumbent"] += 1
            return self.incumbent
        failpoint("deploy.canary.assign", session_id)
        if router.is_candidate(session_id):
            self.assignments["candidate"] += 1
            if self.on_assign is not None:
                self.on_assign("candidate")
            return candidate
        self.assignments["incumbent"] += 1
        if self.on_assign is not None:
            self.on_assign("incumbent")
        return self.incumbent

    def scope_for(self, session_id: str, retrieval_scope) -> tuple:
        """Cache-scope component: the arm's version + its scoring config.

        The candidate always scores exact (no ANN index is built for a
        model that may be demoted in seconds), so its scope carries no
        retrieval component.
        """
        arm = self.candidate if (
            self.candidate is not None
            and self.router is not None
            and self.router.is_candidate(session_id)
        ) else self.incumbent
        if arm is self.incumbent:
            return (f"v{arm.version}", retrieval_scope)
        return (f"v{arm.version}", None)

    def candidate_failure(self, error: Exception) -> None:
        """A candidate scoring call failed on the serving path."""
        breaker = self.candidate_breaker
        if breaker is None:
            return
        breaker.record_failure()
        if breaker.state == CircuitBreaker.OPEN:
            self.rollback(reason=f"candidate breaker opened: {error!r}")

    # ------------------------------------------------------------------ shadow
    def wants_shadow(self, session_id: str, step: int) -> bool:
        """Deterministic per-event sampling decision for shadow scoring."""
        if self.candidate is None:
            return False
        if self.shadow_pct >= 100.0:
            return True
        if self.shadow_pct <= 0.0:
            return False
        key = f"{self.config.seed}:{session_id}:{step}".encode()
        return zlib.crc32(key) % _SAMPLE_BUCKETS < self.shadow_pct / 100.0 * _SAMPLE_BUCKETS

    def observe_event(self, example: MacroSession, target_class: int, session_id: str) -> None:
        """One prequential shadow evaluation: both arms score the pre-event
        prefix, hit@k against the item the user actually went to next."""
        with self.lock:
            candidate, comparator, breaker = self.candidate, self.comparator, self.candidate_breaker
            incumbent = self.incumbent
        if candidate is None or comparator is None:
            return
        batch = collate([example])
        try:
            cand_scores = np.asarray(candidate.recommender.score_batch(batch), dtype=float)
        except Exception as error:  # noqa: BLE001 — candidate-only failure
            self.candidate_failure(error)
            return
        if not np.isfinite(cand_scores).all():
            self.rollback(reason="divergence watchdog: candidate scores went non-finite")
            return
        if breaker is not None:
            breaker.record_success()
        try:
            inc_scores = np.asarray(incumbent.recommender.score_batch(batch), dtype=float)
        except Exception:  # noqa: BLE001 — incumbent hiccup: no paired sample
            return
        k = comparator.k
        inc_hit = bool((top_k_indices(inc_scores, k)[0] == target_class).any())
        cand_hit = bool((top_k_indices(cand_scores, k)[0] == target_class).any())
        comparator.observe(inc_hit, cand_hit)
        if self.observer is not None:
            self.observer("shadow_eval", comparator.stats())
        if self.config.auto_decide:
            verdict = comparator.verdict()
            if verdict == "rollback":
                self.rollback(reason=f"online HR@{k} regression: {comparator.stats()}")
            elif verdict == "promote":
                self.promote(reason=f"online HR@{k} window clean: {comparator.stats()}")

    # ------------------------------------------------------------------ decide
    def promote(self, reason: str = "manual") -> DeployedModel:
        """Candidate becomes the incumbent; every session re-routes to it."""
        with self.lock:
            candidate = self.candidate
            if candidate is None:
                raise DeploymentError("no candidate to promote")
            failpoint("deploy.canary.promote", candidate.version)
            previous = self.incumbent
            self.incumbent = candidate
            self._clear_candidate()
            self.generation += 1
            self.service.adopt_recommender(candidate.recommender)
        if self.store is not None:
            self.store.set_status(candidate.version, "promoted")
        self._record(
            "promoted",
            {
                "candidate": candidate.summary(),
                "previous": previous.summary(),
                "reason": reason,
                "generation": self.generation,
            },
        )
        return candidate

    def rollback(self, reason: str = "manual") -> DeployedModel:
        """Drop the candidate; the incumbent (never unloaded) keeps serving."""
        with self.lock:
            candidate = self.candidate
            if candidate is None:
                raise DeploymentError("no candidate to roll back")
            failpoint("deploy.canary.rollback", candidate.version)
            self._clear_candidate()
        if self.store is not None:
            self.store.set_status(candidate.version, "rolled_back")
        self._record(
            "rolled_back",
            {"candidate": candidate.summary(), "reason": reason,
             "incumbent": self.incumbent.summary()},
        )
        return candidate

    def _clear_candidate(self) -> None:
        self.candidate = None
        self.router = None
        self.comparator = None
        self.candidate_breaker = None

    # ------------------------------------------------------------------ state
    def _record(self, event: str, payload: dict) -> None:
        entry = {"at": self.clock(), "event": event, **payload}
        self.timeline.append(entry)
        del self.timeline[:-_TIMELINE_LIMIT]
        if self.observer is not None:
            self.observer(event, entry)

    def _last_event(self) -> str | None:
        return self.timeline[-1]["event"] if self.timeline else None

    def status(self) -> dict:
        """JSON-friendly snapshot for ``GET /deploy`` and ``/healthz``."""
        with self.lock:
            candidate = self.candidate
            comparator = self.comparator
            breaker = self.candidate_breaker
            router = self.router
        return {
            "generation": self.generation,
            "incumbent": self.incumbent.summary(),
            "candidate": candidate.summary() if candidate is not None else None,
            "canary_pct": router.pct if router is not None else None,
            "shadow_sample_pct": self.shadow_pct if candidate is not None else None,
            "candidate_breaker": breaker.state if breaker is not None else None,
            "shadow": comparator.stats() if comparator is not None else None,
            "assignments": dict(self.assignments),
            "store": str(self.store.directory) if self.store is not None else None,
            "timeline": list(self.timeline),
        }
