"""Zero-downtime deployment: online training, hot-swap, canary, rollback.

This package closes the loop the offline pipeline leaves open — models
must keep learning *while serving* and every new generation must be able
to fail safely:

* :mod:`~repro.deploy.buffer` — the bounded event ring between ingest and
  training (backpressure by overwrite-oldest, drop accounting).
* :mod:`~repro.deploy.trainer` — :class:`OnlineTrainer`, mini-epoch
  incremental training over recent live sessions, snapshotting candidate
  artifacts through :mod:`repro.artifacts`.
* :mod:`~repro.deploy.lineage` — :class:`DeploymentStore`, the atomic
  on-disk version lineage crash recovery boots from.
* :mod:`~repro.deploy.canary` — :class:`CanaryRouter`, sticky hash-based
  assignment of sessions to incumbent vs. candidate.
* :mod:`~repro.deploy.comparator` — :class:`ShadowComparator`, the live
  sliding-window HR@k acceptance signal (prequential protocol).
* :mod:`~repro.deploy.manager` — :class:`DeploymentManager`, the atomic
  generation pointer: stage → warm → flip → observe → promote/rollback,
  failpoint-instrumented end to end.
"""

from .buffer import Event, EventRingBuffer
from .canary import CanaryRouter
from .comparator import ShadowComparator
from .lineage import DeploymentStore, param_hash
from .manager import DeployedModel, DeploymentConfig, DeploymentError, DeploymentManager
from .trainer import OnlineTrainer

__all__ = [
    "Event",
    "EventRingBuffer",
    "CanaryRouter",
    "ShadowComparator",
    "DeploymentStore",
    "param_hash",
    "DeployedModel",
    "DeploymentConfig",
    "DeploymentError",
    "DeploymentManager",
    "OnlineTrainer",
]
