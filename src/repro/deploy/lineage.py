"""Version lineage of deployed artifacts: the crash-recovery ground truth.

Every snapshot the online trainer emits, and every artifact staged through
the deployment manager, is recorded in a ``lineage.json`` next to the
artifact files — version number, parent version, parameter hash, and the
promote/rollback outcome. The file is written atomically
(:mod:`repro.reliability.atomic`), so a process killed at *any* point
mid-swap leaves a readable lineage from which
:meth:`~repro.deploy.DeploymentManager.recover` reconstructs the last
promoted generation bit-identically (the chaos suite asserts param-hash
equality after kills at every ``deploy.swap.*`` failpoint).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
import time

import numpy as np

from ..reliability import atomic_write

__all__ = ["param_hash", "DeploymentStore"]

_LINEAGE_FILE = "lineage.json"


def param_hash(weights: dict[str, np.ndarray]) -> str:
    """SHA-256 over every parameter array in name order.

    Dtype and shape are hashed along with the bytes, so two generations
    are equal under this hash iff their parameters are bit-identical.
    """
    digest = hashlib.sha256()
    for name in sorted(weights):
        array = np.ascontiguousarray(weights[name])
        digest.update(name.encode())
        digest.update(str(array.dtype).encode())
        digest.update(str(array.shape).encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


class DeploymentStore:
    """A deployment directory: versioned artifact files + atomic lineage.

    Layout::

        <directory>/
            v0001.npz     # artifact snapshots (atomic .npz bundles)
            v0002.npz
            lineage.json  # [{version, parent, path, param_hash, status, at}]

    Statuses: ``candidate`` (emitted, not yet decided), ``promoted``
    (serving generation), ``rolled_back`` (demoted by the comparator,
    breaker, or watchdog), ``superseded`` (was promoted, later replaced).
    """

    def __init__(self, directory: str | pathlib.Path, clock=time.time):
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._clock = clock

    @property
    def lineage_path(self) -> pathlib.Path:
        return self.directory / _LINEAGE_FILE

    def artifact_path(self, version: int) -> pathlib.Path:
        return self.directory / f"v{version:04d}.npz"

    # ------------------------------------------------------------------
    def lineage(self) -> list[dict]:
        """All recorded versions, oldest first (empty for a fresh store)."""
        if not self.lineage_path.exists():
            return []
        return json.loads(self.lineage_path.read_text())

    def _write(self, records: list[dict]) -> None:
        payload = json.dumps(records, indent=2).encode()
        atomic_write(self.lineage_path, lambda handle: handle.write(payload))

    def next_version(self) -> int:
        records = self.lineage()
        return (max(r["version"] for r in records) + 1) if records else 1

    def record(
        self,
        version: int,
        path: str | pathlib.Path,
        param_hash: str | None,
        parent: int | None = None,
        status: str = "candidate",
    ) -> dict:
        """Append (or replace) the lineage entry for ``version``."""
        entry = {
            "version": int(version),
            "parent": parent,
            "path": str(path),
            "param_hash": param_hash,
            "status": status,
            "at": self._clock(),
        }
        records = [r for r in self.lineage() if r["version"] != version]
        records.append(entry)
        records.sort(key=lambda r: r["version"])
        self._write(records)
        return entry

    def set_status(self, version: int, status: str) -> None:
        """Transition one version's status; promotion supersedes the old one."""
        records = self.lineage()
        for record in records:
            if record["version"] == version:
                record["status"] = status
                record["at"] = self._clock()
            elif status == "promoted" and record["status"] == "promoted":
                record["status"] = "superseded"
        self._write(records)

    def latest_promoted(self) -> dict | None:
        """The serving generation on disk (what recovery should boot)."""
        promoted = [r for r in self.lineage() if r["status"] == "promoted"]
        return max(promoted, key=lambda r: r["version"]) if promoted else None
