"""Bounded ring buffer for the live micro-behavior event stream.

The gateway ingests events far faster than the online trainer can consume
them, and a trainer that falls behind must never make ingest block or the
process grow without bound. :class:`EventRingBuffer` is the backpressure
seam between the two: ``append`` is O(1) and lock-cheap, capacity is
fixed, and when the buffer is full the *oldest* unconsumed event is
overwritten (recency wins for drift adaptation) while ``dropped`` counts
what training never saw — exposed as a counter/gauge pair at ``/metrics``.

This module imports nothing from the rest of ``repro`` so the serving
layer can hold a buffer without creating an import cycle with
:mod:`repro.deploy`.
"""

from __future__ import annotations

import threading
from collections import deque, namedtuple

__all__ = ["Event", "EventRingBuffer"]

# One ingested micro-behavior: dense (vocabulary-encoded) item id, the
# operation id, and the service clock time it arrived.
Event = namedtuple("Event", ["session_id", "item", "operation", "at"])


class EventRingBuffer:
    """Fixed-capacity FIFO of :class:`Event` with overwrite-oldest semantics.

    Parameters
    ----------
    capacity:
        Maximum events held between drains. Appending to a full buffer
        evicts the oldest event and bumps :attr:`dropped`.
    """

    def __init__(self, capacity: int = 8192):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[Event] = deque()
        self._lock = threading.Lock()
        self.appended = 0  # total events ever offered
        self.dropped = 0   # events overwritten before any drain saw them

    def append(self, event: Event) -> bool:
        """Add one event; returns ``False`` when an old event was evicted."""
        with self._lock:
            self.appended += 1
            if len(self._events) >= self.capacity:
                self._events.popleft()
                self.dropped += 1
                self._events.append(event)
                return False
            self._events.append(event)
            return True

    def drain(self, limit: int | None = None) -> list[Event]:
        """Remove and return up to ``limit`` oldest events (all by default)."""
        with self._lock:
            if limit is None or limit >= len(self._events):
                out = list(self._events)
                self._events.clear()
            else:
                out = [self._events.popleft() for _ in range(limit)]
            return out

    @property
    def depth(self) -> int:
        """Events currently waiting to be drained."""
        return len(self._events)

    def __len__(self) -> int:
        return len(self._events)
