"""Online sliding-window HR@k comparison of candidate vs. incumbent.

This is the Ludewig–Jannach streaming-evaluation protocol run *live*
(PAPERS.md): every sampled ingested event is a prequential test case —
"given the session prefix the models saw *before* this event, did each
model's top-k contain the item the user actually went to next?" A bounded
sliding window of those paired hit/miss outcomes yields a live HR@k for
both arms over exactly the same traffic slice, so the delta is free of
cohort bias. The comparator is the acceptance signal of a deployment:
once enough observations accumulate it votes ``promote`` or ``rollback``.
"""

from __future__ import annotations

import threading
from collections import deque

__all__ = ["ShadowComparator"]


class ShadowComparator:
    """Paired sliding-window HR@k accumulator with a promote/rollback vote.

    Parameters
    ----------
    k:
        Cutoff of the online hit-rate proxy (HR@k).
    window:
        Observations retained; older ones slide out (drift-friendly).
    min_observations:
        No verdict before this many paired observations — a candidate must
        earn its promotion on real traffic.
    regression_threshold:
        Absolute HR@k regression (candidate minus incumbent, in [0, 1])
        beyond which the verdict is ``rollback``.
    """

    def __init__(
        self,
        k: int = 10,
        window: int = 200,
        min_observations: int = 50,
        regression_threshold: float = 0.10,
    ):
        if min_observations < 1:
            raise ValueError("min_observations must be >= 1")
        if window < min_observations:
            raise ValueError("window must be >= min_observations")
        if regression_threshold < 0:
            raise ValueError("regression_threshold must be >= 0")
        self.k = k
        self.window = window
        self.min_observations = min_observations
        self.regression_threshold = regression_threshold
        self._pairs: deque[tuple[bool, bool]] = deque(maxlen=window)
        self._lock = threading.Lock()
        self.observations = 0  # lifetime count, not bounded by the window

    def observe(self, incumbent_hit: bool, candidate_hit: bool) -> None:
        """Record one paired prequential outcome."""
        with self._lock:
            self._pairs.append((bool(incumbent_hit), bool(candidate_hit)))
            self.observations += 1

    # ------------------------------------------------------------------
    def _rates(self) -> tuple[int, float, float]:
        n = len(self._pairs)
        if n == 0:
            return 0, 0.0, 0.0
        inc = sum(1 for i, _ in self._pairs if i) / n
        cand = sum(1 for _, c in self._pairs if c) / n
        return n, inc, cand

    @property
    def incumbent_hr(self) -> float:
        with self._lock:
            return self._rates()[1]

    @property
    def candidate_hr(self) -> float:
        with self._lock:
            return self._rates()[2]

    @property
    def delta(self) -> float:
        """Candidate HR@k minus incumbent HR@k over the current window."""
        with self._lock:
            _, inc, cand = self._rates()
            return cand - inc

    def verdict(self) -> str | None:
        """``"promote"``, ``"rollback"``, or ``None`` while undecided.

        A regression past the threshold votes rollback as soon as the
        minimum sample is in; otherwise the candidate is promotable once
        the window has proven it no worse than the incumbent.
        """
        with self._lock:
            n, inc, cand = self._rates()
        if n < self.min_observations:
            return None
        if cand - inc < -self.regression_threshold:
            return "rollback"
        return "promote"

    def stats(self) -> dict:
        """JSON-friendly snapshot for ``/deploy`` and the timeline."""
        with self._lock:
            n, inc, cand = self._rates()
        return {
            "k": self.k,
            "window": self.window,
            "min_observations": self.min_observations,
            "regression_threshold": self.regression_threshold,
            "observations": self.observations,
            "window_filled": n,
            "incumbent_hr": round(inc, 4),
            "candidate_hr": round(cand, 4),
            "delta": round(cand - inc, 4),
        }
