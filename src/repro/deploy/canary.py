"""Sticky hash-based canary routing.

During a hot-swap, N% of *sessions* (not requests) route to the candidate
model. Stickiness matters: a session that flaps between models mid-stream
would see its ranking jump around and would poison the per-session score
cache. :class:`CanaryRouter` therefore derives the arm from a CRC32 of
``(seed, session_id)`` alone — deterministic across processes and
restarts, independent of request order, and uniform enough that arm
fractions converge to the configured split (tested in
``tests/deploy/test_canary.py``).
"""

from __future__ import annotations

import zlib

__all__ = ["CanaryRouter"]

# Assignment resolution: pct is honored to 1/100th of a percent.
_BUCKETS = 10_000


class CanaryRouter:
    """Deterministic sticky assignment of sessions to incumbent/candidate.

    Parameters
    ----------
    pct:
        Percentage of sessions (0..100) routed to the candidate.
    seed:
        Salts the hash so successive deployments sample *different* session
        populations — one unlucky cohort must not eat every canary.
    """

    def __init__(self, pct: float, seed: int = 0):
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"canary pct must be within [0, 100], got {pct}")
        self.pct = float(pct)
        self.seed = int(seed)
        self._threshold = int(round(self.pct / 100.0 * _BUCKETS))

    def bucket(self, session_id: str) -> int:
        """The session's stable bucket in ``[0, 10000)``."""
        key = f"{self.seed}:{session_id}".encode()
        return zlib.crc32(key) % _BUCKETS

    def is_candidate(self, session_id: str) -> bool:
        """Sticky arm decision: ``True`` routes this session to the candidate."""
        return self.bucket(session_id) < self._threshold
