"""Padded batch construction for micro-behavior sessions.

Conventions used everywhere downstream:

* item id 0 is padding; real items are ``1..num_items``;
* operation ids are shifted by +1 in batches so 0 can be padding there too;
* every model receives a :class:`SessionBatch` and returns logits over the
  ``num_items`` real items (class ``i`` scores item ``i+1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .schema import MacroSession

__all__ = ["SessionBatch", "collate", "padded_dims", "CollateBuffers", "DataLoader"]


@dataclass
class SessionBatch:
    """A batch of sessions padded to common macro/micro lengths.

    Attributes
    ----------
    items:
        [B, n] dense item ids of the macro sequence (0 = pad).
    item_mask:
        [B, n] float {0,1}; marks valid macro positions.
    ops:
        [B, n, k] operation ids per macro step, shifted by +1 (0 = pad).
    op_mask:
        [B, n, k] float validity mask for ``ops``.
    micro_items / micro_ops / micro_mask:
        [B, t] flattened micro-behavior view (item of each micro step,
        shifted op id, validity mask).
    last_op:
        [B] shifted op id of the final micro-behavior in each session.
    targets:
        [B] dense ground-truth item ids (1-based; subtract 1 for the class
        index over real items).
    """

    items: np.ndarray
    item_mask: np.ndarray
    ops: np.ndarray
    op_mask: np.ndarray
    micro_items: np.ndarray
    micro_ops: np.ndarray
    micro_mask: np.ndarray
    last_op: np.ndarray
    targets: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]

    @property
    def max_macro_len(self) -> int:
        return self.items.shape[1]

    @property
    def max_micro_len(self) -> int:
        return self.micro_items.shape[1]

    @property
    def target_classes(self) -> np.ndarray:
        """Zero-based class indices for the loss over real items."""
        return self.targets - 1

    def macro_lengths(self) -> np.ndarray:
        return self.item_mask.sum(axis=1).astype(np.int64)

    def micro_lengths(self) -> np.ndarray:
        return self.micro_mask.sum(axis=1).astype(np.int64)


class CollateBuffers:
    """Reusable padded-batch storage for :func:`collate`.

    Collation allocates nine arrays per batch; over a training run that is
    hundreds of thousands of short-lived allocations whose zero-fill cost
    scales with the padded size (``docs/performance.md``, "Allocation
    discipline"). A ``CollateBuffers`` instance keeps one grow-only array
    per batch field and hands out zeroed *views* trimmed to the current
    batch's dimensions, so steady-state collation allocates nothing.

    The returned batch ALIASES the pool: it is only valid until the next
    ``collate(..., buffers=...)`` call against the same pool. That is the
    training-loop access pattern (one live batch at a time); anything that
    retains batches — ``list(loader)``, score caches — must keep the
    default copying behavior.
    """

    _SPECS = (
        ("items", 2, np.int64),
        ("item_mask", 2, np.float64),
        ("ops", 3, np.int64),
        ("op_mask", 3, np.float64),
        ("micro_items", 2, np.int64),
        ("micro_ops", 2, np.int64),
        ("micro_mask", 2, np.float64),
        ("last_op", 1, np.int64),
        ("targets", 1, np.int64),
    )

    def __init__(self) -> None:
        self._arrays: dict[str, np.ndarray] = {}

    def _view(self, name: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        buffer = self._arrays.get(name)
        if buffer is None or any(b < s for b, s in zip(buffer.shape, shape)):
            grown = shape if buffer is None else tuple(
                max(b, s) for b, s in zip(buffer.shape, shape)
            )
            buffer = np.zeros(grown, dtype=dtype)
            self._arrays[name] = buffer
        view = buffer[tuple(slice(0, s) for s in shape)]
        view.fill(0)
        return view

    def views(self, batch: int, n_max: int, k_max: int, t_max: int) -> dict[str, np.ndarray]:
        """Zeroed views for one batch of the given padded dimensions."""
        dims = {1: (batch,), 2: (batch, n_max), 3: (batch, n_max, k_max)}
        out = {}
        for name, ndim, dtype in self._SPECS:
            shape = dims[ndim]
            if name.startswith("micro"):
                shape = (batch, t_max)
            out[name] = self._view(name, shape, dtype)
        return out


def padded_dims(
    examples: Sequence[MacroSession], max_ops_per_item: int | None = None
) -> tuple[int, int, int]:
    """The ``(n_max, k_max, t_max)`` padding a :func:`collate` call would use.

    Exposed so a data-parallel worker can compute the *batch-global*
    padding from every example, then collate only its own shard rows with
    ``pad_to`` — producing arrays bit-identical to slicing the full
    collated batch.
    """
    if not examples:
        raise ValueError("cannot collate an empty list of examples")
    # Single pass over every op sequence. ``t`` can clamp against the raw
    # cap instead of the final k_max because every length is <= the global
    # natural k, so min(len, min(k_nat, cap)) == min(len, cap).
    cap = max_ops_per_item
    n_max = k_nat = t_max = 0
    for ex in examples:
        if len(ex) > n_max:
            n_max = len(ex)
        t = 0
        for ops in ex.op_sequences:
            k = len(ops)
            if k > k_nat:
                k_nat = k
            t += k if cap is None else min(k, cap)
        if t > t_max:
            t_max = t
    k_max = k_nat if cap is None else min(k_nat, cap)
    return n_max, k_max, t_max


# Rungs for padded-length bucketing: a dimension is rounded up to the next
# rung (then to the next multiple of the last rung beyond it). Few rungs =
# few distinct padded shapes = few compiled tapes (repro.compile) while
# wasting little padding on short sessions.
_BUCKET_LADDER = (1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64)


def quantize_length(value: int, ladder: Sequence[int] = _BUCKET_LADDER) -> int:
    """Round ``value`` up to the bucketing ladder (deterministic, monotone)."""
    if value <= 0:
        return value
    for rung in ladder:
        if value <= rung:
            return rung
    top = ladder[-1]
    return ((value + top - 1) // top) * top


def bucketed_dims(dims: tuple[int, int, int]) -> tuple[int, int, int]:
    """Quantize each padded dimension of ``padded_dims`` to the ladder."""
    return tuple(quantize_length(d) for d in dims)


def collate(
    examples: Sequence[MacroSession],
    max_ops_per_item: int | None = None,
    buffers: CollateBuffers | None = None,
    pad_to: tuple[int, int, int] | None = None,
) -> SessionBatch:
    """Pad a list of examples into one :class:`SessionBatch`.

    With ``buffers`` the batch arrays are zeroed views into the pool's
    grow-only storage instead of fresh allocations — see
    :class:`CollateBuffers` for the aliasing contract. ``pad_to`` forces
    the ``(n_max, k_max, t_max)`` padding (must cover the examples); shard
    workers use it to pad their rows to the full batch's dimensions.
    """
    if not examples:
        raise ValueError("cannot collate an empty list of examples")
    batch = len(examples)
    n_max, k_max, t_max = padded_dims(examples, max_ops_per_item)
    if pad_to is not None:
        if pad_to[0] < n_max or pad_to[1] < k_max or pad_to[2] < t_max:
            raise ValueError(f"pad_to {pad_to} smaller than required {(n_max, k_max, t_max)}")
        n_max, k_max, t_max = pad_to

    if buffers is not None:
        views = buffers.views(batch, n_max, k_max, t_max)
        items = views["items"]
        item_mask = views["item_mask"]
        ops = views["ops"]
        op_mask = views["op_mask"]
        micro_items = views["micro_items"]
        micro_ops = views["micro_ops"]
        micro_mask = views["micro_mask"]
        last_op = views["last_op"]
        targets = views["targets"]
    else:
        items = np.zeros((batch, n_max), dtype=np.int64)
        item_mask = np.zeros((batch, n_max))
        ops = np.zeros((batch, n_max, k_max), dtype=np.int64)
        op_mask = np.zeros((batch, n_max, k_max))
        micro_items = np.zeros((batch, t_max), dtype=np.int64)
        micro_ops = np.zeros((batch, t_max), dtype=np.int64)
        micro_mask = np.zeros((batch, t_max))
        last_op = np.zeros(batch, dtype=np.int64)
        targets = np.zeros(batch, dtype=np.int64)

    for b, ex in enumerate(examples):
        if ex.target is None:
            raise ValueError(f"example {ex.session_id} has no target")
        targets[b] = ex.target
        t = 0
        for i, (item, op_seq) in enumerate(zip(ex.macro_items, ex.op_sequences)):
            truncated = op_seq[:k_max]
            items[b, i] = item
            item_mask[b, i] = 1.0
            for j, op in enumerate(truncated):
                ops[b, i, j] = op + 1
                op_mask[b, i, j] = 1.0
                micro_items[b, t] = item
                micro_ops[b, t] = op + 1
                micro_mask[b, t] = 1.0
                t += 1
        last_op[b] = micro_ops[b, t - 1]

    return SessionBatch(
        items=items,
        item_mask=item_mask,
        ops=ops,
        op_mask=op_mask,
        micro_items=micro_items,
        micro_ops=micro_ops,
        micro_mask=micro_mask,
        last_op=last_op,
        targets=targets,
    )


class DataLoader:
    """Iterates over examples in (optionally shuffled) padded batches.

    The shuffle order is a pure function of ``(seed, epoch)``: each pass
    reseeds a generator with ``seed`` and fast-forwards it by ``epoch``
    shuffles before permuting, which reproduces exactly the orders the old
    single-mutating-stream loader emitted (epoch 0 included) while letting
    a resumed run replay any epoch's order via :meth:`set_epoch`.

    ``examples`` may be a plain ``Sequence[MacroSession]`` or a
    ``repro.data.packed.PackedSplit`` (detected by duck typing); with a
    packed split every batch is built by the zero-loop vectorized collate
    over CSR arrays, bit-identical to the object path.
    """

    def __init__(
        self,
        examples,
        batch_size: int = 64,
        shuffle: bool = False,
        seed: int = 0,
        max_ops_per_item: int | None = 6,
        reuse_buffers: bool = False,
        bucket_lengths: bool = False,
        prefetch: bool = False,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self._packed = bool(getattr(examples, "__packed_split__", False))
        self.examples = examples if self._packed else list(examples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0  # epoch of the *next* pass; auto-advances per __iter__
        self.max_ops_per_item = max_ops_per_item
        # Quantize padded dims to _BUCKET_LADDER rungs. Padding is math-
        # bearing (masked ops still run, dropout draws per padded element),
        # so this changes the numeric trajectory and is resume-critical —
        # but the (seed, epoch) permutation is untouched either way.
        self.bucket_lengths = bucket_lengths
        # Opt-in: each yielded batch aliases a shared buffer pool and is
        # only valid until the next one (safe for consume-as-you-go loops
        # like Trainer.fit; NOT for `list(loader)`). See CollateBuffers.
        self._buffers = CollateBuffers() if reuse_buffers else None
        # Opt-in: collate batch b+1 on a background thread while the
        # training step runs on batch b. Uses two ping-ponged buffer pools,
        # so prefetch implies the CollateBuffers aliasing contract whether
        # or not reuse_buffers is set: a yielded batch is valid only until
        # the next one is requested. Batch contents and order are
        # bit-identical to the synchronous path.
        self.prefetch = prefetch

    def __len__(self) -> int:
        return (len(self.examples) + self.batch_size - 1) // self.batch_size

    def set_epoch(self, epoch: int) -> None:
        """Position the loader so the next pass replays ``epoch``'s order."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.epoch = epoch

    def state_dict(self) -> dict:
        """The two integers that fully determine every future batch order."""
        return {"seed": self.seed, "epoch": self.epoch}

    def load_state_dict(self, state: dict) -> None:
        self.seed = int(state["seed"])
        self.set_epoch(int(state["epoch"]))

    def permutation(self, epoch: int) -> np.ndarray:
        """The example order of ``epoch``, derived from ``(seed, epoch)``.

        ``Generator.shuffle`` consumes randomness as a function of array
        length only, so ``epoch`` scratch shuffles advance the stream to
        exactly where the old persistent generator stood at that epoch.
        """
        order = np.arange(len(self.examples))
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            # Fast-forward: each past epoch consumed one length-n shuffle's
            # worth of the stream. Replay them on the same array, restore
            # the identity in place (sorting a permutation of 0..n-1), then
            # draw this epoch's shuffle — one allocation total.
            for _ in range(epoch):
                rng.shuffle(order)
            if epoch:
                order.sort()
            rng.shuffle(order)
        return order

    def padded_dims_for(self, examples: Sequence[MacroSession]) -> tuple[int, int, int]:
        """The ``(n, k, t)`` padding this loader gives ``examples``.

        Shard workers call this instead of raw :func:`padded_dims` so their
        per-shard ``pad_to`` agrees with the parent loader's bucketing.
        """
        dims = padded_dims(examples, self.max_ops_per_item)
        if self.bucket_lengths:
            dims = bucketed_dims(dims)
        return dims

    def subset_dims(self, indices: Sequence[int]) -> tuple[int, int, int]:
        """The ``(n, k, t)`` padding for the examples at ``indices``.

        Index-based counterpart of :meth:`padded_dims_for`: works for both
        object and packed storage, so shard workers never have to
        materialize examples just to measure them.
        """
        if self._packed:
            dims = self.examples.padded_dims(indices, self.max_ops_per_item)
        else:
            dims = padded_dims(
                [self.examples[i] for i in indices], self.max_ops_per_item
            )
        if self.bucket_lengths:
            dims = bucketed_dims(dims)
        return dims

    def collate_indices(
        self,
        indices: Sequence[int],
        pad_to: tuple[int, int, int] | None = None,
        buffers: CollateBuffers | None = None,
    ) -> SessionBatch:
        """Collate the examples at ``indices`` (honoring buffer reuse).

        Random-access counterpart of iteration: together with
        :meth:`permutation` it lets any process materialize batch ``b`` of
        epoch ``e`` directly — the data-parallel workers build their
        batches this way without ever streaming through earlier ones.
        ``pad_to``/``buffers`` override the loader's own padding and pool
        (shard workers pad their rows to the full batch's dimensions into
        a private pool).
        """
        if buffers is None:
            buffers = self._buffers
        if pad_to is None and self.bucket_lengths:
            pad_to = self.subset_dims(indices)
        if self._packed:
            return self.examples.collate(
                indices,
                max_ops_per_item=self.max_ops_per_item,
                buffers=buffers,
                pad_to=pad_to,
            )
        chunk = [self.examples[i] for i in indices]
        return collate(
            chunk,
            max_ops_per_item=self.max_ops_per_item,
            buffers=buffers,
            pad_to=pad_to,
        )

    def __iter__(self) -> Iterator[SessionBatch]:
        order = self.permutation(self.epoch)
        self.epoch += 1
        if self.prefetch:
            yield from self._iter_prefetch(order)
        else:
            yield from self._iter_sync(order)

    def _iter_sync(self, order: np.ndarray) -> Iterator[SessionBatch]:
        for start in range(0, len(order), self.batch_size):
            yield self.collate_indices(order[start : start + self.batch_size])

    def _iter_prefetch(self, order: np.ndarray) -> Iterator[SessionBatch]:
        """Double-buffered iteration: one producer thread, two buffer pools.

        The producer collates batch ``b+1`` into a free pool while the
        consumer's step runs on batch ``b``. A pool is recycled only when
        the consumer asks for the *next* batch, so each yielded batch stays
        valid exactly as long as the CollateBuffers contract promises.
        """
        import queue
        import threading

        pools = (CollateBuffers(), CollateBuffers())
        free: queue.Queue = queue.Queue()
        ready: queue.Queue = queue.Queue()
        for pool in pools:
            free.put(pool)
        stop = threading.Event()

        def produce() -> None:
            try:
                for start in range(0, len(order), self.batch_size):
                    pool = free.get()
                    if stop.is_set():
                        return
                    batch = self.collate_indices(
                        order[start : start + self.batch_size], buffers=pool
                    )
                    ready.put((batch, pool))
                ready.put(None)
            except BaseException as exc:  # surfaced on the consumer side
                ready.put(exc)

        thread = threading.Thread(
            target=produce, name="dataloader-prefetch", daemon=True
        )
        thread.start()
        held = None
        try:
            while True:
                item = ready.get()
                if item is None:
                    return
                if isinstance(item, BaseException):
                    raise item
                batch, pool = item
                if held is not None:
                    free.put(held)  # consumer moved on; recycle its pool
                held = pool
                yield batch
        finally:
            stop.set()
            free.put(pools[0])  # unblock a producer parked on free.get()
            thread.join(timeout=5.0)
