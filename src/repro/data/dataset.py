"""Padded batch construction for micro-behavior sessions.

Conventions used everywhere downstream:

* item id 0 is padding; real items are ``1..num_items``;
* operation ids are shifted by +1 in batches so 0 can be padding there too;
* every model receives a :class:`SessionBatch` and returns logits over the
  ``num_items`` real items (class ``i`` scores item ``i+1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .schema import MacroSession

__all__ = ["SessionBatch", "collate", "DataLoader"]


@dataclass
class SessionBatch:
    """A batch of sessions padded to common macro/micro lengths.

    Attributes
    ----------
    items:
        [B, n] dense item ids of the macro sequence (0 = pad).
    item_mask:
        [B, n] float {0,1}; marks valid macro positions.
    ops:
        [B, n, k] operation ids per macro step, shifted by +1 (0 = pad).
    op_mask:
        [B, n, k] float validity mask for ``ops``.
    micro_items / micro_ops / micro_mask:
        [B, t] flattened micro-behavior view (item of each micro step,
        shifted op id, validity mask).
    last_op:
        [B] shifted op id of the final micro-behavior in each session.
    targets:
        [B] dense ground-truth item ids (1-based; subtract 1 for the class
        index over real items).
    """

    items: np.ndarray
    item_mask: np.ndarray
    ops: np.ndarray
    op_mask: np.ndarray
    micro_items: np.ndarray
    micro_ops: np.ndarray
    micro_mask: np.ndarray
    last_op: np.ndarray
    targets: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.items.shape[0]

    @property
    def max_macro_len(self) -> int:
        return self.items.shape[1]

    @property
    def max_micro_len(self) -> int:
        return self.micro_items.shape[1]

    @property
    def target_classes(self) -> np.ndarray:
        """Zero-based class indices for the loss over real items."""
        return self.targets - 1

    def macro_lengths(self) -> np.ndarray:
        return self.item_mask.sum(axis=1).astype(np.int64)

    def micro_lengths(self) -> np.ndarray:
        return self.micro_mask.sum(axis=1).astype(np.int64)


def collate(examples: Sequence[MacroSession], max_ops_per_item: int | None = None) -> SessionBatch:
    """Pad a list of examples into one :class:`SessionBatch`."""
    if not examples:
        raise ValueError("cannot collate an empty list of examples")
    batch = len(examples)
    n_max = max(len(ex) for ex in examples)
    k_max = max(len(ops) for ex in examples for ops in ex.op_sequences)
    if max_ops_per_item is not None:
        k_max = min(k_max, max_ops_per_item)
    t_max = max(
        sum(min(len(ops), k_max) for ops in ex.op_sequences) for ex in examples
    )

    items = np.zeros((batch, n_max), dtype=np.int64)
    item_mask = np.zeros((batch, n_max))
    ops = np.zeros((batch, n_max, k_max), dtype=np.int64)
    op_mask = np.zeros((batch, n_max, k_max))
    micro_items = np.zeros((batch, t_max), dtype=np.int64)
    micro_ops = np.zeros((batch, t_max), dtype=np.int64)
    micro_mask = np.zeros((batch, t_max))
    last_op = np.zeros(batch, dtype=np.int64)
    targets = np.zeros(batch, dtype=np.int64)

    for b, ex in enumerate(examples):
        if ex.target is None:
            raise ValueError(f"example {ex.session_id} has no target")
        targets[b] = ex.target
        t = 0
        for i, (item, op_seq) in enumerate(zip(ex.macro_items, ex.op_sequences)):
            truncated = op_seq[:k_max]
            items[b, i] = item
            item_mask[b, i] = 1.0
            for j, op in enumerate(truncated):
                ops[b, i, j] = op + 1
                op_mask[b, i, j] = 1.0
                micro_items[b, t] = item
                micro_ops[b, t] = op + 1
                micro_mask[b, t] = 1.0
                t += 1
        last_op[b] = micro_ops[b, t - 1]

    return SessionBatch(
        items=items,
        item_mask=item_mask,
        ops=ops,
        op_mask=op_mask,
        micro_items=micro_items,
        micro_ops=micro_ops,
        micro_mask=micro_mask,
        last_op=last_op,
        targets=targets,
    )


class DataLoader:
    """Iterates over examples in (optionally shuffled) padded batches.

    The shuffle order is a pure function of ``(seed, epoch)``: each pass
    reseeds a generator with ``seed`` and fast-forwards it by ``epoch``
    shuffles before permuting, which reproduces exactly the orders the old
    single-mutating-stream loader emitted (epoch 0 included) while letting
    a resumed run replay any epoch's order via :meth:`set_epoch`.
    """

    def __init__(
        self,
        examples: Sequence[MacroSession],
        batch_size: int = 64,
        shuffle: bool = False,
        seed: int = 0,
        max_ops_per_item: int | None = 6,
    ):
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.examples = list(examples)
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0  # epoch of the *next* pass; auto-advances per __iter__
        self.max_ops_per_item = max_ops_per_item

    def __len__(self) -> int:
        return (len(self.examples) + self.batch_size - 1) // self.batch_size

    def set_epoch(self, epoch: int) -> None:
        """Position the loader so the next pass replays ``epoch``'s order."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        self.epoch = epoch

    def state_dict(self) -> dict:
        """The two integers that fully determine every future batch order."""
        return {"seed": self.seed, "epoch": self.epoch}

    def load_state_dict(self, state: dict) -> None:
        self.seed = int(state["seed"])
        self.set_epoch(int(state["epoch"]))

    def permutation(self, epoch: int) -> np.ndarray:
        """The example order of ``epoch``, derived from ``(seed, epoch)``.

        ``Generator.shuffle`` consumes randomness as a function of array
        length only, so ``epoch`` scratch shuffles advance the stream to
        exactly where the old persistent generator stood at that epoch.
        """
        order = np.arange(len(self.examples))
        if self.shuffle:
            rng = np.random.default_rng(self.seed)
            for _ in range(epoch):
                rng.shuffle(order)
            order = np.arange(len(self.examples))
            rng.shuffle(order)
        return order

    def __iter__(self) -> Iterator[SessionBatch]:
        order = self.permutation(self.epoch)
        self.epoch += 1
        for start in range(0, len(order), self.batch_size):
            chunk = [self.examples[i] for i in order[start : start + self.batch_size]]
            yield collate(chunk, max_ops_per_item=self.max_ops_per_item)
