"""Micro-behavior data substrate: schema, generators, preprocessing, batching."""

from .augment import AugmentConfig, augment_batch, augment_views, view_generator
from .dataset import DataLoader, SessionBatch, collate
from .io import (
    EventLogFormat,
    load_event_log,
    load_prepared_dataset,
    load_sessions_jsonl,
    load_trivago_log,
    save_prepared_dataset,
    save_sessions_jsonl,
)
from .preprocess import (
    ItemVocab,
    PreparedDataset,
    augment_prefixes,
    prepare_dataset,
    single_operation_view,
)
from .schema import (
    JD_OPERATIONS,
    TRIVAGO_OPERATIONS,
    Interaction,
    MacroSession,
    OperationVocab,
    Session,
    merge_successive,
)
from .stats import DatasetStats, compute_stats
from .validation import ValidationIssue, ValidationReport, validate_dataset
from .synthetic import (
    GeneratorConfig,
    Persona,
    SyntheticSessionGenerator,
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    trivago_config,
)

__all__ = [
    "Interaction",
    "Session",
    "MacroSession",
    "OperationVocab",
    "JD_OPERATIONS",
    "TRIVAGO_OPERATIONS",
    "merge_successive",
    "Persona",
    "GeneratorConfig",
    "SyntheticSessionGenerator",
    "generate_dataset",
    "jd_appliances_config",
    "jd_computers_config",
    "trivago_config",
    "ItemVocab",
    "PreparedDataset",
    "prepare_dataset",
    "augment_prefixes",
    "single_operation_view",
    "SessionBatch",
    "collate",
    "DataLoader",
    "AugmentConfig",
    "augment_batch",
    "augment_views",
    "view_generator",
    "DatasetStats",
    "EventLogFormat",
    "load_event_log",
    "load_trivago_log",
    "save_sessions_jsonl",
    "load_sessions_jsonl",
    "save_prepared_dataset",
    "load_prepared_dataset",
    "compute_stats",
    "ValidationIssue",
    "ValidationReport",
    "validate_dataset",
]
