"""Deterministic session-view augmentation for contrastive objectives.

EMBSR-SSL (docs/objectives.md) trains an InfoNCE term over two *augmented
views* of every session batch. The three augmentations operate on the
micro-behavior structure the paper models:

* **span reorder** — permute one short contiguous span of macro steps
  (items travel with their operation chains), perturbing sequential order
  while preserving the session's item multiset;
* **operation dropout** — drop non-entry micro-operations with a fixed
  probability, always keeping at least the entry operation per item;
* **operation substitution** — replace a surviving operation id with a
  uniformly drawn one, perturbing the micro signal without changing which
  items were touched.

Determinism follows the stateless-stream idiom of
:mod:`repro.parallel.sharding`: every view draws from a fresh
``np.random.default_rng`` seeded by a domain tag plus
``(seed, epoch, batch, shard, retry, view)``, so eager, compiled-replay,
serial-shard, and forked-worker executions of the same step all build the
exact same views without sharing any mutable stream.

Shape discipline: an augmented view keeps the *exact* padded dimensions of
its source batch (dropout only shortens micro rows; reorder and
substitution are length-preserving), and each row's item multiset is
unchanged — so session-graph node counts, and therefore every compiled
tape shape key, are invariant under augmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dataset import SessionBatch

__all__ = ["AugmentConfig", "view_generator", "augment_batch", "augment_views"]

# Domain separator for the augmentation streams; keeps them disjoint from
# the shard dropout streams (0x5AD5) under identical (seed, epoch, ...).
_AUG_STREAM_TAG = 0xA716


@dataclass(frozen=True)
class AugmentConfig:
    """Knobs of the three session-view augmentations."""

    op_dropout: float = 0.2       # P(drop each non-entry micro-operation)
    op_substitution: float = 0.1  # P(replace a surviving operation id)
    span_reorder: float = 0.3     # P(permute one macro span per session)
    max_span: int = 3             # longest macro span a reorder may touch


def view_generator(
    seed: int, epoch: int, batch_index: int, shard: int = 0, retry: int = 0, view: int = 0
) -> np.random.Generator:
    """The stateless generator for one augmented view of one step.

    Pure in its arguments, like ``shard_generator``: any process can
    rebuild the exact view without coordinating stream state.
    """
    return np.random.default_rng(
        (
            _AUG_STREAM_TAG,
            int(seed) & 0xFFFFFFFF,
            int(epoch),
            int(batch_index),
            int(shard),
            int(retry),
            int(view),
        )
    )


def _decode_row(batch: SessionBatch, b: int) -> list[tuple[int, list[int]]]:
    """Row ``b`` as ``[(item, [op, ...]), ...]`` with unshifted op ids."""
    length = int(batch.item_mask[b].sum())
    pairs = []
    for i in range(length):
        k_valid = int(batch.op_mask[b, i].sum())
        pairs.append(
            (int(batch.items[b, i]), [int(batch.ops[b, i, j]) - 1 for j in range(k_valid)])
        )
    return pairs


def augment_batch(
    batch: SessionBatch,
    rng: np.random.Generator,
    num_ops: int,
    config: AugmentConfig | None = None,
) -> dict[str, np.ndarray]:
    """One augmented view of ``batch`` as fresh field arrays.

    Pure function of ``(batch content, rng state, config)``; the returned
    arrays share no memory with the input and keep its padded shapes and
    collate dtypes. ``targets`` pass through untouched — augmentation
    perturbs the *input* views only, never the supervision signal.
    """
    cfg = config or AugmentConfig()
    items = np.zeros_like(batch.items)
    item_mask = np.zeros_like(batch.item_mask)
    ops = np.zeros_like(batch.ops)
    op_mask = np.zeros_like(batch.op_mask)
    micro_items = np.zeros_like(batch.micro_items)
    micro_ops = np.zeros_like(batch.micro_ops)
    micro_mask = np.zeros_like(batch.micro_mask)
    last_op = np.zeros_like(batch.last_op)
    k_max = batch.ops.shape[2]

    for b in range(batch.batch_size):
        pairs = _decode_row(batch, b)
        length = len(pairs)

        # 1. Span reorder: permute one contiguous span of macro steps.
        if length >= 3 and rng.random() < cfg.span_reorder:
            start = int(rng.integers(0, length - 1))
            span = min(cfg.max_span, length - start)
            if span >= 2:
                perm = rng.permutation(span)
                pairs[start : start + span] = [pairs[start + p] for p in perm]

        # 2/3. Operation dropout + substitution, entry op always kept.
        t = 0
        for i, (item, op_list) in enumerate(pairs):
            kept = [op_list[0]] + [
                op for op in op_list[1:] if rng.random() >= cfg.op_dropout
            ]
            if num_ops > 1 and cfg.op_substitution > 0.0:
                kept = [
                    int(rng.integers(num_ops)) if rng.random() < cfg.op_substitution else op
                    for op in kept
                ]
            items[b, i] = item
            item_mask[b, i] = 1.0
            for j, op in enumerate(kept[:k_max]):
                ops[b, i, j] = op + 1
                op_mask[b, i, j] = 1.0
                micro_items[b, t] = item
                micro_ops[b, t] = op + 1
                micro_mask[b, t] = 1.0
                t += 1
        last_op[b] = micro_ops[b, t - 1]

    return {
        "items": items,
        "item_mask": item_mask,
        "ops": ops,
        "op_mask": op_mask,
        "micro_items": micro_items,
        "micro_ops": micro_ops,
        "micro_mask": micro_mask,
        "last_op": last_op,
        "targets": batch.targets.copy(),
    }


def augment_views(
    batch: SessionBatch,
    *,
    num_ops: int,
    seed: int,
    epoch: int,
    batch_index: int,
    shard: int = 0,
    retry: int = 0,
    n_views: int = 2,
    config: AugmentConfig | None = None,
) -> list[SessionBatch]:
    """Convenience: the ``n_views`` augmented views of one training step."""
    return [
        SessionBatch(
            **augment_batch(
                batch,
                view_generator(seed, epoch, batch_index, shard, retry, view),
                num_ops,
                config,
            )
        )
        for view in range(n_views)
    ]
