"""Synthetic micro-behavior session generators.

The paper evaluates on two JD.com clickstream dumps and the RecSys Challenge
2019 (trivago) log, none of which can be downloaded in this offline
environment. These generators produce the closest synthetic equivalents; the
substitution is documented in DESIGN.md section 2.

The generative story plants exactly the structure the paper's experiments
measure:

* **Latent personas.** Each session is driven by a hidden (category,
  persona) pair. The persona is observable *only* through the
  micro-operations (e.g. a "researcher" reads comments before carting, a
  "direct buyer" orders straight away — the paper's Fig. 1 example), and the
  next item depends on the persona. Macro-only models therefore face an
  identifiability gap that micro-behavior models can close; this is the
  effect Table III measures.
* **Strongest-signal repeats (JD-like only).** With probability
  ``repeat_prob`` the ground-truth next item is the session item that
  received the strongest operation (Order > Cart > comments > ...). This
  makes S-POP competitive on JD-like data, exactly as in Table III.
* **Exploration targets (trivago-like).** The ground truth is drawn from
  *unseen* items, which reproduces the paper's observation that S-POP scores
  zero on trivago and that H@K improvements there are larger than M@K ones.
* **Item-transition structure.** Macro items follow a within-category random
  walk with Zipf popularity and occasional revisits (revisits are what make
  the session graph a *multigraph* — Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import (
    JD_OPERATIONS,
    TRIVAGO_OPERATIONS,
    Interaction,
    OperationVocab,
    Session,
)

__all__ = [
    "Persona",
    "GeneratorConfig",
    "SyntheticSessionGenerator",
    "jd_appliances_config",
    "jd_computers_config",
    "trivago_config",
    "generate_dataset",
]


@dataclass
class Persona:
    """A latent user type, defined entirely in operation space.

    ``entry_probs`` chooses how the user locates an item (the first
    micro-operation of every macro step); ``transition`` is a Markov chain
    over operations for subsequent micro-operations on the same item;
    ``stop_prob`` ends the per-item operation chain.
    """

    name: str
    entry_probs: dict[int, float]
    transition: dict[int, dict[int, float]]
    stop_prob: float = 0.45
    max_ops_per_item: int = 4


@dataclass
class GeneratorConfig:
    """Knobs for :class:`SyntheticSessionGenerator`."""

    name: str
    operations: OperationVocab
    personas: list[Persona]
    num_items: int = 600
    num_categories: int = 12
    zipf_exponent: float = 1.2
    min_macro_len: int = 2
    max_macro_len: int = 10
    mean_macro_len: float = 4.5
    category_jump_prob: float = 0.12
    revisit_prob: float = 0.18
    repeat_prob: float = 0.45          # P(target is an already-seen item)
    noise_prob: float = 0.15           # P(target is popularity-random in category)
    targets_per_context: int = 4       # size of each (category, persona) target pool
    pool_zipf_exponent: float = 1.0    # concentration of target choice within a pool
    op_strength: dict[int, float] = field(default_factory=dict)
    # P(session is a low-signal "drifter"): short, one uninformative
    # micro-operation per item — the cold/sparse regime the EMBSR-SSL
    # ablation measures (benchmarks/bench_ssl_ablation.py). At the default
    # 0.0 the generator consumes exactly the same RNG draws as before the
    # knob existed, so existing datasets stay bit-identical.
    sparsity: float = 0.0

    @property
    def num_operations(self) -> int:
        return len(self.operations)


def _drifter_persona(personas: list[Persona]) -> Persona:
    """The low-signal persona sparse sessions fall back to.

    One uniformly-drawn entry operation per item and nothing else: the
    micro-operations carry no persona information, so models must lean on
    item-representation quality alone — the regime where the contrastive
    objective (docs/objectives.md) is expected to help.
    """
    entry_ops = sorted({op for p in personas for op in p.entry_probs})
    return Persona(
        name="drifter",
        entry_probs={op: 1.0 for op in entry_ops},
        transition={},
        stop_prob=1.0,
        max_ops_per_item=1,
    )


def _normalize(probs: dict[int, float]) -> tuple[np.ndarray, np.ndarray]:
    keys = np.array(sorted(probs))
    values = np.array([probs[k] for k in keys], dtype=float)
    return keys, values / values.sum()


class SyntheticSessionGenerator:
    """Draws micro-behavior sessions from the latent-persona process."""

    def __init__(self, config: GeneratorConfig, seed: int = 0):
        self.config = config
        self.rng = np.random.default_rng(seed)
        self._drifter = _drifter_persona(config.personas)  # consumes no RNG
        self._build_catalogue()
        self._build_target_pools()

    # ------------------------------------------------------------------
    def _build_catalogue(self) -> None:
        cfg = self.config
        items = np.arange(cfg.num_items)
        self.category_of = items % cfg.num_categories
        self.items_in_category = [
            items[self.category_of == c] for c in range(cfg.num_categories)
        ]
        # Zipf popularity within each category.
        self._category_pop = []
        for members in self.items_in_category:
            ranks = np.arange(1, len(members) + 1, dtype=float)
            weights = ranks ** (-cfg.zipf_exponent)
            self._category_pop.append(weights / weights.sum())

    def _build_target_pools(self) -> None:
        """Assign each (category, persona) a preferred pool of next items.

        Pools are *disjoint* across personas within a category: a model that
        cannot identify the persona (i.e. a macro-only model) must spread
        probability mass over every persona's pool, which is exactly the
        identifiability gap Table III measures.
        """
        cfg = self.config
        self.target_pool: dict[tuple[int, int], np.ndarray] = {}
        num_personas = len(cfg.personas)
        for c in range(cfg.num_categories):
            members = self.rng.permutation(self.items_in_category[c])
            pool_size = min(cfg.targets_per_context, len(members) // num_personas)
            pool_size = max(pool_size, 1)
            for p in range(num_personas):
                start = p * pool_size
                self.target_pool[(c, p)] = members[start : start + pool_size]
        ranks = np.arange(1, max(len(v) for v in self.target_pool.values()) + 1, dtype=float)
        self._pool_weights = ranks ** (-cfg.pool_zipf_exponent)

    def _sample_from_pool(self, pool: np.ndarray) -> int:
        """Zipf-weighted draw so pools are learnable from few sessions."""
        weights = self._pool_weights[: len(pool)]
        return int(self.rng.choice(pool, p=weights / weights.sum()))

    # ------------------------------------------------------------------
    def _sample_macro_length(self) -> int:
        cfg = self.config
        length = int(self.rng.geometric(1.0 / cfg.mean_macro_len))
        return int(np.clip(length, cfg.min_macro_len, cfg.max_macro_len))

    def _sample_item(self, category: int, exclude: int | None = None) -> int:
        members = self.items_in_category[category]
        probs = self._category_pop[category]
        item = int(self.rng.choice(members, p=probs))
        if exclude is not None and item == exclude and len(members) > 1:
            item = int(self.rng.choice(members, p=probs))
        return item

    def _sample_ops(self, persona: Persona) -> list[int]:
        keys, values = _normalize(persona.entry_probs)
        ops = [int(self.rng.choice(keys, p=values))]
        while len(ops) < persona.max_ops_per_item:
            if self.rng.random() < persona.stop_prob:
                break
            row = persona.transition.get(ops[-1])
            if not row:
                break
            keys, values = _normalize(row)
            ops.append(int(self.rng.choice(keys, p=values)))
        return ops

    def _strongest_item(self, items: list[int], op_lists: list[list[int]]) -> int:
        """The non-final item whose operation chain *ends* strongest.

        The signal is deliberately order-sensitive: an item whose chain ends
        at Cart/Order ("left in the cart") outranks one where the user
        carted and then kept browsing ("reconsidered") even though both
        chains contain a Cart — so recovering it requires encoding the
        *sequential pattern* of micro-operations (Eqs. 3-4), not just their
        multiset. Skipping the final item keeps the signal intact after the
        leakage-avoidance rule; ties resolve to the most recent qualifier.
        """
        strength = self.config.op_strength
        last = items[-1]
        best_item, best_score = None, -1.0
        for item, ops in zip(items, op_lists):
            if item == last:
                continue
            score = strength.get(ops[-1], 0.0)
            if score >= best_score:
                best_item, best_score = item, score
        return best_item if best_item is not None else last

    def _sample_target(
        self,
        category: int,
        persona_id: int,
        items: list[int],
        op_lists: list[list[int]],
    ) -> int:
        cfg = self.config
        roll = self.rng.random()
        if roll < cfg.noise_prob:
            return self._sample_item(category)
        if roll < cfg.noise_prob + cfg.repeat_prob:
            return self._strongest_item(items, op_lists)
        pool = self.target_pool[(category, persona_id)]
        if cfg.repeat_prob == 0.0:
            # Exploration regime: prefer unseen items (trivago-like).
            unseen = np.array([i for i in pool if i not in set(items)])
            if len(unseen):
                return self._sample_from_pool(unseen)
        return self._sample_from_pool(pool)

    # ------------------------------------------------------------------
    def generate_session(self, session_id: int = 0) -> Session:
        """Draw one full session; its last macro item is the ground truth."""
        cfg = self.config
        category = int(self.rng.integers(cfg.num_categories))
        persona_id = int(self.rng.integers(len(cfg.personas)))
        persona = cfg.personas[persona_id]
        # Short-circuit keeps the draw count unchanged at sparsity=0.0
        # (bit-identical datasets for every pre-existing config).
        drifter = cfg.sparsity > 0.0 and self.rng.random() < cfg.sparsity
        if drifter:
            persona = self._drifter

        macro_len = self._sample_macro_length()
        if drifter:
            # Cold sessions are short as well as micro-sparse.
            macro_len = min(macro_len, cfg.min_macro_len + 1)
        items: list[int] = []
        op_lists: list[list[int]] = []
        current_category = category
        for _ in range(macro_len):
            if items and self.rng.random() < cfg.revisit_prob:
                # Revisit an earlier (non-adjacent) item -> multigraph edges.
                candidates = [i for i in items if i != items[-1]]
                item = int(self.rng.choice(candidates)) if candidates else self._sample_item(current_category)
            else:
                if self.rng.random() < cfg.category_jump_prob:
                    current_category = (current_category + 1) % cfg.num_categories
                item = self._sample_item(
                    current_category, exclude=items[-1] if items else None
                )
            items.append(item)
            op_lists.append(self._sample_ops(persona))

        target = self._sample_target(category, persona_id, items, op_lists)
        if target == items[-1]:
            # Ground truth must differ from the final input item; otherwise
            # the example would leak (paper Sec. II-B).
            pool = self.target_pool[(category, persona_id)]
            alternatives = [i for i in pool if i != items[-1]]
            target = int(self.rng.choice(alternatives)) if alternatives else self._sample_item(category, exclude=items[-1])
        items.append(target)
        op_lists.append([self._sample_ops(persona)[0]])

        interactions = [
            Interaction(int(item), int(op))
            for item, ops in zip(items, op_lists)
            for op in ops
        ]
        return Session(interactions, session_id=session_id)

    def generate(self, num_sessions: int) -> list[Session]:
        return [self.generate_session(i) for i in range(num_sessions)]


# ----------------------------------------------------------------------
# Ready-made configurations mirroring the paper's three datasets.
# ----------------------------------------------------------------------
def _jd_personas() -> list[Persona]:
    """Three JD personas (the paper's Fig. 1 intuition, made generative).

    *researcher* and *skeptic* are built as an XOR in operation-pair space:
    both emit the same operations with the same per-position marginals
    (comments/spec as the second operation, cart/similar as the third), but
    the *pairing* differs — the researcher follows comments with Cart and
    spec-reading with more browsing, the skeptic the other way around. A
    model seeing only absolute operation embeddings plus positions cannot
    separate them from per-item chains; the dyadic relation ``(o_i, o_j)``
    separates them directly (Fig. 5's experiment). *direct-buyer* uses
    short cart/order chains. Cart/Order operations are sparse (roughly a
    third of macro items), so the strongest-signal repeat target is not
    recoverable from recency alone.
    """
    op = JD_OPERATIONS.id_of
    entries = {op("SearchList2Product"): 0.6, op("Home2Product"): 0.2, op("ShopList2Product"): 0.2}
    researcher = Persona(
        name="researcher",  # comments -> Cart, spec -> keep browsing
        entry_probs=entries,
        transition={
            op("SearchList2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("Home2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("ShopList2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("Detail_comments"): {op("Cart"): 0.9, op("Order"): 0.1},
            op("Detail_specification"): {op("Detail_similar"): 0.9, op("Order"): 0.1},
            op("Cart"): {op("Detail_similar"): 1.0},
            op("Detail_similar"): {op("Detail_similar"): 1.0},
        },
        stop_prob=0.30,
    )
    skeptic = Persona(
        name="skeptic",  # spec -> Cart, comments -> keep browsing (XOR of above)
        entry_probs=entries,
        transition={
            op("SearchList2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("Home2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("ShopList2Product"): {op("Detail_comments"): 0.5, op("Detail_specification"): 0.5},
            op("Detail_comments"): {op("Detail_similar"): 0.9, op("Order"): 0.1},
            op("Detail_specification"): {op("Cart"): 0.9, op("Order"): 0.1},
            op("Cart"): {op("Detail_similar"): 1.0},
            op("Detail_similar"): {op("Detail_similar"): 1.0},
        },
        stop_prob=0.30,
    )
    direct = Persona(
        name="direct-buyer",
        entry_probs={op("CartList2Product"): 0.4, op("SaleList2Product"): 0.4, op("SearchList2Product"): 0.2},
        transition={
            op("CartList2Product"): {op("Order"): 0.45, op("Detail_similar"): 0.55},
            op("SaleList2Product"): {op("Cart"): 0.35, op("Detail_similar"): 0.65},
            op("SearchList2Product"): {op("Cart"): 0.35, op("Detail_similar"): 0.65},
            op("Cart"): {op("Order"): 0.5, op("Detail_similar"): 0.5},
            op("Detail_similar"): {op("Detail_similar"): 1.0},
        },
        stop_prob=0.55,
        max_ops_per_item=3,
    )
    return [researcher, skeptic, direct]


def _jd_op_strength() -> dict[int, float]:
    op = JD_OPERATIONS.id_of
    return {
        op("Order"): 5.0,
        op("Cart"): 4.0,
        op("Detail_comments"): 2.0,
        op("Detail_specification"): 1.5,
        op("Detail_similar"): 1.0,
        op("CartList2Product"): 0.5,
    }


def jd_appliances_config(sparsity: float = 0.0) -> GeneratorConfig:
    """JD-Appliances analogue: heavier repeat purchases, denser sessions."""
    return GeneratorConfig(
        sparsity=sparsity,
        name="jd-appliances",
        operations=JD_OPERATIONS,
        personas=_jd_personas(),
        num_items=600,
        num_categories=10,
        mean_macro_len=4.5,
        revisit_prob=0.20,
        repeat_prob=0.40,
        noise_prob=0.10,
        targets_per_context=10,
        pool_zipf_exponent=1.3,
        op_strength=_jd_op_strength(),
    )


def jd_computers_config(sparsity: float = 0.0) -> GeneratorConfig:
    """JD-Computers analogue: larger catalogue, harder prediction."""
    return GeneratorConfig(
        sparsity=sparsity,
        name="jd-computers",
        operations=JD_OPERATIONS,
        personas=_jd_personas(),
        num_items=800,
        num_categories=14,
        mean_macro_len=4.0,
        revisit_prob=0.16,
        repeat_prob=0.33,
        noise_prob=0.14,
        targets_per_context=10,
        pool_zipf_exponent=1.3,
        op_strength=_jd_op_strength(),
    )


def _trivago_personas() -> list[Persona]:
    op = TRIVAGO_OPERATIONS.id_of
    visual = Persona(
        name="picture-driven",
        entry_probs={op("interaction item image"): 0.6, op("search for item"): 0.4},
        transition={
            op("interaction item image"): {op("interaction item image"): 0.5, op("clickout item"): 0.5},
            op("search for item"): {op("interaction item image"): 0.8, op("interaction item info"): 0.2},
            op("interaction item info"): {op("interaction item image"): 1.0},
        },
        stop_prob=0.5,
        max_ops_per_item=3,
    )
    dealer = Persona(
        name="deal-seeker",
        entry_probs={op("interaction item deals"): 0.5, op("search for item"): 0.3, op("clickout item"): 0.2},
        transition={
            op("interaction item deals"): {op("clickout item"): 0.6, op("interaction item rating"): 0.4},
            op("search for item"): {op("interaction item deals"): 0.9, op("interaction item info"): 0.1},
            op("clickout item"): {op("interaction item deals"): 1.0},
            op("interaction item rating"): {op("clickout item"): 1.0},
        },
        stop_prob=0.5,
        max_ops_per_item=3,
    )
    reader = Persona(
        name="info-reader",
        entry_probs={op("interaction item info"): 0.5, op("interaction item rating"): 0.3, op("search for item"): 0.2},
        transition={
            op("interaction item info"): {op("interaction item rating"): 0.6, op("clickout item"): 0.4},
            op("interaction item rating"): {op("interaction item info"): 0.4, op("clickout item"): 0.6},
            op("search for item"): {op("interaction item info"): 1.0},
        },
        stop_prob=0.5,
        max_ops_per_item=3,
    )
    return [visual, dealer, reader]


def trivago_config(sparsity: float = 0.0) -> GeneratorConfig:
    """Trivago analogue: exploration-only targets (S-POP scores zero)."""
    op = TRIVAGO_OPERATIONS.id_of
    return GeneratorConfig(
        sparsity=sparsity,
        name="trivago",
        operations=TRIVAGO_OPERATIONS,
        personas=_trivago_personas(),
        num_items=900,
        num_categories=15,
        mean_macro_len=3.5,
        max_macro_len=8,
        revisit_prob=0.10,
        repeat_prob=0.0,
        noise_prob=0.15,
        targets_per_context=12,
        pool_zipf_exponent=1.2,
        op_strength={op("clickout item"): 3.0, op("interaction item deals"): 2.0},
    )


def generate_dataset(config: GeneratorConfig, num_sessions: int, seed: int = 0) -> list[Session]:
    """Convenience wrapper: build a generator and draw ``num_sessions``."""
    return SyntheticSessionGenerator(config, seed=seed).generate(num_sessions)
