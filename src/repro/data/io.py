"""Loading real micro-behavior logs from disk.

The paper's datasets are CSV-style event logs. These loaders accept the two
layouts used by the original sources so the library can run on the real
data when it is available:

* **JD-style** (HUP release): one row per micro-behavior with columns
  ``session_id, item_id, operation, timestamp`` (header optional,
  configurable column names/order).
* **Trivago-style** (RecSys Challenge 2019 ``train.csv``): columns include
  ``session_id, timestamp, action_type, reference``; only item-referencing
  action types are kept (Sec. V-A1), exactly like the paper.

Both loaders produce ``list[Session]`` that feeds straight into
:func:`repro.data.preprocess.prepare_dataset`, and both build / accept an
:class:`OperationVocab` so operation ids stay stable across splits.
"""

from __future__ import annotations

import csv
import json
import pathlib
from dataclasses import dataclass
from typing import Iterable, Sequence

from .preprocess import PreparedDataset
from .schema import Interaction, MacroSession, OperationVocab, Session

__all__ = [
    "EventLogFormat",
    "load_event_log",
    "iter_event_log",
    "load_trivago_log",
    "save_sessions_jsonl",
    "load_sessions_jsonl",
    "iter_sessions_jsonl",
    "save_prepared_dataset",
    "load_prepared_dataset",
]


@dataclass(frozen=True)
class EventLogFormat:
    """Column layout of a JD-style event log CSV."""

    session_column: str = "session_id"
    item_column: str = "item_id"
    operation_column: str = "operation"
    timestamp_column: str | None = "timestamp"
    delimiter: str = ","


def load_event_log(
    path: str | pathlib.Path,
    fmt: EventLogFormat | None = None,
    operations: OperationVocab | None = None,
) -> tuple[list[Session], OperationVocab]:
    """Load a JD-style micro-behavior CSV into sessions.

    Rows are grouped by session id; each group is sorted by timestamp when
    the format declares one (otherwise file order is kept). Unknown
    operation names extend the vocabulary unless one is supplied, in which
    case rows with unknown operations are dropped (consistent with the
    paper's "remove the operation whose reference is not the item" rule).
    """
    fmt = fmt or EventLogFormat()
    path = pathlib.Path(path)
    grouped: dict[str, list[tuple[float, int, str]]] = {}
    names: list[str] = list(operations.names) if operations is not None else []
    known = set(names)

    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=fmt.delimiter)
        for order, row in enumerate(reader):
            op_name = row[fmt.operation_column]
            if operations is None and op_name not in known:
                known.add(op_name)
                names.append(op_name)
            elif operations is not None and op_name not in known:
                continue
            ts = (
                float(row[fmt.timestamp_column])
                if fmt.timestamp_column and row.get(fmt.timestamp_column)
                else float(order)
            )
            grouped.setdefault(row[fmt.session_column], []).append(
                (ts, int(row[fmt.item_column]), op_name)
            )

    vocab = operations if operations is not None else OperationVocab(names)
    sessions = []
    for sid, (key, events) in enumerate(sorted(grouped.items())):
        events.sort(key=lambda e: e[0])
        interactions = [Interaction(item, vocab.id_of(op)) for _ts, item, op in events]
        sessions.append(Session(interactions, session_id=sid))
    return sessions, vocab


def iter_event_log(
    path: str | pathlib.Path,
    fmt: EventLogFormat | None = None,
    operations: OperationVocab | None = None,
) -> Iterable[Session]:
    """Stream a *session-contiguous* JD-style CSV one session at a time.

    Unlike :func:`load_event_log` this never materializes the whole log: it
    holds exactly one session's rows, so JSONL/CSV → packed ingest runs in
    bounded memory on corpora of any size. It requires (a) an explicit
    ``operations`` vocabulary (no global discovery pass) and (b) each
    session's rows to be contiguous in the file with timestamps already
    ordered — the layout ``save``-style exporters produce. Sessions are
    yielded in file order with a running ``session_id``.
    """
    if operations is None:
        raise ValueError("iter_event_log requires an explicit OperationVocab")
    fmt = fmt or EventLogFormat()
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=fmt.delimiter)
        sid = 0
        current_key: str | None = None
        events: list[Interaction] = []
        for row in reader:
            op_name = row[fmt.operation_column]
            if op_name not in operations:
                continue
            key = row[fmt.session_column]
            if current_key is not None and key != current_key:
                if events:
                    yield Session(events, session_id=sid)
                    sid += 1
                events = []
            current_key = key
            events.append(
                Interaction(int(row[fmt.item_column]), operations.id_of(op_name))
            )
        if events:
            yield Session(events, session_id=sid)


# Item-referencing action types kept from the trivago dump (Sec. V-A1).
TRIVAGO_ITEM_ACTIONS = (
    "clickout item",
    "interaction item image",
    "interaction item info",
    "interaction item deals",
    "interaction item rating",
    "search for item",
)


def load_trivago_log(
    path: str | pathlib.Path,
    operations: OperationVocab | None = None,
) -> tuple[list[Session], OperationVocab]:
    """Load a RecSys-2019 trivago ``train.csv`` into sessions.

    Keeps only the six item-referencing action types and drops rows whose
    ``reference`` is not an item id (filters, destination searches, ...) —
    the paper's preprocessing.
    """
    fmt = EventLogFormat(
        session_column="session_id",
        item_column="reference",
        operation_column="action_type",
        timestamp_column="timestamp",
    )
    path = pathlib.Path(path)
    vocab = operations or OperationVocab(list(TRIVAGO_ITEM_ACTIONS))
    grouped: dict[str, list[tuple[float, int, int]]] = {}
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle, delimiter=fmt.delimiter)
        for row in reader:
            action = row[fmt.operation_column]
            if action not in vocab:
                continue
            reference = row[fmt.item_column]
            if not reference.isdigit():
                continue  # non-item reference (e.g. a filter string)
            grouped.setdefault(row[fmt.session_column], []).append(
                (float(row[fmt.timestamp_column]), int(reference), vocab.id_of(action))
            )
    sessions = []
    for sid, (key, events) in enumerate(sorted(grouped.items())):
        events.sort(key=lambda e: e[0])
        sessions.append(
            Session([Interaction(item, op) for _ts, item, op in events], session_id=sid)
        )
    return sessions, vocab


# ----------------------------------------------------------------------
# JSONL persistence for generated / preprocessed data
# ----------------------------------------------------------------------
def save_sessions_jsonl(sessions: Iterable[Session], path: str | pathlib.Path) -> None:
    """Write sessions as one JSON object per line (portable, diff-able)."""
    path = pathlib.Path(path)
    with path.open("w") as handle:
        for session in sessions:
            handle.write(
                json.dumps(
                    {
                        "session_id": session.session_id,
                        "events": [[x.item, x.operation] for x in session.interactions],
                    }
                )
                + "\n"
            )


def iter_sessions_jsonl(path: str | pathlib.Path) -> Iterable[Session]:
    """Stream :func:`save_sessions_jsonl` output one session at a time.

    One JSON line is decoded per step, so downstream consumers (the packed
    ingest in particular) hold O(1) sessions no matter the file size.
    """
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            yield Session(
                [Interaction(item, op) for item, op in record["events"]],
                session_id=record["session_id"],
            )


def load_sessions_jsonl(path: str | pathlib.Path) -> list[Session]:
    """Inverse of :func:`save_sessions_jsonl` (eager; see
    :func:`iter_sessions_jsonl` for the streaming form)."""
    return list(iter_sessions_jsonl(path))


def _macro_to_dict(example: MacroSession) -> dict:
    return {
        "items": example.macro_items,
        "ops": example.op_sequences,
        "target": example.target,
        "session_id": example.session_id,
    }


def _macro_from_dict(record: dict) -> MacroSession:
    return MacroSession(
        record["items"],
        [list(o) for o in record["ops"]],
        target=record["target"],
        session_id=record["session_id"],
    )


def save_prepared_dataset(dataset: PreparedDataset, path: str | pathlib.Path) -> None:
    """Persist a fully preprocessed dataset (splits + vocab) as JSON."""
    payload = {
        "name": dataset.name,
        "operations": list(dataset.operations.names),
        "item_ids": [dataset.vocab.decode(i) for i in range(1, dataset.num_items + 1)],
        "splits": {
            split: [_macro_to_dict(ex) for ex in examples]
            for split, examples in dataset.splits().items()
        },
    }
    pathlib.Path(path).write_text(json.dumps(payload))


def load_prepared_dataset(path: str | pathlib.Path) -> PreparedDataset:
    """Inverse of :func:`save_prepared_dataset`."""
    from .preprocess import ItemVocab

    payload = json.loads(pathlib.Path(path).read_text())
    vocab = ItemVocab(payload["item_ids"])
    splits = {
        split: [_macro_from_dict(r) for r in records]
        for split, records in payload["splits"].items()
    }
    return PreparedDataset(
        name=payload["name"],
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
        vocab=vocab,
        operations=OperationVocab(payload["operations"]),
    )
