"""Dataset sanity validation.

When loading *real* event logs (``repro.data.io``), silent data problems —
targets leaking into inputs, out-of-range ids, empty operation chains —
surface as mysteriously great or terrible metrics. ``validate_dataset``
checks every invariant the models rely on and returns a structured report
instead of failing at some tensor shape three layers deep.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .preprocess import PreparedDataset
from .schema import MacroSession

__all__ = ["ValidationIssue", "ValidationReport", "validate_dataset"]


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    split: str
    session_id: int
    problem: str


@dataclass
class ValidationReport:
    """All issues found; empty means the dataset is sound."""

    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.issues

    def summary(self) -> str:
        if self.ok:
            return "dataset valid: no issues"
        lines = [f"{len(self.issues)} issue(s):"]
        for issue in self.issues[:20]:
            lines.append(f"  [{issue.split}] session {issue.session_id}: {issue.problem}")
        if len(self.issues) > 20:
            lines.append(f"  ... and {len(self.issues) - 20} more")
        return "\n".join(lines)

    def raise_if_invalid(self) -> None:
        if not self.ok:
            raise ValueError(self.summary())


def _check_example(
    example: MacroSession, split: str, num_items: int, num_ops: int
) -> list[ValidationIssue]:
    issues = []

    def bad(problem: str) -> None:
        issues.append(ValidationIssue(split, example.session_id, problem))

    if len(example) == 0:
        bad("empty input sequence")
        return issues
    if example.target is None:
        bad("missing target")
    elif not 1 <= example.target <= num_items:
        bad(f"target {example.target} outside 1..{num_items}")
    elif example.target == example.macro_items[-1]:
        bad("target equals last input item (information leakage, Sec. II-B)")
    for i, item in enumerate(example.macro_items):
        if not 1 <= item <= num_items:
            bad(f"item {item} at position {i} outside 1..{num_items}")
    for a, b in zip(example.macro_items, example.macro_items[1:]):
        if a == b:
            bad("successive duplicate macro items (merge_successive not applied)")
            break
    for i, ops in enumerate(example.op_sequences):
        if not ops:
            bad(f"empty operation chain at position {i}")
        for op in ops:
            if not 0 <= op < num_ops:
                bad(f"operation {op} at position {i} outside 0..{num_ops - 1}")
    return issues


def validate_dataset(dataset: PreparedDataset) -> ValidationReport:
    """Check every example in every split against the model contracts."""
    report = ValidationReport()
    for split, examples in dataset.splits().items():
        for example in examples:
            report.issues.extend(
                _check_example(example, split, dataset.num_items, dataset.num_operations)
            )
    return report
