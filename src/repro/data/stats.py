"""Dataset statistics — the Table II analogue.

The paper reports, per dataset: number of train / validation / test
sessions, number of items, and total micro-behavior count.
"""

from __future__ import annotations

from dataclasses import dataclass

from .preprocess import PreparedDataset

__all__ = ["DatasetStats", "compute_stats"]


@dataclass(frozen=True)
class DatasetStats:
    """Row of the Table II analogue for one dataset."""

    name: str
    num_train: int
    num_validation: int
    num_test: int
    num_items: int
    num_micro_behaviors: int
    num_operations: int
    avg_macro_len: float
    avg_ops_per_item: float

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "dataset": self.name,
            "# train": self.num_train,
            "# validation": self.num_validation,
            "# test": self.num_test,
            "# items": self.num_items,
            "# micro-behavior": self.num_micro_behaviors,
            "# operations": self.num_operations,
            "avg macro len": round(self.avg_macro_len, 2),
            "avg ops/item": round(self.avg_ops_per_item, 2),
        }


def compute_stats(dataset: PreparedDataset) -> DatasetStats:
    """Aggregate the Table II statistics over all three splits."""
    all_examples = dataset.train + dataset.validation + dataset.test
    micro = sum(ex.num_micro_behaviors for ex in all_examples)
    macro = sum(len(ex) for ex in all_examples)
    return DatasetStats(
        name=dataset.name,
        num_train=len(dataset.train),
        num_validation=len(dataset.validation),
        num_test=len(dataset.test),
        num_items=dataset.num_items,
        num_micro_behaviors=micro,
        num_operations=dataset.num_operations,
        avg_macro_len=macro / max(len(all_examples), 1),
        avg_ops_per_item=micro / max(macro, 1),
    )
