"""Dataset statistics — the Table II analogue, plus derived summaries.

The paper reports, per dataset: number of train / validation / test
sessions, number of items, and total micro-behavior count.
:func:`dataset_fingerprint` and :func:`popularity_ranking` are the two
summaries model artifacts embed so a checkpoint can name the data it was
trained on and serve a degraded popularity ranking with no dataset on disk.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass

from .preprocess import PreparedDataset

__all__ = ["DatasetStats", "compute_stats", "dataset_fingerprint", "popularity_ranking"]


@dataclass(frozen=True)
class DatasetStats:
    """Row of the Table II analogue for one dataset."""

    name: str
    num_train: int
    num_validation: int
    num_test: int
    num_items: int
    num_micro_behaviors: int
    num_operations: int
    avg_macro_len: float
    avg_ops_per_item: float

    def as_row(self) -> dict[str, float | int | str]:
        return {
            "dataset": self.name,
            "# train": self.num_train,
            "# validation": self.num_validation,
            "# test": self.num_test,
            "# items": self.num_items,
            "# micro-behavior": self.num_micro_behaviors,
            "# operations": self.num_operations,
            "avg macro len": round(self.avg_macro_len, 2),
            "avg ops/item": round(self.avg_ops_per_item, 2),
        }


def compute_stats(dataset: PreparedDataset) -> DatasetStats:
    """Aggregate the Table II statistics over all three splits."""
    all_examples = dataset.train + dataset.validation + dataset.test
    micro = sum(ex.num_micro_behaviors for ex in all_examples)
    macro = sum(len(ex) for ex in all_examples)
    return DatasetStats(
        name=dataset.name,
        num_train=len(dataset.train),
        num_validation=len(dataset.validation),
        num_test=len(dataset.test),
        num_items=dataset.num_items,
        num_micro_behaviors=micro,
        num_operations=dataset.num_operations,
        avg_macro_len=macro / max(len(all_examples), 1),
        avg_ops_per_item=micro / max(macro, 1),
    )


def dataset_fingerprint(dataset: PreparedDataset) -> str:
    """Stable short hash identifying a prepared dataset's contents.

    Covers the vocabulary (in dense order) and, per split, the example
    count plus a digest of every example's items/ops/target — enough that
    any re-preprocessing which would invalidate a trained checkpoint
    changes the fingerprint, while staying cheap for large corpora.
    """
    digest = hashlib.sha256()
    digest.update(dataset.name.encode())
    digest.update(json.dumps(dataset.vocab.ordered_raw_ids()).encode())
    digest.update(json.dumps(list(dataset.operations.names)).encode())
    for split_name, examples in sorted(dataset.splits().items()):
        digest.update(f"{split_name}:{len(examples)}".encode())
        for ex in examples:
            digest.update(
                json.dumps([ex.macro_items, ex.op_sequences, ex.target]).encode()
            )
    return digest.hexdigest()[:16]


def popularity_ranking(dataset: PreparedDataset, limit: int | None = None) -> list[int]:
    """Raw item ids of the train split, most popular first.

    The tally counts every macro step plus each session's target — the same
    weighting :class:`~repro.serving.PopularityFallback` has always used —
    so a ranking embedded in an artifact answers degraded requests exactly
    like one computed from the dataset.
    """
    tally: Counter[int] = Counter()
    for example in dataset.train:
        tally.update(example.macro_items)
        if example.target is not None:
            tally[example.target] += 1
    ranked = tally.most_common(limit)
    return [dataset.vocab.decode(dense) for dense, _count in ranked]
