"""Micro-behavior session schema (Sec. II-B of the paper).

A session is a chronological sequence of *micro-behaviors*
``s_i = (v_i, o_i)`` — an item plus the operation the user performed on it.
Merging successive micro-behaviors on the same item yields the *macro-item*
sequence ``S^v`` and, per macro item, its *micro-operation* sequence ``o^i``
(the paper's Fig. 3 example).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

__all__ = [
    "Interaction",
    "Session",
    "MacroSession",
    "OperationVocab",
    "JD_OPERATIONS",
    "TRIVAGO_OPERATIONS",
    "merge_successive",
]


@dataclass(frozen=True)
class Interaction:
    """One micro-behavior: the user performed ``operation`` on ``item``."""

    item: int
    operation: int


@dataclass
class Session:
    """A user session: an ordered list of micro-behaviors."""

    interactions: list[Interaction]
    session_id: int = 0

    def __len__(self) -> int:
        return len(self.interactions)

    @property
    def items(self) -> list[int]:
        return [x.item for x in self.interactions]

    @property
    def operations(self) -> list[int]:
        return [x.operation for x in self.interactions]

    def distinct_items(self) -> set[int]:
        return {x.item for x in self.interactions}


@dataclass
class MacroSession:
    """A session after merging successive same-item micro-behaviors.

    ``macro_items[i]`` is the i-th macro item ``v^i``; ``op_sequences[i]`` is
    its micro-operation sequence ``o^i = (o^i_1, ..., o^i_k)``.
    """

    macro_items: list[int]
    op_sequences: list[list[int]]
    target: int | None = None
    session_id: int = 0

    def __post_init__(self) -> None:
        if len(self.macro_items) != len(self.op_sequences):
            raise ValueError("macro_items and op_sequences must have equal length")

    def __len__(self) -> int:
        return len(self.macro_items)

    @property
    def num_micro_behaviors(self) -> int:
        return sum(len(ops) for ops in self.op_sequences)

    def flat_micro(self) -> list[Interaction]:
        """Expand back to the flat micro-behavior sequence."""
        return [
            Interaction(item, op)
            for item, ops in zip(self.macro_items, self.op_sequences)
            for op in ops
        ]


class OperationVocab:
    """Names for the operation set ``O`` (ids are 0-based and dense)."""

    def __init__(self, names: Sequence[str]):
        if len(set(names)) != len(names):
            raise ValueError("operation names must be unique")
        self.names = list(names)
        self._index = {name: i for i, name in enumerate(self.names)}

    def __len__(self) -> int:
        return len(self.names)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def id_of(self, name: str) -> int:
        return self._index[name]

    def name_of(self, op_id: int) -> str:
        return self.names[op_id]

    def __iter__(self):
        return iter(self.names)


# The 10 micro-operation types of the JD datasets (Sec. V-A1 names three of
# them explicitly; the rest follow the HUP paper's taxonomy of how a user
# locates an item and what they do on its detail page).
JD_OPERATIONS = OperationVocab(
    [
        "Home2Product",          # enter item from the home page
        "SearchList2Product",    # enter item from search results
        "ShopList2Product",      # enter item from a shop page
        "SaleList2Product",      # enter item from a promotion list
        "CartList2Product",      # revisit item from the cart list
        "Detail_specification",  # read the spec sheet
        "Detail_comments",       # read customer comments
        "Detail_similar",        # browse similar products
        "Cart",                  # add to cart
        "Order",                 # place order
    ]
)

# The 6 item-referencing action types kept from the trivago dump (Sec. V-A1).
TRIVAGO_OPERATIONS = OperationVocab(
    [
        "clickout item",
        "interaction item image",
        "interaction item info",
        "interaction item deals",
        "interaction item rating",
        "search for item",
    ]
)


def merge_successive(session: Session, session_id: int | None = None) -> MacroSession:
    """Merge successive micro-behaviors on the same item (paper Sec. II-B).

    ``[(v1,o1),(v2,o1),(v2,o2),(v3,o1)]`` becomes macro items
    ``[v1, v2, v3]`` with op sequences ``[[o1], [o1, o2], [o1]]``. A repeat of
    an item *after* visiting something else starts a new macro step (the
    multigraph in Fig. 3 depends on this).
    """
    macro_items: list[int] = []
    op_sequences: list[list[int]] = []
    for interaction in session.interactions:
        if macro_items and macro_items[-1] == interaction.item:
            op_sequences[-1].append(interaction.operation)
        else:
            macro_items.append(interaction.item)
            op_sequences.append([interaction.operation])
    return MacroSession(
        macro_items,
        op_sequences,
        session_id=session.session_id if session_id is None else session_id,
    )
