"""Columnar packed datasets: CSR ragged arrays, zero-loop collation, memmap.

``repro.data.dataset`` batches ``list[MacroSession]`` — per-example Python
objects walked by a nested Python loop in :func:`~repro.data.dataset.collate`.
That representation is flexible but it is both the RAM ceiling at
million-session scale (every session is dozens of heap objects) and, after
the fused kernels and the compiled tape, the dominant per-step cost for the
fast models: collation time is pure interpreter overhead.

This module stores a dataset **columnarly** instead, in CSR-style ragged
arrays:

``session_offsets``  [S+1]  span of each session inside ``macro_items``
``macro_items``      [M]    dense item id of every macro step
``op_offsets``       [M+1]  span of each macro step inside ``op_ids``
``op_ids``           [O]    raw (unshifted) operation id of every micro step
``targets``          [S]    dense ground-truth item id per session
``session_ids``      [S]    original session ids (round-trip fidelity)

On top of that layout:

* :func:`collate_packed` builds a :class:`~repro.data.dataset.SessionBatch`
  with fancy-index gathers/scatters and ``np.add.reduceat`` — **no Python
  loop over examples or ops** — and is bitwise-identical to the loop
  collate, including ``max_ops_per_item`` truncation, ``pad_to``, and
  :class:`~repro.data.dataset.CollateBuffers` reuse.
* :meth:`PackedDataset.save` writes one self-describing file (JSON header +
  64-byte-aligned raw arrays) atomically via
  :func:`repro.reliability.atomic.atomic_write`; :func:`load_packed` maps it
  back either in memory or **zero-copy via a read-only memmap**, so forked
  data-parallel workers share file-backed pages instead of each holding a
  copy of the Python object graph.
* :func:`pack_dataset` / :meth:`PackedDataset.to_prepared` convert to and
  from :class:`~repro.data.preprocess.PreparedDataset` losslessly.
* :func:`pack_sessions_stream` ingests raw sessions (e.g. a JSONL event
  log) in two streaming passes, holding only O(chunk) Python sessions at a
  time — the bounded-memory path for packing 10^6-session corpora.

See ``docs/data.md`` for the on-disk format and the CLI
(``repro data pack`` / ``repro data inspect``).
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from .dataset import CollateBuffers, SessionBatch
from .schema import MacroSession, OperationVocab, Session

__all__ = [
    "PackedSplit",
    "PackedDataset",
    "pack_dataset",
    "load_packed",
    "collate_packed",
    "packed_padded_dims",
    "packed_fingerprint",
    "pack_sessions_stream",
    "pack_sessions_jsonl",
]

MAGIC = b"RPACKED1"
FORMAT_VERSION = 1
_ALIGN = 64
_SPLIT_FIELDS = (
    "session_offsets",
    "macro_items",
    "op_offsets",
    "op_ids",
    "targets",
    "session_ids",
)
_SPLIT_NAMES = ("train", "validation", "test")


def _grouped_arange(starts: np.ndarray, counts: np.ndarray, total: int | None = None) -> np.ndarray:
    """``concatenate([arange(s, s + c) for s, c in zip(starts, counts)])``, loop-free.

    The workhorse of every CSR gather below: one ``arange`` over the output
    plus a per-group shift delivered by ``np.repeat``.
    """
    counts = np.asarray(counts, dtype=np.int64)
    starts = np.asarray(starts, dtype=np.int64)
    if total is None:
        total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    first = np.cumsum(counts) - counts  # first output slot of each group
    out = np.arange(total, dtype=np.int64)
    out += np.repeat(starts - first, counts)
    return out


class PackedSplit:
    """One split of a :class:`PackedDataset`: six flat int64 arrays.

    Behaves enough like a ``Sequence[MacroSession]`` (``len``, indexing,
    iteration — materializing examples on demand) that existing consumers
    keep working, while the batching path never touches Python objects.
    """

    __packed_split__ = True

    def __init__(
        self,
        session_offsets: np.ndarray,
        macro_items: np.ndarray,
        op_offsets: np.ndarray,
        op_ids: np.ndarray,
        targets: np.ndarray,
        session_ids: np.ndarray,
    ) -> None:
        self.session_offsets = np.asarray(session_offsets, dtype=np.int64)
        self.macro_items = np.asarray(macro_items, dtype=np.int64)
        self.op_offsets = np.asarray(op_offsets, dtype=np.int64)
        self.op_ids = np.asarray(op_ids, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.session_ids = np.asarray(session_ids, dtype=np.int64)
        if self.session_offsets.ndim != 1 or self.session_offsets.size == 0:
            raise ValueError("session_offsets must be a non-empty 1-D array")
        if len(self.targets) != len(self) or len(self.session_ids) != len(self):
            raise ValueError("targets/session_ids must have one entry per session")
        self._op_lengths: np.ndarray | None = None

    # -- sizes ----------------------------------------------------------
    def __len__(self) -> int:
        return int(self.session_offsets.shape[0] - 1)

    @property
    def num_macro_steps(self) -> int:
        return int(self.macro_items.shape[0])

    @property
    def num_micro_ops(self) -> int:
        return int(self.op_ids.shape[0])

    @property
    def op_lengths(self) -> np.ndarray:
        """Per-macro-step operation counts (derived once, then cached)."""
        if self._op_lengths is None:
            self._op_lengths = np.diff(self.op_offsets)
        return self._op_lengths

    def nbytes(self) -> int:
        return sum(int(getattr(self, f).nbytes) for f in _SPLIT_FIELDS)

    # -- MacroSession compatibility -------------------------------------
    def example(self, index: int) -> MacroSession:
        """Materialize session ``index`` back into a :class:`MacroSession`."""
        index = int(index)
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"session index {index} out of range for {len(self)} sessions")
        lo, hi = int(self.session_offsets[index]), int(self.session_offsets[index + 1])
        ops = [
            self.op_ids[int(self.op_offsets[s]) : int(self.op_offsets[s + 1])].tolist()
            for s in range(lo, hi)
        ]
        return MacroSession(
            self.macro_items[lo:hi].tolist(),
            ops,
            target=int(self.targets[index]),
            session_id=int(self.session_ids[index]),
        )

    def __getitem__(self, index: int) -> MacroSession:
        return self.example(index)

    def __iter__(self) -> Iterator[MacroSession]:
        for i in range(len(self)):
            yield self.example(i)

    def to_examples(self) -> list[MacroSession]:
        return [self.example(i) for i in range(len(self))]

    @classmethod
    def from_examples(cls, examples: Sequence[MacroSession]) -> "PackedSplit":
        """Pack a list of examples into CSR arrays (the write-side loop)."""
        macro_counts = np.fromiter((len(ex) for ex in examples), dtype=np.int64, count=len(examples))
        session_offsets = np.zeros(len(examples) + 1, dtype=np.int64)
        np.cumsum(macro_counts, out=session_offsets[1:])
        items: list[int] = []
        op_counts: list[int] = []
        op_ids: list[int] = []
        targets = np.zeros(len(examples), dtype=np.int64)
        session_ids = np.zeros(len(examples), dtype=np.int64)
        for i, ex in enumerate(examples):
            if ex.target is None:
                raise ValueError(
                    f"example {ex.session_id} has no target; packed splits require targets"
                )
            targets[i] = ex.target
            session_ids[i] = ex.session_id
            items.extend(ex.macro_items)
            for ops in ex.op_sequences:
                op_counts.append(len(ops))
                op_ids.extend(ops)
        op_offsets = np.zeros(len(op_counts) + 1, dtype=np.int64)
        np.cumsum(np.asarray(op_counts, dtype=np.int64), out=op_offsets[1:])
        return cls(
            session_offsets,
            np.asarray(items, dtype=np.int64),
            op_offsets,
            np.asarray(op_ids, dtype=np.int64),
            targets,
            session_ids,
        )

    # -- vectorized CSR operations --------------------------------------
    def select(self, indices: Sequence[int]) -> "PackedSplit":
        """A new split holding the sessions at ``indices``, in that order."""
        idx = np.asarray(indices, dtype=np.int64)
        n = self.session_offsets[idx + 1] - self.session_offsets[idx]
        session_offsets = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(n, out=session_offsets[1:])
        step_idx = _grouped_arange(self.session_offsets[idx], n)
        k = self.op_lengths[step_idx]
        op_offsets = np.zeros(step_idx.size + 1, dtype=np.int64)
        np.cumsum(k, out=op_offsets[1:])
        op_idx = _grouped_arange(self.op_offsets[step_idx], k)
        return PackedSplit(
            session_offsets,
            self.macro_items[step_idx],
            op_offsets,
            self.op_ids[op_idx],
            self.targets[idx],
            self.session_ids[idx],
        )

    def padded_dims(self, indices: Sequence[int], max_ops_per_item: int | None = None):
        return packed_padded_dims(self, indices, max_ops_per_item)

    def collate(
        self,
        indices: Sequence[int],
        max_ops_per_item: int | None = None,
        buffers: CollateBuffers | None = None,
        pad_to: tuple[int, int, int] | None = None,
    ) -> SessionBatch:
        return collate_packed(
            self, indices, max_ops_per_item=max_ops_per_item, buffers=buffers, pad_to=pad_to
        )


def packed_padded_dims(
    split: PackedSplit, indices: Sequence[int], max_ops_per_item: int | None = None
) -> tuple[int, int, int]:
    """``(n_max, k_max, t_max)`` for the sessions at ``indices``.

    Matches :func:`repro.data.dataset.padded_dims` on the materialized
    examples exactly (same truncation rule for ``t``).
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        raise ValueError("cannot collate an empty list of examples")
    n = split.session_offsets[idx + 1] - split.session_offsets[idx]
    n_max = int(n.max())
    step_idx = _grouped_arange(split.session_offsets[idx], n)
    lens = split.op_lengths[step_idx]
    k_max = int(lens.max()) if lens.size else 0
    if max_ops_per_item is not None:
        k_max = min(k_max, max_ops_per_item)
    t_per = np.zeros(idx.size, dtype=np.int64)
    nonempty = np.flatnonzero(n)
    if lens.size:
        bounds = (np.cumsum(n) - n)[nonempty]
        t_per[nonempty] = np.add.reduceat(np.minimum(lens, k_max), bounds)
    t_max = int(t_per.max()) if t_per.size else 0
    return n_max, k_max, t_max


def collate_packed(
    split: PackedSplit,
    indices: Sequence[int],
    max_ops_per_item: int | None = None,
    buffers: CollateBuffers | None = None,
    pad_to: tuple[int, int, int] | None = None,
) -> SessionBatch:
    """Vectorized :func:`~repro.data.dataset.collate` over CSR arrays.

    Bitwise-identical to the loop collate on the materialized examples:
    identical shapes, dtypes, and values for every field, under every
    combination of ``max_ops_per_item``, ``pad_to``, and ``buffers``.
    """
    idx = np.asarray(indices, dtype=np.int64)
    if idx.size == 0:
        raise ValueError("cannot collate an empty list of examples")
    batch = int(idx.size)
    n_max, k_max, t_max = packed_padded_dims(split, idx, max_ops_per_item)
    if pad_to is not None:
        if pad_to[0] < n_max or pad_to[1] < k_max or pad_to[2] < t_max:
            raise ValueError(f"pad_to {pad_to} smaller than required {(n_max, k_max, t_max)}")
        # The loop collate truncates op runs at the FINAL k_max (after the
        # pad_to override) — mirror that exactly.
        n_max, k_max, t_max = pad_to

    if buffers is not None:
        views = buffers.views(batch, n_max, k_max, t_max)
        items = views["items"]
        item_mask = views["item_mask"]
        ops = views["ops"]
        op_mask = views["op_mask"]
        micro_items = views["micro_items"]
        micro_ops = views["micro_ops"]
        micro_mask = views["micro_mask"]
        last_op = views["last_op"]
        targets = views["targets"]
    else:
        items = np.zeros((batch, n_max), dtype=np.int64)
        item_mask = np.zeros((batch, n_max))
        ops = np.zeros((batch, n_max, k_max), dtype=np.int64)
        op_mask = np.zeros((batch, n_max, k_max))
        micro_items = np.zeros((batch, t_max), dtype=np.int64)
        micro_ops = np.zeros((batch, t_max), dtype=np.int64)
        micro_mask = np.zeros((batch, t_max))
        last_op = np.zeros(batch, dtype=np.int64)
        targets = np.zeros(batch, dtype=np.int64)

    # Macro gather: flat index of every (session, step) pair, batch-major.
    n = split.session_offsets[idx + 1] - split.session_offsets[idx]
    total_steps = int(n.sum())
    row = np.repeat(np.arange(batch, dtype=np.int64), n)
    pos = np.arange(total_steps, dtype=np.int64) - np.repeat(np.cumsum(n) - n, n)
    step_idx = _grouped_arange(split.session_offsets[idx], n, total_steps)
    items_flat = split.macro_items[step_idx]
    items[row, pos] = items_flat
    item_mask[row, pos] = 1.0

    # Micro gather: every kept op of every step, truncated at k_max.
    k_len = np.minimum(split.op_lengths[step_idx], k_max)
    total_ops = int(k_len.sum())
    orow = np.repeat(row, k_len)
    ostep = np.repeat(pos, k_len)
    opos = np.arange(total_ops, dtype=np.int64) - np.repeat(np.cumsum(k_len) - k_len, k_len)
    op_flat = split.op_ids[_grouped_arange(split.op_offsets[step_idx], k_len, total_ops)] + 1
    ops[orow, ostep, opos] = op_flat
    op_mask[orow, ostep, opos] = 1.0

    # Flattened micro view: within-session op position is the t index.
    t_per = np.zeros(batch, dtype=np.int64)
    np.add.at(t_per, row, k_len)
    tpos = np.arange(total_ops, dtype=np.int64) - np.repeat(np.cumsum(t_per) - t_per, t_per)
    micro_items[orow, tpos] = np.repeat(items_flat, k_len)
    micro_ops[orow, tpos] = op_flat
    micro_mask[orow, tpos] = 1.0

    ends = np.cumsum(t_per)
    has_ops = t_per > 0
    last_op[has_ops] = op_flat[ends[has_ops] - 1]
    targets[:] = split.targets[idx]

    return SessionBatch(
        items=items,
        item_mask=item_mask,
        ops=ops,
        op_mask=op_mask,
        micro_items=micro_items,
        micro_ops=micro_ops,
        micro_mask=micro_mask,
        last_op=last_op,
        targets=targets,
    )


class PackedDataset:
    """A fully preprocessed dataset stored as columnar packed splits.

    Drop-in wherever a :class:`~repro.data.preprocess.PreparedDataset` is
    consumed (``Trainer.fit``, ``DataLoader``, stats, popularity): the same
    ``train/validation/test``, ``vocab``, ``operations``, ``num_items``
    surface, backed by arrays instead of Python objects.
    """

    __packed_dataset__ = True

    def __init__(
        self,
        name: str,
        train: PackedSplit,
        validation: PackedSplit,
        test: PackedSplit,
        item_ids: np.ndarray,
        operations: OperationVocab,
        fingerprint: str = "",
    ) -> None:
        self.name = name
        self.train = train
        self.validation = validation
        self.test = test
        self.item_ids = np.asarray(item_ids, dtype=np.int64)
        self.operations = operations
        self.fingerprint = fingerprint
        self._vocab = None

    @property
    def num_items(self) -> int:
        return int(self.item_ids.shape[0])

    @property
    def num_operations(self) -> int:
        return len(self.operations)

    @property
    def vocab(self):
        """The dense :class:`~repro.data.preprocess.ItemVocab` (lazy)."""
        if self._vocab is None:
            from .preprocess import ItemVocab

            self._vocab = ItemVocab.from_ordered(self.item_ids.tolist())
        return self._vocab

    def splits(self) -> dict[str, PackedSplit]:
        return {"train": self.train, "validation": self.validation, "test": self.test}

    def nbytes(self) -> int:
        return sum(split.nbytes() for split in self.splits().values())

    def to_prepared(self):
        """Materialize back into a :class:`PreparedDataset` (lossless)."""
        from .preprocess import PreparedDataset

        return PreparedDataset(
            name=self.name,
            train=self.train.to_examples(),
            validation=self.validation.to_examples(),
            test=self.test.to_examples(),
            vocab=self.vocab,
            operations=self.operations,
        )

    # -- persistence ----------------------------------------------------
    def save(self, path: str | pathlib.Path) -> pathlib.Path:
        """Write the single-file packed format atomically.

        Layout: 8-byte magic, little-endian uint64 header length, JSON
        header, then every array's raw bytes, each 64-byte aligned. Array
        offsets in the header are relative to the (aligned) data start, so
        the header never has to know its own serialized size.
        """
        from ..reliability.atomic import atomic_write

        arrays: dict[str, np.ndarray] = {
            "item_ids": np.ascontiguousarray(self.item_ids, dtype=np.int64)
        }
        for split_name, split in self.splits().items():
            for field in _SPLIT_FIELDS:
                arrays[f"{split_name}/{field}"] = np.ascontiguousarray(
                    getattr(split, field), dtype=np.int64
                )
        meta: dict = {
            "format_version": FORMAT_VERSION,
            "name": self.name,
            "fingerprint": self.fingerprint,
            "operations": list(self.operations.names),
            "num_items": self.num_items,
            "splits": {
                name: {
                    "sessions": len(split),
                    "macro_steps": split.num_macro_steps,
                    "micro_ops": split.num_micro_ops,
                }
                for name, split in self.splits().items()
            },
            "arrays": {},
        }
        offset = 0
        for array_name, arr in arrays.items():
            offset = _aligned(offset)
            meta["arrays"][array_name] = {
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
            offset += arr.nbytes

        header = json.dumps(meta).encode()

        def write(handle) -> None:
            handle.write(MAGIC)
            handle.write(len(header).to_bytes(8, "little"))
            handle.write(header)
            data_start = _aligned(len(MAGIC) + 8 + len(header))
            written = len(MAGIC) + 8 + len(header)
            handle.write(b"\0" * (data_start - written))
            cursor = 0
            for array_name, arr in arrays.items():
                pad = meta["arrays"][array_name]["offset"] - cursor
                handle.write(b"\0" * pad)
                handle.write(arr.tobytes())
                cursor = meta["arrays"][array_name]["offset"] + arr.nbytes

        return atomic_write(path, write)


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


def read_packed_header(path: str | pathlib.Path) -> dict:
    """The JSON header of a packed file (cheap: no array bytes touched)."""
    with pathlib.Path(path).open("rb") as handle:
        magic = handle.read(len(MAGIC))
        if magic != MAGIC:
            raise ValueError(f"{path} is not a packed dataset (bad magic {magic!r})")
        header_len = int.from_bytes(handle.read(8), "little")
        return json.loads(handle.read(header_len))


def is_packed_file(path: str | pathlib.Path) -> bool:
    """True when ``path`` exists and starts with the packed-format magic."""
    try:
        with pathlib.Path(path).open("rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def load_packed(path: str | pathlib.Path, mmap: bool = True) -> PackedDataset:
    """Load a packed dataset, zero-copy by default.

    With ``mmap=True`` every array is a read-only view into one
    ``np.memmap`` of the file — nothing is copied into anonymous memory,
    and forked workers share the file-backed pages. ``mmap=False`` reads
    the file once into RAM (views of a single buffer).
    """
    path = pathlib.Path(path)
    header = read_packed_header(path)
    if header["format_version"] > FORMAT_VERSION:
        raise ValueError(
            f"{path}: packed format version {header['format_version']} is newer "
            f"than this library supports ({FORMAT_VERSION})"
        )
    if mmap:
        raw = np.memmap(path, dtype=np.uint8, mode="r")
    else:
        raw = np.fromfile(path, dtype=np.uint8)
    header_len = int.from_bytes(bytes(raw[len(MAGIC) : len(MAGIC) + 8]), "little")
    data_start = _aligned(len(MAGIC) + 8 + header_len)

    def array_of(name: str) -> np.ndarray:
        spec = header["arrays"][name]
        dtype = np.dtype(spec["dtype"])
        count = int(np.prod(spec["shape"], dtype=np.int64)) if spec["shape"] else 1
        start = data_start + spec["offset"]
        view = raw[start : start + count * dtype.itemsize].view(dtype)
        return view.reshape(spec["shape"])

    splits = {
        split_name: PackedSplit(
            *(array_of(f"{split_name}/{field}") for field in _SPLIT_FIELDS)
        )
        for split_name in _SPLIT_NAMES
    }
    operations = OperationVocab(header["operations"])
    num_items = int(header["num_items"])
    return PackedDataset(
        name=header["name"],
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
        item_ids=np.arange(1, num_items + 1, dtype=np.int64)
        if "item_ids" not in header["arrays"]
        else array_of("item_ids"),
        operations=operations,
        fingerprint=header.get("fingerprint", ""),
    )


def pack_dataset(dataset) -> PackedDataset:
    """Pack a :class:`PreparedDataset` (already-packed inputs pass through)."""
    if getattr(dataset, "__packed_dataset__", False):
        return dataset
    from .stats import dataset_fingerprint

    return PackedDataset(
        name=dataset.name,
        train=PackedSplit.from_examples(dataset.train),
        validation=PackedSplit.from_examples(dataset.validation),
        test=PackedSplit.from_examples(dataset.test),
        item_ids=np.asarray(dataset.vocab.ordered_raw_ids(), dtype=np.int64),
        operations=dataset.operations,
        fingerprint=dataset_fingerprint(dataset),
    )


def packed_fingerprint(packed: PackedDataset) -> str:
    """:func:`~repro.data.stats.dataset_fingerprint` computed from the arrays.

    Byte-for-byte the same digest the object path produces — examples are
    materialized one at a time, so memory stays O(1) in the corpus size.
    """
    digest = hashlib.sha256()
    digest.update(packed.name.encode())
    digest.update(json.dumps(packed.item_ids.tolist()).encode())
    digest.update(json.dumps(list(packed.operations.names)).encode())
    for split_name, split in sorted(packed.splits().items()):
        digest.update(f"{split_name}:{len(split)}".encode())
        for i in range(len(split)):
            ex = split.example(i)
            digest.update(
                json.dumps([ex.macro_items, ex.op_sequences, ex.target]).encode()
            )
    return digest.hexdigest()[:16]


# ----------------------------------------------------------------------
# Streaming ingest: raw sessions -> PackedDataset in bounded memory
# ----------------------------------------------------------------------
class _ChunkedInt64:
    """Append-only int64 column that flushes Python ints to array chunks.

    At any moment at most ``chunk`` values live as Python objects; the
    rest sit in dense int64 chunks. This is what keeps the streaming
    ingest's Python-heap footprint O(chunk) regardless of corpus size.
    """

    def __init__(self, chunk: int = 1 << 18) -> None:
        self._chunk = chunk
        self._pending: list[int] = []
        self._chunks: list[np.ndarray] = []
        self._count = 0

    def append(self, value: int) -> None:
        self._pending.append(value)
        self._count += 1
        if len(self._pending) >= self._chunk:
            self._flush()

    def extend(self, values: Iterable[int]) -> None:
        self._pending.extend(values)
        self._count = sum(c.size for c in self._chunks) + len(self._pending)
        if len(self._pending) >= self._chunk:
            self._flush()

    def _flush(self) -> None:
        if self._pending:
            self._chunks.append(np.asarray(self._pending, dtype=np.int64))
            self._pending = []

    def __len__(self) -> int:
        return self._count

    def array(self) -> np.ndarray:
        self._flush()
        if not self._chunks:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(self._chunks) if len(self._chunks) > 1 else self._chunks[0]


def _offsets_from_counts(counts: np.ndarray) -> np.ndarray:
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def pack_sessions_stream(
    make_sessions: Callable[[], Iterable[Session]],
    operations: OperationVocab,
    name: str = "dataset",
    min_support: int = 5,
    max_macro_len: int = 20,
    split: tuple[float, float, float] = (0.7, 0.1, 0.2),
    seed: int = 0,
    fingerprint: bool = True,
) -> PackedDataset:
    """Two-pass streaming equivalent of ``prepare_dataset`` + ``pack_dataset``.

    ``make_sessions`` is called twice and must return a fresh iterator each
    time (pass 1 counts item support; pass 2 converts). Sessions are
    processed one at a time: merge-successive, vocab encoding, target
    extraction, and the train/val/test permutation all match
    :func:`repro.data.preprocess.prepare_dataset` exactly, so the result is
    array-identical to the eager object path under the same seed.
    """
    if abs(sum(split) - 1.0) > 1e-9:
        raise ValueError(f"split fractions must sum to 1, got {split}")

    # Pass 1: global item support (the only global statistic the pipeline
    # needs). The Counter is bounded by the catalogue, not the corpus.
    from collections import Counter

    counts: Counter[int] = Counter()
    for session in make_sessions():
        counts.update(x.item for x in session.interactions)
    keep = {item for item, c in counts.items() if c >= min_support}
    raw_ids = sorted(keep)
    encode = {raw: i + 1 for i, raw in enumerate(raw_ids)}

    # Pass 2: convert surviving sessions in file order into one flat CSR
    # pool, remembering which filtered sessions yielded a usable example.
    macro_col = _ChunkedInt64()
    op_count_col = _ChunkedInt64()
    op_col = _ChunkedInt64()
    n_col = _ChunkedInt64()  # macro steps per example
    target_col = _ChunkedInt64()
    sid_col = _ChunkedInt64()
    example_of_filtered = _ChunkedInt64()
    n_examples = 0
    for session in make_sessions():
        kept = [(x.item, x.operation) for x in session.interactions if x.item in keep]
        if not kept:
            continue  # not part of the filtered corpus at all
        # merge_successive + _to_example, object-free.
        macro_items: list[int] = []
        op_seqs: list[list[int]] = []
        for item, op in kept:
            if macro_items and macro_items[-1] == item:
                op_seqs[-1].append(op)
            else:
                macro_items.append(item)
                op_seqs.append([op])
        if len(macro_items) < 2:
            example_of_filtered.append(-1)  # filtered, but yields no example
            continue
        example_of_filtered.append(n_examples)
        n_examples += 1
        inputs = [encode[v] for v in macro_items[:-1]][-max_macro_len:]
        ops = op_seqs[:-1][-max_macro_len:]
        n_col.append(len(inputs))
        macro_col.extend(inputs)
        for seq in ops:
            op_count_col.append(len(seq))
            op_col.extend(seq)
        target_col.append(encode[macro_items[-1]])
        sid_col.append(session.session_id)

    pool = PackedSplit(
        _offsets_from_counts(n_col.array()),
        macro_col.array(),
        _offsets_from_counts(op_count_col.array()),
        op_col.array(),
        target_col.array(),
        sid_col.array(),
    )
    example_of = example_of_filtered.array()

    # The split permutation is over *filtered sessions* (exactly like
    # prepare_dataset); examples dropped for macro length < 2 consume a
    # permutation slot but emit nothing.
    rng = np.random.default_rng(seed)
    order = rng.permutation(example_of.size)
    n_train = int(example_of.size * split[0])
    n_val = int(example_of.size * split[1])
    slices = {
        "train": order[:n_train],
        "validation": order[n_train : n_train + n_val],
        "test": order[n_train + n_val :],
    }
    splits = {}
    for split_name, filtered_idx in slices.items():
        ex_idx = example_of[filtered_idx]
        splits[split_name] = pool.select(ex_idx[ex_idx >= 0])

    packed = PackedDataset(
        name=name,
        train=splits["train"],
        validation=splits["validation"],
        test=splits["test"],
        item_ids=np.asarray(raw_ids, dtype=np.int64),
        operations=operations,
        fingerprint="",
    )
    if fingerprint:
        packed.fingerprint = packed_fingerprint(packed)
    return packed


def pack_sessions_jsonl(
    path: str | pathlib.Path,
    operations: OperationVocab,
    **kwargs,
) -> PackedDataset:
    """Stream a sessions JSONL file (``save_sessions_jsonl`` output) into a
    packed dataset without ever holding the corpus as Python objects."""
    from .io import iter_sessions_jsonl

    return pack_sessions_stream(lambda: iter_sessions_jsonl(path), operations, **kwargs)
