"""Dataset preprocessing pipeline (paper Sec. V-A1).

Steps, in the paper's order:

1. filter out items with fewer than ``min_support`` occurrences
   (50 for the JD datasets, 5 for trivago);
2. split sessions 70% / 10% / 20% into train / validation / test;
3. use the last *macro* item of each session as the ground truth;
4. exclude sessions consisting of only a single (macro) item.

Item ids are remapped to a dense vocabulary where **0 is the padding id**
and real items occupy ``1..num_items``. Operation ids are likewise shifted
by one in the batching layer (see ``repro.data.dataset``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

import numpy as np

from .schema import Interaction, MacroSession, OperationVocab, Session, merge_successive

__all__ = [
    "ItemVocab",
    "PreparedDataset",
    "prepare_dataset",
    "augment_prefixes",
    "single_operation_view",
]


class ItemVocab:
    """Dense item-id mapping; id 0 is reserved for padding."""

    PAD = 0

    def __init__(self, raw_ids: list[int]):
        self._to_dense = {raw: i + 1 for i, raw in enumerate(sorted(set(raw_ids)))}
        self._to_raw = {v: k for k, v in self._to_dense.items()}

    @classmethod
    def from_ordered(cls, raw_ids: list[int]) -> "ItemVocab":
        """Rebuild a vocabulary whose dense order is already decided.

        ``raw_ids[i]`` becomes dense id ``i + 1`` verbatim — no sorting, no
        dedup — so a vocabulary persisted in dense order (e.g. inside a
        model artifact) round-trips to the exact id mapping the weights
        were trained with.
        """
        if len(set(raw_ids)) != len(raw_ids):
            raise ValueError("from_ordered requires unique raw ids")
        vocab = cls.__new__(cls)
        vocab._to_dense = {raw: i + 1 for i, raw in enumerate(raw_ids)}
        vocab._to_raw = {v: k for k, v in vocab._to_dense.items()}
        return vocab

    def ordered_raw_ids(self) -> list[int]:
        """Raw ids in dense order (dense id ``i + 1`` -> element ``i``)."""
        return [self._to_raw[i] for i in range(1, len(self._to_raw) + 1)]

    def __len__(self) -> int:
        """Number of real items (excluding padding)."""
        return len(self._to_dense)

    @property
    def num_ids(self) -> int:
        """Size of the embedding table (items + padding slot)."""
        return len(self._to_dense) + 1

    def __contains__(self, raw_id: int) -> bool:
        return raw_id in self._to_dense

    def encode(self, raw_id: int) -> int:
        return self._to_dense[raw_id]

    def decode(self, dense_id: int) -> int:
        return self._to_raw[dense_id]


@dataclass
class PreparedDataset:
    """A fully preprocessed dataset ready for model training."""

    name: str
    train: list[MacroSession]
    validation: list[MacroSession]
    test: list[MacroSession]
    vocab: ItemVocab
    operations: OperationVocab

    @property
    def num_items(self) -> int:
        return len(self.vocab)

    @property
    def num_operations(self) -> int:
        return len(self.operations)

    def splits(self) -> dict[str, list[MacroSession]]:
        return {"train": self.train, "validation": self.validation, "test": self.test}


def _filter_items(sessions: list[Session], min_support: int) -> list[Session]:
    counts: Counter[int] = Counter()
    for session in sessions:
        counts.update(x.item for x in session.interactions)
    keep = {item for item, n in counts.items() if n >= min_support}
    filtered = []
    for session in sessions:
        kept = [x for x in session.interactions if x.item in keep]
        if kept:
            filtered.append(Session(kept, session_id=session.session_id))
    return filtered


def _to_example(session: Session, vocab: ItemVocab, max_macro_len: int) -> MacroSession | None:
    """Merge, remap ids, split off the last macro item as the target."""
    macro = merge_successive(session)
    if len(macro) < 2:
        return None
    items = [vocab.encode(v) for v in macro.macro_items]
    target = items[-1]
    inputs = items[:-1][-max_macro_len:]
    ops = macro.op_sequences[:-1][-max_macro_len:]
    return MacroSession(inputs, [list(o) for o in ops], target=target, session_id=session.session_id)


def prepare_dataset(
    sessions: list[Session],
    operations: OperationVocab,
    name: str = "dataset",
    min_support: int = 5,
    max_macro_len: int = 20,
    split: tuple[float, float, float] = (0.7, 0.1, 0.2),
    seed: int = 0,
) -> PreparedDataset:
    """Run the full preprocessing pipeline over raw sessions."""
    if abs(sum(split) - 1.0) > 1e-9:
        raise ValueError(f"split fractions must sum to 1, got {split}")
    filtered = _filter_items(sessions, min_support)

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(filtered))
    n_train = int(len(filtered) * split[0])
    n_val = int(len(filtered) * split[1])
    groups = {
        "train": [filtered[i] for i in order[:n_train]],
        "validation": [filtered[i] for i in order[n_train : n_train + n_val]],
        "test": [filtered[i] for i in order[n_train + n_val :]],
    }

    # Vocabulary is built from the entire filtered corpus so that every item
    # has an embedding row (test-only items would otherwise be unscoreable;
    # the paper's setup has the same closed item set V).
    vocab = ItemVocab([x.item for s in filtered for x in s.interactions])

    examples: dict[str, list[MacroSession]] = {}
    for split_name, split_sessions in groups.items():
        converted = (_to_example(s, vocab, max_macro_len) for s in split_sessions)
        examples[split_name] = [m for m in converted if m is not None]

    return PreparedDataset(
        name=name,
        train=examples["train"],
        validation=examples["validation"],
        test=examples["test"],
        vocab=vocab,
        operations=operations,
    )


def augment_prefixes(examples: list[MacroSession]) -> list[MacroSession]:
    """Prefix augmentation (Tan et al., 2016; used by the SR-GNN family).

    For each example with input ``[v1..vn]`` and target ``t``, also emit
    ``([v1..vk], v_{k+1})`` for every ``k >= 1``.
    """
    augmented: list[MacroSession] = []
    for ex in examples:
        augmented.append(ex)
        for k in range(1, len(ex)):
            augmented.append(
                MacroSession(
                    ex.macro_items[:k],
                    [list(o) for o in ex.op_sequences[:k]],
                    target=ex.macro_items[k],
                    session_id=ex.session_id,
                )
            )
    return augmented


def single_operation_view(
    examples: list[MacroSession],
    operations: OperationVocab,
    keep_ops: set[int],
) -> list[MacroSession]:
    """Restrict each example to macro steps that contain a kept operation.

    This implements the supplemental-material experiment (Supp. Table I):
    macro-behavior baselines see only "click-like" events, while the ground
    truth of each sequence is kept identical for a fair comparison. Examples
    whose filtered input would be empty keep their last macro step so the
    session remains usable.
    """
    view: list[MacroSession] = []
    for ex in examples:
        kept_idx = [
            i for i, ops in enumerate(ex.op_sequences) if any(o in keep_ops for o in ops)
        ]
        if not kept_idx:
            kept_idx = [len(ex) - 1]
        items = [ex.macro_items[i] for i in kept_idx]
        op_seqs = [[o for o in ex.op_sequences[i] if o in keep_ops] or list(ex.op_sequences[i]) for i in kept_idx]
        view.append(MacroSession(items, op_seqs, target=ex.target, session_id=ex.session_id))
    return view
