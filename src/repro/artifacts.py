"""Self-describing model artifacts: spec + vocabulary + weights + metadata.

A checkpoint that is only a bag of arrays cannot be served without
re-loading the dataset it was trained on and re-deriving the architecture
by hand. An **artifact** bundles everything a fresh process needs to
reconstruct the fitted model:

* the :class:`~repro.registry.ModelSpec` (architecture identity),
* the item vocabulary in dense order (raw id of every embedding row),
* every parameter array,
* training metadata — metrics, the dataset fingerprint, dtype, and a
  popularity ranking for degraded serving.

Artifacts are single ``.npz`` archives written atomically through
``repro.reliability.atomic``, so a crash mid-save never destroys the
previous good bundle. ``repro serve --artifact model.npz`` boots a full
gateway from one of these with **no dataset file at all**, and a spec/
weights bundle loaded in a spawned worker reproduces ``score_batch``
bit-identically (``docs/registry.md``).
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .data.preprocess import ItemVocab
from .registry import ModelSpec
from .reliability import atomic_save_npz

__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ModelArtifact",
    "save_artifact",
    "load_artifact",
    "try_load_artifact",
    "load_recommender",
    "store_retrieval_spec",
]

ARTIFACT_FORMAT_VERSION = 1

# Reserved archive keys. Everything under WEIGHT_PREFIX is a parameter.
_HEADER_KEY = "__artifact__"
_ITEMS_KEY = "vocab/item_ids"
_WEIGHT_PREFIX = "weights/"


@dataclass
class ModelArtifact:
    """An in-memory artifact bundle, loaded from or destined for disk."""

    spec: ModelSpec
    weights: dict[str, np.ndarray]
    item_ids: list[int]
    metadata: dict[str, Any] = field(default_factory=dict)

    def vocab(self) -> ItemVocab:
        """The training vocabulary, dense order preserved."""
        return ItemVocab.from_ordered(self.item_ids)

    def validate(self) -> "ModelArtifact":
        if len(self.item_ids) != self.spec.num_items:
            raise ValueError(
                f"artifact is inconsistent: spec says {self.spec.num_items} items "
                f"but the vocabulary holds {len(self.item_ids)}"
            )
        return self

    def build_module(self):
        """Reconstruct the fitted :class:`~repro.nn.Module` (weights loaded)."""
        from .autograd import default_dtype
        from .registry import build_module

        with default_dtype(self.spec.dtype):
            model = build_module(self.spec)
            model.load_state_dict(self.weights)
        return model

    def build(self, train_config=None):
        """Reconstruct a ready-to-score :class:`~repro.eval.Recommender`."""
        from .eval.trainer import NeuralRecommender

        return NeuralRecommender.from_artifact(self, train_config)

    def retrieval_spec(self):
        """The stored ANN index recipe, or ``None`` when none was saved.

        Indexes are rebuilt from this recipe at load time — the artifact
        never carries index arrays (``docs/retrieval.md``).
        """
        stored = self.metadata.get("retrieval")
        if not stored:
            return None
        from .retrieval import IndexSpec

        return IndexSpec.from_dict(stored)


def save_artifact(
    path: str | pathlib.Path,
    *,
    spec: ModelSpec,
    weights: dict[str, np.ndarray],
    item_ids: list[int],
    metadata: dict[str, Any] | None = None,
) -> pathlib.Path:
    """Atomically write one self-describing artifact archive at ``path``."""
    artifact = ModelArtifact(spec, dict(weights), list(item_ids), dict(metadata or {}))
    artifact.validate()
    header = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "spec": artifact.spec.to_dict(),
        "metadata": artifact.metadata,
    }
    arrays: dict[str, np.ndarray] = {
        _HEADER_KEY: np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
        _ITEMS_KEY: np.asarray(artifact.item_ids, dtype=np.int64),
    }
    for name, array in artifact.weights.items():
        arrays[_WEIGHT_PREFIX + name] = array
    return atomic_save_npz(path, arrays)


def load_artifact(path: str | pathlib.Path) -> ModelArtifact:
    """Load an artifact written by :func:`save_artifact`.

    Raises ``ValueError`` when ``path`` is an ``.npz`` archive that is not
    an artifact (e.g. a bare parameter checkpoint), so callers can
    distinguish the legacy format cleanly.
    """
    path = pathlib.Path(path)
    with np.load(path) as archive:
        if _HEADER_KEY not in archive.files:
            raise ValueError(
                f"{path} is not a model artifact (missing {_HEADER_KEY!r} header); "
                "bare parameter checkpoints carry no spec/vocabulary"
            )
        data = {name: archive[name] for name in archive.files}
    header = json.loads(data.pop(_HEADER_KEY).tobytes().decode())
    version = header.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ValueError(
            f"{path} uses artifact format {version!r}; this build reads "
            f"version {ARTIFACT_FORMAT_VERSION}"
        )
    item_ids = [int(i) for i in data.pop(_ITEMS_KEY)]
    weights = {
        name[len(_WEIGHT_PREFIX):]: array
        for name, array in data.items()
        if name.startswith(_WEIGHT_PREFIX)
    }
    return ModelArtifact(
        spec=ModelSpec.from_dict(header["spec"]),
        weights=weights,
        item_ids=item_ids,
        metadata=header.get("metadata", {}),
    ).validate()


def try_load_artifact(path: str | pathlib.Path) -> ModelArtifact | None:
    """Like :func:`load_artifact`, but ``None`` for non-artifact archives.

    Only the *absence of the artifact header* maps to ``None`` (that's a
    legacy bare-parameter checkpoint); corrupt files and version
    mismatches still raise.
    """
    with np.load(pathlib.Path(path)) as archive:
        if _HEADER_KEY not in archive.files:
            return None
    return load_artifact(path)


def load_recommender(path: str | pathlib.Path, train_config=None):
    """One-call boot: artifact on disk -> fitted, scoreable recommender."""
    return load_artifact(path).build(train_config)


def store_retrieval_spec(path: str | pathlib.Path, spec) -> pathlib.Path:
    """Record an ANN index recipe in an artifact's metadata (atomic rewrite).

    ``repro index build ... --save`` uses this so a later
    ``repro serve --artifact`` rebuilds the exact same index — same
    resolved cells/nprobe/seed — without any side file.
    """
    artifact = load_artifact(path)
    metadata = dict(artifact.metadata)
    metadata["retrieval"] = spec.to_dict()
    return save_artifact(
        path,
        spec=artifact.spec,
        weights=artifact.weights,
        item_ids=artifact.item_ids,
        metadata=metadata,
    )
