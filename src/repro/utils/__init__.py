"""Small shared utilities (table rendering, timing)."""

from .tables import render_markdown, render_table

__all__ = ["render_table", "render_markdown"]
