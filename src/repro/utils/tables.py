"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_markdown"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render an aligned monospace table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        out.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(out)


def render_markdown(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Render a GitHub-flavored markdown table."""
    out = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(_fmt(v) for v in row) + " |")
    return "\n".join(out)
