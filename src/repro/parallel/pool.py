"""Process-pool fan-out for independent benchmark cells.

A benchmark table is a grid of independent ``model × dataset`` cells:
each cell builds its model from a fresh, spec-seeded generator, so no
cell's result depends on which others ran, in what order, or in which
process. That independence is what makes fan-out *safe*: running the
cells through a pool produces byte-identical result JSONs to running
them serially (asserted by ``tests/parallel/test_pool.py``).

Mechanics: the parent stashes the :class:`~repro.eval.ExperimentRunner`
in a module global and forks the pool, so workers inherit the dataset
through fork instead of pickling it per task; only the (small) fitted
results travel back. Results are merged into ``runner.results`` in the
caller's name order — ``Pool.map`` preserves order, so the merge is
deterministic.
"""

from __future__ import annotations

import multiprocessing

__all__ = ["run_experiment_cells"]

# Runners visible to forked pool workers (inherited at fork, keyed so
# nested/successive pools cannot collide). Never mutated by workers.
_CELL_RUNNERS: dict[int, object] = {}


def _run_cell(task: tuple[int, str]):
    """Pool worker: fit and evaluate one cell of the benchmark grid."""
    key, name = task
    return _CELL_RUNNERS[key].run(name)


def run_experiment_cells(runner, names, workers: int = 1, verbose: bool = False) -> dict:
    """Fill ``runner.results`` for ``names``, fanning cells across processes.

    With ``workers <= 1`` (or nothing left to run) this is exactly the
    serial ``runner.run`` loop. Otherwise pending cells are mapped over a
    fork pool and the fitted :class:`~repro.eval.ExperimentResult` objects
    are merged back in order, after which ``runner`` behaves as if it had
    run every cell itself (``score_on_test``, ``metric_table``, caching).
    """
    pending = [name for name in names if name not in runner.results]
    effective = min(int(workers), len(pending))
    if effective <= 1:
        return {name: runner.run(name, verbose=verbose) for name in names}
    key = max(_CELL_RUNNERS, default=0) + 1
    _CELL_RUNNERS[key] = runner
    try:
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(processes=effective) as pool:
            results = pool.map(_run_cell, [(key, name) for name in pending])
    finally:
        _CELL_RUNNERS.pop(key, None)
    for result in results:
        runner.results[result.name] = result
        if verbose:
            pretty = ", ".join(f"{k}={v:.2f}" for k, v in result.metrics.items())
            print(f"[{runner.dataset.name}] {result.name}: {pretty}")
    return {name: runner.results[name] for name in names}
