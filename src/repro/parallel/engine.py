"""Deterministic data-parallel training over shared-memory buffers.

Two executors implement the same contract — "compute the canonical shard
grid's gradient for batch ``(epoch, batch_index)`` and leave it on
``p.grad``" (see :mod:`repro.parallel.sharding` for why the grid, not the
worker count, defines the math):

* :class:`SerialShardExecutor` walks the G shards in one process. It is
  the reference implementation and the fallback when ``workers <= 1``.
* :class:`DataParallelEngine` forks N worker processes that each own a
  contiguous range of the G shards. Parameters travel master → workers
  through one shared block; each shard's gradient comes back in its own
  row of a ``[G, P]`` shared block, and the master reduces the rows in
  fixed order — so the result is bit-identical to the serial executor.

Design notes that keep this correct against the rest of the codebase:

* **Parameters are synced before every command.** The optimizers and
  ``load_state_dict`` rebind ``p.data`` to fresh arrays instead of writing
  in place, so workers cannot watch the master's arrays directly. The
  master flattens its parameters into the shared block at each command;
  workers bound their ``p.data`` to views of that block once, after fork.
* **Workers collate their own batches.** ``fork`` hands every worker the
  dataset and the loader; batch order is ``DataLoader.permutation(epoch)``
  — pure in ``(seed, epoch)`` — so no example bytes ever cross process
  boundaries.
* **Evaluation fans out whole batches** (batch ``b`` goes to worker
  ``b % N``) into a shared score matrix. Batch composition is unchanged,
  so scores are bitwise what serial evaluation produces — and the metrics
  that drive model selection do not depend on the worker count.
* **Synchronisation is a generation counter, not a barrier.** The master
  dispatches a command by writing its arguments into the control block and
  incrementing a generation word; each worker polls the generation, runs
  the command, and writes the generation back into its own ack slot.
  ``multiprocessing.Barrier`` (and everything else built on
  ``mp.Condition``) deadlocks permanently if a participant dies while
  parked in a ``wait`` — the notifier blocks forever waiting for the dead
  sleeper's acknowledgement — whereas the polling protocol lets the master
  check worker liveness on every spin and lets workers notice a vanished
  master via ``getppid``. No process can wedge another.
* **Shutdown is unconditional.** The engine is used as a context manager /
  inside ``finally``; ``shutdown`` sends a graceful STOP when the workers
  are healthy, terminates stragglers otherwise, and unlinks every shared
  segment. ``tests/parallel/test_cleanup.py`` holds it to that after
  normal exits, simulated crashes, Ctrl-C, and killed workers.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import sys
import time
import traceback

import numpy as np

from ..autograd import default_dtype, no_grad
from ..data.dataset import CollateBuffers, DataLoader, SessionBatch, collate
from .sharding import (
    ParamLayout,
    collect_rng_modules,
    reduce_shards,
    shard_bounds,
    shard_generator,
    shard_rng,
    slice_batch,
)
from .shm import SharedArena

__all__ = ["WorkerError", "SerialShardExecutor", "DataParallelEngine"]

# Control-word layout (int64):
#   [cmd, arg0, arg1, arg2, generation, ack_w0..ack_w(N-1), err_w0..err_w(N-1)]
# The master publishes a command by filling cmd/args and bumping the
# generation; worker w acknowledges by writing that generation into its ack
# slot. Aligned int64 loads/stores are atomic and program-ordered on the
# platforms the fork engine supports, so args written before the generation
# bump are visible to any worker that has observed the bump.
_CMD_IDLE, _CMD_TRAIN, _CMD_EVAL, _CMD_STOP = 0, 1, 2, 3
_GEN_SLOT = 4
_ACK_BASE = 5
_POLL_SECONDS = 0.0005


class WorkerError(RuntimeError):
    """A data-parallel worker failed or died; tracebacks are on stderr."""


def _make_compiled(model, enabled: bool, objective=None):
    """A fresh :class:`~repro.compile.step.CompileEngine`, or ``None``.

    Imported lazily so the parallel engine has no hard dependency on the
    compile package at import time.
    """
    if not enabled:
        return None
    from ..compile.step import CompileEngine

    return CompileEngine(model, objective=objective)


def _default_objective():
    """The cross-entropy objective, imported lazily (same cycle-avoidance)."""
    from ..objectives import CrossEntropyObjective

    return CrossEntropyObjective()


def _sum_components(rows: np.ndarray, names: tuple) -> dict:
    """Fixed-order shard sums of the per-component loss rows.

    Mirrors the fixed-order total-loss sum: accumulation order is shard
    0..G-1 regardless of worker count, so the reported component losses
    are bit-identical between the serial and forked executors.
    """
    out: dict[str, float] = {}
    for j, name in enumerate(names):
        acc = 0.0
        for s in range(rows.shape[0]):
            acc += float(rows[s, j])
        out[name] = acc
    return out


class SerialShardExecutor:
    """The canonical shard grid, executed sequentially in one process.

    Exists for two reasons: it *defines* the math the multi-process engine
    must reproduce bit-for-bit (``tests/parallel/test_parity.py`` diffs
    the two), and it serves ``grad_shards > 1`` on a single worker so a
    run checkpointed under N workers can resume anywhere.
    """

    def __init__(
        self, model, *, grad_shards: int, seed: int, compile: bool = False,
        objective=None,
    ) -> None:
        if grad_shards < 1:
            raise ValueError("grad_shards must be >= 1")
        self.model = model
        self.grad_shards = grad_shards
        self.seed = seed
        self.objective = objective if objective is not None else _default_objective()
        self.last_components: dict[str, float] = {}
        self._component_names = tuple(self.objective.component_names)
        self._compiled = _make_compiled(model, compile, self.objective)
        self._layout = ParamLayout(model.parameters())
        self._rng_modules = collect_rng_modules(model)
        total = self._layout.total
        self._grads = np.zeros((grad_shards, total), dtype=self._layout.dtype)
        self._acc = np.empty(total, dtype=self._layout.dtype)
        self._losses = np.zeros(grad_shards, dtype=np.float64)
        self._components = np.zeros(
            (grad_shards, max(1, len(self._component_names))), dtype=np.float64
        )

    def compute(
        self, epoch: int, batch_index: int, retry: int = 0, batch: SessionBatch | None = None
    ) -> float:
        """Grid-gradient of ``batch``; leaves it on ``p.grad``, returns the loss.

        The returned loss is the fixed-order sum of per-shard partial
        losses (each already divided by the full batch size), i.e. the
        whole-batch mean NLL computed through the canonical tree.
        """
        from ..objectives import StepContext

        if batch is None:
            raise ValueError("SerialShardExecutor.compute needs the collated batch")
        total_rows = batch.batch_size
        bounds = shard_bounds(total_rows, self.grad_shards)
        for s, (lo, hi) in enumerate(bounds):
            if lo == hi:
                self._grads[s].fill(0)
                self._losses[s] = 0.0
                self._components[s].fill(0)
                continue
            shard = slice_batch(batch, lo, hi)
            for p in self._layout.parameters:
                p.zero_grad()
            ctx = StepContext(
                seed=self.seed, epoch=epoch, batch_index=batch_index, shard=s, retry=retry
            )
            generator = shard_generator(self.seed, epoch, batch_index, s, retry)
            with shard_rng(self._rng_modules, generator):
                if self._compiled is not None:
                    # Trace/validate/replay is bitwise the eager step (the
                    # engine enforces it), so sharded compiled runs keep the
                    # parity contract with the multi-process engine.
                    self._losses[s] = self._compiled.step(shard, total=total_rows, ctx=ctx)
                    comp = self._compiled.last_components
                    for j, name in enumerate(self._component_names):
                        self._components[s, j] = comp.get(name, 0.0)
                else:
                    self.objective.begin_step(ctx)
                    parts = self.objective.compute(self.model, shard, total=total_rows)
                    self._losses[s] = float(parts.loss.item())
                    parts.loss.backward()
                    values = parts.component_values()
                    for j, name in enumerate(self._component_names):
                        self._components[s, j] = values.get(name, 0.0)
            self._layout.write_grads(self._grads[s])
        reduce_shards(self._grads, self._acc)
        self._layout.assign_grads(self._acc)
        total_loss = 0.0
        for s in range(self.grad_shards):
            total_loss += float(self._losses[s])
        self.last_components = _sum_components(self._components, self._component_names)
        return total_loss

    def shutdown(self) -> None:
        """Nothing to tear down; present for executor interface symmetry."""


class DataParallelEngine:
    """Forked workers computing disjoint shard ranges of every batch.

    Construction allocates the shared blocks and forks the workers
    immediately (Linux ``fork`` start method — workers inherit the model,
    the dataset, and the mapped segments; nothing is pickled). Use as a
    context manager, or call :meth:`shutdown` in a ``finally``.

    ``eval_splits`` maps split names to example lists; :meth:`predict`
    fans whole batches of a registered split across the workers and
    returns ``(scores, target_classes)`` exactly like ``Trainer.predict``.
    """

    def __init__(
        self,
        model,
        train_loader: DataLoader,
        *,
        workers: int,
        grad_shards: int,
        seed: int,
        dtype: str,
        eval_splits: dict | None = None,
        num_items: int = 0,
        timeout: float = 600.0,
        compile: bool = False,
        objective=None,
    ) -> None:
        if workers < 2:
            raise ValueError("DataParallelEngine needs workers >= 2; use SerialShardExecutor")
        if grad_shards < workers:
            raise ValueError(f"grad_shards ({grad_shards}) must be >= workers ({workers})")
        if sys.platform == "win32":  # pragma: no cover - engine is fork-only
            raise RuntimeError("data-parallel training requires the fork start method")
        self.model = model
        self.loader = train_loader
        self.workers = workers
        self.grad_shards = grad_shards
        self.seed = seed
        self.dtype = dtype
        self.timeout = timeout
        self.num_items = num_items
        self.compile = compile
        # Resolved before the fork so every worker inherits the identical
        # objective instance (weights, augment knobs, component order).
        self.objective = objective if objective is not None else _default_objective()
        self.last_components: dict[str, float] = {}
        self._component_names = tuple(self.objective.component_names)
        # Packed splits stay as CSR arrays (forked workers then share the
        # file-backed/COW pages instead of each copying an object list);
        # anything else is materialized once here, before the fork.
        self._eval_splits = [
            (name, examples if getattr(examples, "__packed_split__", False) else list(examples))
            for name, examples in (eval_splits or {}).items()
        ]
        self._split_index = {name: i for i, (name, _) in enumerate(self._eval_splits)}
        self._layout = ParamLayout(model.parameters())
        self._arena = SharedArena()
        self._procs: list = []
        self._started = False
        self._broken = False
        self._master_pid = os.getpid()
        self._err_base = _ACK_BASE + workers
        self._start()

    # -- lifecycle -----------------------------------------------------
    def _start(self) -> None:
        ctx = multiprocessing.get_context("fork")
        total = self._layout.total
        self._params = self._arena.allocate("params", (total,), self._layout.dtype)
        self._grads = self._arena.allocate("grads", (self.grad_shards, total), self._layout.dtype)
        self._losses = self._arena.allocate("loss", (self.grad_shards,), np.float64)
        self._components = self._arena.allocate(
            "components", (self.grad_shards, max(1, len(self._component_names))), np.float64
        )
        self._ctrl = self._arena.allocate("ctrl", (self._err_base + self.workers,), np.int64)
        max_eval = max((len(examples) for _, examples in self._eval_splits), default=0)
        self._scores = (
            self._arena.allocate("scores", (max_eval, self.num_items), np.dtype(self.dtype))
            if max_eval and self.num_items
            else None
        )
        self._acc = np.empty(total, dtype=self._layout.dtype)
        try:
            for worker_id in range(self.workers):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(self, worker_id),
                    daemon=True,
                    name=f"repro-par-w{worker_id}",
                )
                proc.start()
                self._procs.append(proc)
        except BaseException:
            self._started = True  # force full teardown of whatever came up
            self.shutdown()
            raise
        self._started = True

    def __enter__(self) -> "DataParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def alive(self) -> bool:
        """True while every worker process is still running."""
        return bool(self._procs) and all(p.is_alive() for p in self._procs)

    def shutdown(self) -> None:
        """Stop workers and unlink every shared segment. Idempotent.

        Safe from any master-side state: a healthy engine gets a graceful
        STOP through the generation protocol (a worker mid-batch finishes
        it first — an abandoned command's results are simply discarded);
        a broken one skips straight to joining and terminating whatever
        still runs. Either way every shared block is unlinked.
        """
        if not self._started:
            return
        self._started = False
        try:
            if any(proc.is_alive() for proc in self._procs):
                # Graceful even when broken: surviving workers are healthy
                # pollers and exit as soon as they see the STOP generation
                # (finishing a command in flight first; its results are
                # simply discarded).
                ctrl = self._ctrl
                ctrl[self._err_base :] = 0
                ctrl[0] = _CMD_STOP
                generation = int(ctrl[_GEN_SLOT]) + 1
                ctrl[_GEN_SLOT] = generation
                acks = ctrl[_ACK_BASE : self._err_base]
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if all(
                        acks[w] == generation or not proc.is_alive()
                        for w, proc in enumerate(self._procs)
                    ):
                        break
                    time.sleep(_POLL_SECONDS)
        finally:
            for proc in self._procs:
                proc.join(timeout=10.0)
            for proc in self._procs:
                if proc.is_alive():  # pragma: no cover - worker wedged
                    proc.terminate()
                    proc.join(timeout=10.0)
            self._procs.clear()
            self._arena.close()

    # -- command protocol ----------------------------------------------
    def _command(self, cmd: int, arg0: int = 0, arg1: int = 0, arg2: int = 0) -> None:
        if not self._started:
            raise RuntimeError("engine is shut down")
        if self._broken:
            raise WorkerError("engine is broken; a previous command failed")
        # Sync parameters unconditionally: optimizer.step and
        # load_state_dict rebind p.data, so the shared block is refreshed
        # from the master model before workers read it.
        self._layout.write_params(self._params)
        ctrl = self._ctrl
        ctrl[self._err_base :] = 0
        ctrl[1], ctrl[2], ctrl[3] = arg0, arg1, arg2
        ctrl[0] = cmd
        generation = int(ctrl[_GEN_SLOT]) + 1
        ctrl[_GEN_SLOT] = generation  # publish: workers latch args after this
        deadline = time.monotonic() + self.timeout
        while not np.all(ctrl[_ACK_BASE : self._err_base] == generation):
            if not self.alive():
                self._broken = True
                raise WorkerError(
                    "data-parallel worker(s) died mid-batch; training cannot "
                    "continue (see worker stderr)"
                )
            if time.monotonic() > deadline:
                self._broken = True
                raise WorkerError(
                    f"data-parallel worker(s) did not finish command {cmd} "
                    f"within {self.timeout:.0f}s"
                )
            time.sleep(_POLL_SECONDS)
        failed = np.flatnonzero(ctrl[self._err_base :])
        if failed.size:
            self._broken = True
            raise WorkerError(
                f"data-parallel worker(s) {[int(w) for w in failed]} raised during "
                f"command {cmd}; tracebacks are on stderr"
            )

    def compute(
        self, epoch: int, batch_index: int, retry: int = 0, batch: SessionBatch | None = None
    ) -> float:
        """Distributed grid-gradient of batch ``(epoch, batch_index)``.

        ``batch`` is ignored — workers collate their own shard rows from
        the loader's pure ``(seed, epoch)`` permutation. The reduced
        gradient lands on ``p.grad`` of the master's parameters and the
        fixed-order total loss is returned, exactly like
        :meth:`SerialShardExecutor.compute`.
        """
        del batch
        self._command(_CMD_TRAIN, epoch, batch_index, retry)
        reduce_shards(self._grads, self._acc)
        self._layout.assign_grads(self._acc)
        total_loss = 0.0
        for s in range(self.grad_shards):
            total_loss += float(self._losses[s])
        self.last_components = _sum_components(self._components, self._component_names)
        return total_loss

    def predict(self, split: str, batch_size: int = 128) -> tuple[np.ndarray, np.ndarray]:
        """Fan evaluation of a registered split across the workers.

        Batches are formed exactly as serial evaluation forms them and
        scored whole (batch ``b`` on worker ``b % workers``), so the
        returned score matrix is bitwise identical to ``Trainer.predict``.
        """
        if split not in self._split_index:
            raise KeyError(f"split {split!r} not registered with the engine")
        if self._scores is None:
            raise RuntimeError("engine was built without eval buffers (num_items=0?)")
        index = self._split_index[split]
        examples = self._eval_splits[index][1]
        self._command(_CMD_EVAL, index, batch_size)
        scores = self._scores[: len(examples)].copy()
        if getattr(examples, "__packed_split__", False):
            targets = examples.targets - 1  # dense column; no object walk
        else:
            targets = np.asarray([ex.target for ex in examples], dtype=np.int64) - 1
        return scores, targets


# ----------------------------------------------------------------------
# Worker side (runs in forked children)
# ----------------------------------------------------------------------

def _worker_main(engine: DataParallelEngine, worker_id: int) -> None:
    """Forked worker loop: poll for a command, run it, acknowledge.

    Ctrl-C is the master's to handle (workers ignore SIGINT); any
    exception during a command sets this worker's error flag but still
    acknowledges the generation, so the master never hangs waiting for a
    failed worker. A master that vanishes entirely is noticed through
    ``getppid`` and the worker exits on its own.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    layout = engine._layout
    layout.bind_params(engine._params)
    rng_modules = collect_rng_modules(engine.model)
    # Each worker owns its own tape cache: shapes repeat per worker just
    # like per process, and tapes hold process-local buffer references.
    compiled = _make_compiled(engine.model, engine.compile, engine.objective)
    buffers = CollateBuffers()
    shard_lo, shard_hi = shard_bounds(engine.grad_shards, engine.workers)[worker_id]
    order_cache: dict[int, np.ndarray] = {}
    ctrl = engine._ctrl
    ack_slot = _ACK_BASE + worker_id
    err_slot = engine._err_base + worker_id
    # The generation word starts at 0 when the arena is allocated and only
    # ever increments. Latching the *known* initial value (rather than
    # reading the live word) keeps a command dispatched while this worker
    # was still initialising from being mistaken for already-seen.
    last_generation = 0
    try:
        while True:
            generation = int(ctrl[_GEN_SLOT])
            if generation == last_generation:
                if os.getppid() != engine._master_pid:
                    break  # master died; nothing will ever command us again
                time.sleep(_POLL_SECONDS)
                continue
            last_generation = generation
            cmd = int(ctrl[0])
            if cmd == _CMD_STOP:
                ctrl[ack_slot] = generation
                break
            try:
                with default_dtype(engine.dtype):
                    if cmd == _CMD_TRAIN:
                        _worker_train(
                            engine, rng_modules, buffers, order_cache,
                            shard_lo, shard_hi, compiled,
                            epoch=int(ctrl[1]), batch_index=int(ctrl[2]), retry=int(ctrl[3]),
                        )
                    elif cmd == _CMD_EVAL:
                        _worker_eval(
                            engine, worker_id, buffers,
                            split=int(ctrl[1]), batch_size=int(ctrl[2]),
                        )
            except BaseException:
                ctrl[err_slot] = 1
                traceback.print_exc()
            ctrl[ack_slot] = generation  # results/err visible before the ack
    finally:
        engine._arena.close()  # unmap only; the master owns the unlink


def _worker_train(
    engine: DataParallelEngine,
    rng_modules: list,
    buffers: CollateBuffers,
    order_cache: dict,
    shard_lo: int,
    shard_hi: int,
    compiled,
    *,
    epoch: int,
    batch_index: int,
    retry: int,
) -> None:
    """Compute this worker's shard range of one batch into the shm rows."""
    from ..objectives import StepContext

    loader = engine.loader
    order = order_cache.get(epoch)
    if order is None:
        order_cache.clear()  # at most one epoch's permutation held at a time
        order = loader.permutation(epoch)
        order_cache[epoch] = order
    start = batch_index * loader.batch_size
    # Index-based access: for packed storage this reads CSR arrays shared
    # with the master (memmap/COW pages) — no example objects are walked.
    idx = order[start : start + loader.batch_size]
    total_rows = len(idx)
    bounds = shard_bounds(total_rows, engine.grad_shards)
    dims = loader.subset_dims(idx)
    model = engine.model
    model.train()
    layout = engine._layout
    names = engine._component_names
    for s in range(shard_lo, shard_hi):
        lo, hi = bounds[s]
        if lo == hi:
            engine._grads[s].fill(0)
            engine._losses[s] = 0.0
            engine._components[s].fill(0)
            continue
        # Collate only this shard's rows, padded to the full batch's
        # dimensions — bit-identical to slicing the whole collated batch.
        shard = loader.collate_indices(idx[lo:hi], pad_to=dims, buffers=buffers)
        for p in layout.parameters:
            p.zero_grad()
        ctx = StepContext(
            seed=engine.seed, epoch=epoch, batch_index=batch_index, shard=s, retry=retry
        )
        generator = shard_generator(engine.seed, epoch, batch_index, s, retry)
        with shard_rng(rng_modules, generator):
            if compiled is not None:
                engine._losses[s] = compiled.step(shard, total=total_rows, ctx=ctx)
                comp = compiled.last_components
                for j, name in enumerate(names):
                    engine._components[s, j] = comp.get(name, 0.0)
            else:
                engine.objective.begin_step(ctx)
                parts = engine.objective.compute(model, shard, total=total_rows)
                engine._losses[s] = float(parts.loss.item())
                parts.loss.backward()
                values = parts.component_values()
                for j, name in enumerate(names):
                    engine._components[s, j] = values.get(name, 0.0)
        layout.write_grads(engine._grads[s])


def _worker_eval(
    engine: DataParallelEngine,
    worker_id: int,
    buffers: CollateBuffers,
    *,
    split: int,
    batch_size: int,
) -> None:
    """Score this worker's round-robin share of a split's batches."""
    examples = engine._eval_splits[split][1]
    packed = getattr(examples, "__packed_split__", False)
    max_ops = engine.loader.max_ops_per_item
    model = engine.model
    model.eval()
    with no_grad():
        for batch_no, start in enumerate(range(0, len(examples), batch_size)):
            if batch_no % engine.workers != worker_id:
                continue
            end = min(start + batch_size, len(examples))
            if packed:
                batch = examples.collate(
                    np.arange(start, end), max_ops_per_item=max_ops, buffers=buffers
                )
            else:
                batch = collate(
                    examples[start:end], max_ops_per_item=max_ops, buffers=buffers
                )
            logits = model(batch)
            engine._scores[start:end] = logits.data
