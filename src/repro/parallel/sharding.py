"""The canonical shard grid: the determinism contract of data-parallel training.

Floating-point addition is not associative, so the gradient of a batch
sharded across N workers can never be bit-identical to the whole-batch
gradient *and* to an M-worker run at the same time — the summation tree
would have to change with N. This module pins the tree instead of the
worker count:

* every batch is split into ``grad_shards`` (G) contiguous row shards by
  :func:`shard_bounds` — a pure function of ``(batch_rows, G)``, never of
  the worker count;
* each shard's forward/backward runs independently, with its dropout
  stream reseeded by :func:`shard_generator` from
  ``(seed, epoch, batch, shard, retry)`` — pure, so any process (or a
  resumed run) reproduces it;
* the total gradient is the strictly left-to-right sum of the per-shard
  gradients in shard order (:func:`reduce_shards`).

Under that contract the result depends only on ``(seed, G)``: one process
computing shards ``0..G-1`` sequentially and N workers computing disjoint
shard ranges produce bit-identical parameters, which is what
``tests/parallel/test_parity.py`` asserts and ``docs/performance.md``
documents. ``G = 1`` degenerates to exactly the classic single-process
whole-batch step.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from ..data.dataset import SessionBatch

__all__ = [
    "shard_bounds",
    "slice_batch",
    "shard_generator",
    "collect_rng_modules",
    "shard_rng",
    "ParamLayout",
    "reduce_shards",
]

# Domain-separation tag mixed into every per-shard seed so the shard
# streams can never collide with the model-init streams (which are seeded
# from the bare integer seed).
_SHARD_STREAM_TAG = 0x5AD5


def shard_bounds(batch_rows: int, grad_shards: int) -> list[tuple[int, int]]:
    """Row ranges ``[(lo, hi), ...]`` of the G contiguous shards of a batch.

    Pure in ``(batch_rows, grad_shards)``; the first ``batch_rows % G``
    shards get the extra row. When the batch has fewer rows than shards,
    trailing shards are empty ``(hi, hi)`` ranges — they contribute a zero
    gradient row so the reduction order stays fixed.
    """
    if grad_shards < 1:
        raise ValueError("grad_shards must be >= 1")
    if batch_rows < 0:
        raise ValueError("batch_rows must be >= 0")
    base, extra = divmod(batch_rows, grad_shards)
    bounds = []
    lo = 0
    for s in range(grad_shards):
        hi = lo + base + (1 if s < extra else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def slice_batch(batch: SessionBatch, lo: int, hi: int) -> SessionBatch:
    """Row-slice a padded batch into one shard (views, no copies).

    Padding widths are inherited from the *parent* batch: every shard of a
    batch sees the same macro/micro lengths, so the per-shard arithmetic
    is independent of how many shards the grid has.
    """
    return SessionBatch(
        items=batch.items[lo:hi],
        item_mask=batch.item_mask[lo:hi],
        ops=batch.ops[lo:hi],
        op_mask=batch.op_mask[lo:hi],
        micro_items=batch.micro_items[lo:hi],
        micro_ops=batch.micro_ops[lo:hi],
        micro_mask=batch.micro_mask[lo:hi],
        last_op=batch.last_op[lo:hi],
        targets=batch.targets[lo:hi],
    )


def shard_generator(
    seed: int, epoch: int, batch_index: int, shard: int, retry: int = 0
) -> np.random.Generator:
    """The dropout stream of one shard of one batch — pure in its arguments.

    Watchdog retries pass ``retry`` so a rolled-back batch redraws fresh
    masks (matching the classic path, where a retry consumes further along
    the model stream), while resumed runs replay identical masks.
    """
    return np.random.default_rng(
        (_SHARD_STREAM_TAG, int(seed) & 0xFFFFFFFF, epoch, batch_index, shard, retry)
    )


def collect_rng_modules(model) -> list:
    """Modules holding a forward-time RNG stream (Dropout and friends)."""
    return [
        module
        for _, module in model.named_modules()
        if isinstance(getattr(module, "rng", None), np.random.Generator)
    ]


@contextmanager
def shard_rng(rng_modules: Sequence, generator: np.random.Generator) -> Iterator[None]:
    """Temporarily point every RNG-bearing module at one shard generator.

    All modules share the single ``generator`` (mirroring how builders hand
    one stream to every layer), and the originals are restored afterwards
    so checkpointed model-RNG state stays meaningful.
    """
    originals = [(module, module.rng) for module in rng_modules]
    for module in rng_modules:
        module.rng = generator
    try:
        yield
    finally:
        for module, original in originals:
            module.rng = original


class ParamLayout:
    """Flat offsets of a model's parameters inside one contiguous buffer.

    The layout (parameter iteration order, shapes, dtype) is identical in
    the master and in every forked worker because the model object itself
    is identical, so a flat index means the same scalar everywhere.
    """

    def __init__(self, parameters: Sequence) -> None:
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("model has no parameters")
        dtypes = {p.data.dtype for p in self.parameters}
        if len(dtypes) != 1:
            raise ValueError(
                f"data-parallel training needs a uniform parameter dtype, got {sorted(map(str, dtypes))}"
            )
        self.dtype = self.parameters[0].data.dtype
        self.shapes = [p.data.shape for p in self.parameters]
        self.sizes = [int(p.data.size) for p in self.parameters]
        self.offsets = list(np.cumsum([0] + self.sizes[:-1]))
        self.total = int(sum(self.sizes))

    # -- parameters ----------------------------------------------------
    def write_params(self, flat: np.ndarray) -> None:
        """Copy current parameter values into ``flat`` (master → shm)."""
        for p, off, size in zip(self.parameters, self.offsets, self.sizes):
            flat[off : off + size] = p.data.reshape(-1)

    def bind_params(self, flat: np.ndarray) -> None:
        """Rebind every parameter's ``data`` to a view into ``flat``.

        Used by forked workers: after this, a master-side write into the
        shared block is immediately visible to the worker's forward pass.
        """
        for p, off, size, shape in zip(self.parameters, self.offsets, self.sizes, self.shapes):
            p.data = flat[off : off + size].reshape(shape)

    # -- gradients -----------------------------------------------------
    def write_grads(self, row: np.ndarray) -> None:
        """Flatten current ``.grad`` arrays into one shard row (zeros for
        parameters the shard's graph never touched)."""
        for p, off, size in zip(self.parameters, self.offsets, self.sizes):
            seg = row[off : off + size]
            if p.grad is None:
                seg.fill(0)
            else:
                seg[:] = p.grad.reshape(-1)

    def assign_grads(self, flat: np.ndarray) -> None:
        """Point every parameter's ``.grad`` at its slice of ``flat``."""
        for p, off, size, shape in zip(self.parameters, self.offsets, self.sizes, self.shapes):
            p.grad = flat[off : off + size].reshape(shape)
            p._grad_owned = True


def reduce_shards(rows: np.ndarray, out: np.ndarray) -> np.ndarray:
    """Strictly ordered reduction: ``out = ((row_0 + row_1) + ...) + row_G-1``.

    This fixed left-to-right tree *is* the determinism contract — it never
    changes with the worker count, only with the shard count.
    """
    np.copyto(out, rows[0])
    for s in range(1, rows.shape[0]):
        out += rows[s]
    return out
