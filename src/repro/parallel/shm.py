"""Shared-memory block lifecycle for the data-parallel engine.

``multiprocessing.shared_memory`` segments outlive the process that forgot
to unlink them — on Linux they are files under ``/dev/shm`` that survive
until reboot. Everything here exists to make that impossible to get wrong:

* every segment this package creates carries the :data:`SEGMENT_PREFIX`
  (plus the creating pid), so leaks are *observable* —
  :func:`orphaned_segments` scans ``/dev/shm`` and the cleanup tests in
  ``tests/parallel/`` assert it returns nothing after normal exits,
  :class:`~repro.reliability.SimulatedCrash`, and Ctrl-C;
* :class:`SharedBlock` pairs one segment with one ndarray view and knows
  how to release it from either side of a fork (owner unlinks, forked
  workers only close);
* :class:`SharedArena` owns a set of blocks and tears all of them down
  from one ``close()``, so engine shutdown paths have a single call to
  make in their ``finally``.

Workers created via ``fork`` inherit the mapped segments directly — no
name-based re-attachment, no pickling, and no per-worker registration
with the resource tracker (only the creating process unlinks).
"""

from __future__ import annotations

import os
import pathlib
from multiprocessing import shared_memory

import numpy as np

__all__ = ["SEGMENT_PREFIX", "SharedBlock", "SharedArena", "orphaned_segments"]

# /dev/shm file names of every segment this package allocates start with
# this; the pid of the creating process is appended so concurrent test
# runs on one machine cannot collide (or blame each other for leaks).
SEGMENT_PREFIX = "repro-par"

_SHM_DIR = pathlib.Path("/dev/shm")

_counter = 0


def _next_name(tag: str) -> str:
    global _counter
    _counter += 1
    return f"{SEGMENT_PREFIX}-{os.getpid()}-{_counter}-{tag}"


def orphaned_segments(pid: int | None = None) -> list[str]:
    """Names of live ``/dev/shm`` segments created by this package.

    With ``pid`` the scan is restricted to segments created by that
    process. Returns an empty list on platforms without ``/dev/shm``
    (the engine itself is Linux/fork-only anyway).
    """
    if not _SHM_DIR.is_dir():
        return []
    prefix = SEGMENT_PREFIX if pid is None else f"{SEGMENT_PREFIX}-{pid}-"
    return sorted(p.name for p in _SHM_DIR.iterdir() if p.name.startswith(prefix))


class SharedBlock:
    """One shared-memory segment exposed as a NumPy array.

    Created by the engine (master) process before forking; workers inherit
    the object and its mapping. Only the creator unlinks the segment —
    :meth:`close` does the right thing on both sides automatically.
    """

    def __init__(self, tag: str, shape: tuple[int, ...], dtype) -> None:
        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        self._shm = shared_memory.SharedMemory(
            name=_next_name(tag), create=True, size=nbytes
        )
        self._owner_pid = os.getpid()
        self.name = self._shm.name
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self.array.fill(0)
        self._released = False

    @property
    def is_owner(self) -> bool:
        """True in the process that created (and must unlink) the segment."""
        return os.getpid() == self._owner_pid

    def close(self) -> None:
        """Release the mapping; the owning process also unlinks the file.

        Idempotent, and safe to call from ``finally`` blocks on both sides
        of the fork: forked workers only unmap, the creator removes the
        backing file so nothing is left under ``/dev/shm``.
        """
        if self._released:
            return
        self._released = True
        # Drop the ndarray view first: SharedMemory.close() refuses to
        # unmap while exported buffers are alive.
        self.array = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            return
        if self.is_owner:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


class SharedArena:
    """A set of :class:`SharedBlock` torn down together.

    The engine allocates every buffer through one arena so its shutdown
    path — normal completion, :class:`~repro.reliability.SimulatedCrash`,
    ``KeyboardInterrupt``, or a worker death — is a single
    :meth:`close` call.
    """

    def __init__(self) -> None:
        self._blocks: list[SharedBlock] = []

    def allocate(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """Allocate a zeroed shared array and track its segment."""
        block = SharedBlock(tag, shape, dtype)
        self._blocks.append(block)
        return block.array

    def close(self) -> None:
        """Release every block (unlinking in the creator process)."""
        for block in self._blocks:
            block.close()
        self._blocks.clear()

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
