"""Deterministic multi-core parallelism for training and benchmarks.

Two independent fan-out paths share this package:

* **Data-parallel training** (:mod:`~repro.parallel.engine`): N forked
  workers compute disjoint shards of every batch over shared-memory
  buffers, with a summation tree pinned by the *shard grid* — not the
  worker count — so any worker count produces bit-identical parameters
  under the same ``(seed, grad_shards)`` (:mod:`~repro.parallel.sharding`
  states the contract; ``docs/performance.md`` § Parallelism explains it).
* **Benchmark cell fan-out** (:mod:`~repro.parallel.pool`): independent
  ``model × dataset`` cells of the paper tables run through a process
  pool and merge deterministically.

Both are opt-in (``--workers N`` on the CLI and benchmark drivers) and
degrade to the classic serial code path at ``workers=1``.
"""

from .engine import DataParallelEngine, SerialShardExecutor, WorkerError
from .pool import run_experiment_cells
from .sharding import (
    ParamLayout,
    collect_rng_modules,
    reduce_shards,
    shard_bounds,
    shard_generator,
    shard_rng,
    slice_batch,
)
from .shm import SEGMENT_PREFIX, SharedArena, SharedBlock, orphaned_segments

__all__ = [
    "DataParallelEngine",
    "SerialShardExecutor",
    "WorkerError",
    "run_experiment_cells",
    "ParamLayout",
    "collect_rng_modules",
    "reduce_shards",
    "shard_bounds",
    "shard_generator",
    "shard_rng",
    "slice_batch",
    "SEGMENT_PREFIX",
    "SharedArena",
    "SharedBlock",
    "orphaned_segments",
]
