"""repro.retrieval — ANN candidate generation for million-item serving.

Exact serving scores every catalogue item per request; the per-request
``[B, num_items]`` matmul is what breaks at 10^6–10^7 items. This package
factorizes each model's scoring head into ``queries @ item_matrix.T``
(:mod:`~repro.retrieval.factorize`), builds an IVF(-PQ) index over the
static item matrix (:mod:`~repro.retrieval.index`,
:mod:`~repro.retrieval.kmeans`, :mod:`~repro.retrieval.pq`), and serves
through a two-stage path — probe a few cells, exact re-rank the
candidates — that preserves the exact path's ranking contract
(:mod:`~repro.retrieval.pipeline`) and is measured against it
(:mod:`~repro.retrieval.evaluate`).

Indexes are rebuilt deterministically from the model artifact: the build
recipe (:class:`IndexSpec`) travels in artifact metadata via
:func:`repro.artifacts.store_retrieval_spec`, never the index arrays.
See ``docs/retrieval.md``.
"""

from .evaluate import measure_recall, recall_frontier, sample_queries
from .factorize import ScoringFactorization, factorize
from .index import (
    AUTO_ANN_THRESHOLD,
    INDEX_KINDS,
    IndexSpec,
    IVFIndex,
    build_index,
    default_spec,
    resolve_retrieval_kind,
)
from .kmeans import KMeansResult, lloyd_kmeans, spherical_kmeans
from .pipeline import RetrievalPipeline, RetrievalStats
from .pq import PQCodebook

__all__ = [
    "AUTO_ANN_THRESHOLD",
    "INDEX_KINDS",
    "IVFIndex",
    "IndexSpec",
    "KMeansResult",
    "PQCodebook",
    "RetrievalPipeline",
    "RetrievalStats",
    "ScoringFactorization",
    "build_index",
    "default_spec",
    "factorize",
    "lloyd_kmeans",
    "measure_recall",
    "recall_frontier",
    "resolve_retrieval_kind",
    "sample_queries",
    "spherical_kmeans",
]
