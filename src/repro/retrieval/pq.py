"""Product quantization of cell residuals (the IVF-PQ regime).

At 10^7 items even the *candidate* scoring of an IVF probe is dominated by
gathering full-width embedding rows. PQ replaces that with table lookups:
each residual ``r = v - cell_mean(cell(v))`` is chopped into ``m``
sub-vectors, each sub-vector is vector-quantized against its own 2^bits
codebook, and a query precomputes one lookup table per subspace
(``lut[j] = q_sub . codebook[j]``), so the approximate score of an item is

    score(q, v)  ~=  q . cell_mean  +  sum_m  lut_m[code_m(v)]

— an asymmetric-distance computation (ADC) in inner-product form. The
approximation only *shortlists*; the pipeline always re-ranks its
shortlist with exact dot products (``docs/retrieval.md``).

Training is deterministic: sub-codebooks come from seeded
:func:`~repro.retrieval.kmeans.lloyd_kmeans` with per-subspace seed
offsets, so an encoded catalogue is a pure function of
``(vectors, m, bits, seed)``.
"""

from __future__ import annotations

import numpy as np

from .kmeans import assign_l2, lloyd_kmeans

__all__ = ["PQCodebook"]


class PQCodebook:
    """Per-subspace codebooks + the codes of every catalogue item.

    Parameters
    ----------
    codebooks:
        ``[m, 2^bits, d // m]`` centroid array.
    codes:
        ``[n_items, m]`` uint8/uint16 code matrix.
    """

    def __init__(self, codebooks: np.ndarray, codes: np.ndarray):
        self.codebooks = codebooks
        self.codes = codes
        self.m = codebooks.shape[0]
        self.sub_dim = codebooks.shape[2]

    @classmethod
    def train(
        cls,
        residuals: np.ndarray,
        m: int,
        bits: int = 8,
        *,
        seed: int = 0,
        iters: int = 15,
        train_size: int = 65536,
    ) -> "PQCodebook":
        """Fit ``m`` sub-codebooks on (a seeded sample of) the residuals."""
        n, d = residuals.shape
        if d % m != 0:
            raise ValueError(f"pq_m={m} must divide the embedding dim {d}")
        k = 1 << bits
        if k > n:
            raise ValueError(f"2^bits={k} centroids need at least that many items, got {n}")
        rng = np.random.default_rng(seed)
        if n > train_size:
            sample = residuals[np.sort(rng.choice(n, size=train_size, replace=False))]
        else:
            sample = residuals
        sub = d // m
        codebooks = np.empty((m, k, sub), dtype=np.float64)
        codes = np.empty((n, m), dtype=np.uint16 if bits > 8 else np.uint8)
        for j in range(m):
            cols = slice(j * sub, (j + 1) * sub)
            result = lloyd_kmeans(sample[:, cols], k, seed=seed + 7919 * (j + 1), iters=iters)
            codebooks[j] = result.centroids
            codes[:, j] = assign_l2(residuals[:, cols], result.centroids)
        return cls(codebooks, codes)

    # ------------------------------------------------------------------
    def lookup_tables(self, query: np.ndarray) -> np.ndarray:
        """``[m, 2^bits]`` inner-product tables for one query vector."""
        q = query.reshape(self.m, self.sub_dim)
        # einsum: table[j, c] = q[j] . codebooks[j, c]
        return np.einsum("js,jcs->jc", q, self.codebooks)

    def approx_scores(self, tables: np.ndarray, item_rows: np.ndarray) -> np.ndarray:
        """Sum each item's per-subspace table entries (the ADC residual term)."""
        codes = self.codes[item_rows]  # [c, m]
        return tables[np.arange(self.m)[None, :], codes].sum(axis=1)

    def reconstruction_bytes(self) -> int:
        """Compressed catalogue size (codes only, the serving-relevant part)."""
        return int(self.codes.nbytes)
