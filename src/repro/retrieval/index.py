"""IVF(-PQ) candidate-generation index over the item embedding table.

The catalogue's scoring-space item vectors (see
:mod:`repro.retrieval.factorize`) are partitioned into ``cells`` coarse
clusters by seeded spherical k-means. A query ranks the cell centroids,
scans the inverted lists of its best ``nprobe`` cells, and hands the
resulting candidate set to an exact re-rank
(:mod:`repro.retrieval.pipeline`). With ``kind="ivfpq"`` a product-
quantization codebook over cell residuals shortlists inside the probed
cells first, so the exact re-rank touches only ``rerank`` rows.

Indexes are **rebuilt, not stored**: :class:`IndexSpec` (a few integers +
a seed) is recorded in the model artifact's metadata via
``repro.artifacts.store_retrieval_spec``, and :func:`build_index` is a
pure function of ``(item_vectors, spec)`` — same artifact, same spec,
bit-identical index in any process (``tests/retrieval/test_index.py``).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, replace

import numpy as np

from ..eval.topk import top_k_indices
from .kmeans import spherical_kmeans
from .pq import PQCodebook

__all__ = [
    "AUTO_ANN_THRESHOLD",
    "INDEX_KINDS",
    "IndexSpec",
    "IVFIndex",
    "build_index",
    "default_spec",
    "resolve_retrieval_kind",
]

# Catalogue size beyond which ``repro serve --retrieval auto`` switches from
# exact full scoring to ANN candidate generation. Full scoring is benched
# comfortably fast up to ~10^5 items (bench_supp3_topk.py); past that the
# per-request matmul dominates the latency budget.
AUTO_ANN_THRESHOLD = 100_000

INDEX_KINDS = ("ivf", "ivfpq")


@dataclass(frozen=True)
class IndexSpec:
    """Everything needed to rebuild an index deterministically.

    ``cells=0`` / ``nprobe=0`` mean "auto": resolved against the catalogue
    size by :meth:`resolve` (and the resolved values are what artifacts
    record, so a bundle's metadata always names the exact build).
    """

    kind: str = "ivf"            # "ivf" | "ivfpq"
    cells: int = 0               # coarse clusters; 0 = ~sqrt(n)
    nprobe: int = 0              # cells scanned per query; 0 = max(1, cells // 8)
    seed: int = 0
    train_size: int = 131072     # k-means training sample bound
    iters: int = 20              # coarse k-means iterations
    pq_m: int = 0                # PQ subspaces; 0 = auto (dim // 4), ivfpq only
    pq_bits: int = 8             # 2^bits codes per subspace
    rerank: int = 512            # exact re-rank shortlist size, ivfpq only

    def __post_init__(self):
        if self.kind not in INDEX_KINDS:
            raise ValueError(f"kind must be one of {INDEX_KINDS}, got {self.kind!r}")

    def resolve(self, n_items: int, dim: int) -> "IndexSpec":
        """Fill the auto (0) fields for a concrete catalogue."""
        cells = self.cells or max(1, min(n_items, int(round(float(n_items) ** 0.5))))
        cells = min(cells, n_items)
        nprobe = min(self.nprobe or max(1, cells // 8), cells)
        pq_m = self.pq_m
        pq_bits = self.pq_bits
        if self.kind == "ivfpq":
            if pq_m == 0:
                pq_m = next((m for m in (dim // 4, dim // 2, dim) if m and dim % m == 0), 1)
            # A sub-codebook cannot have more centroids than training points.
            pq_bits = min(pq_bits, max(1, n_items.bit_length() - 1))
        return replace(self, cells=cells, nprobe=nprobe, pq_m=pq_m, pq_bits=pq_bits)

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "IndexSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})


def default_spec(n_items: int, dim: int, kind: str = "ivf") -> IndexSpec:
    """The auto spec ``repro serve`` builds when the artifact records none."""
    return IndexSpec(kind=kind).resolve(n_items, dim)


def resolve_retrieval_kind(requested: str, n_items: int) -> str:
    """Map a ``--retrieval`` flag onto a concrete mode.

    ``auto`` picks exact scoring below :data:`AUTO_ANN_THRESHOLD` items and
    IVF at or above it; explicit modes pass through (and are validated).
    """
    if requested == "auto":
        return "ivf" if n_items >= AUTO_ANN_THRESHOLD else "exact"
    if requested not in ("exact",) + INDEX_KINDS:
        raise ValueError(
            f"unknown retrieval mode {requested!r}; expected exact, auto, "
            + ", or ".join(INDEX_KINDS)
        )
    return requested


class IVFIndex:
    """Inverted-file index: unit centroids + per-cell item lists.

    ``vectors`` is the scoring-space item matrix (row ``i`` scores item
    class ``i``, i.e. item id ``i + 1``); the index keeps a reference for
    the exact re-rank stage — candidate generation never copies it.
    """

    def __init__(
        self,
        spec: IndexSpec,
        vectors: np.ndarray,
        centroids: np.ndarray,
        lists: list[np.ndarray],
        cell_means: np.ndarray,
        pq: PQCodebook | None = None,
    ):
        self.spec = spec
        self.vectors = vectors
        self.centroids = centroids
        self.lists = lists
        self.cell_means = cell_means
        self.pq = pq

    # ------------------------------------------------------------------
    @property
    def n_items(self) -> int:
        return self.vectors.shape[0]

    @property
    def n_cells(self) -> int:
        return self.centroids.shape[0]

    def list_sizes(self) -> np.ndarray:
        return np.array([len(l) for l in self.lists])

    def memory_bytes(self) -> int:
        """Index-only footprint (centroids + lists + codes), vectors excluded."""
        total = self.centroids.nbytes + self.cell_means.nbytes
        total += sum(l.nbytes for l in self.lists)
        if self.pq is not None:
            total += self.pq.codebooks.nbytes + self.pq.codes.nbytes
        return int(total)

    # ------------------------------------------------------------------
    def probe(self, queries: np.ndarray, nprobe: int | None = None) -> np.ndarray:
        """``[B, nprobe]`` best cells per query (by centroid dot product)."""
        nprobe = min(nprobe or self.spec.nprobe, self.n_cells)
        return top_k_indices(queries @ self.centroids.T, nprobe)

    def candidates(
        self, query: np.ndarray, nprobe: int | None = None, min_candidates: int = 0
    ) -> tuple[np.ndarray, int]:
        """Ascending candidate classes for one query, plus cells probed.

        Probing widens deterministically (next-best cells) until at least
        ``min_candidates`` candidates are collected, so a request for
        ``k`` items never starves on unluckily small cells.
        """
        nprobe = min(nprobe or self.spec.nprobe, self.n_cells)
        ranked = top_k_indices(query @ self.centroids.T, self.n_cells)
        probed = nprobe
        while True:
            cand = [self.lists[c] for c in ranked[:probed] if len(self.lists[c])]
            total = sum(len(c) for c in cand)
            if total >= min_candidates or probed >= self.n_cells:
                break
            probed += 1
        merged = np.concatenate(cand) if cand else np.empty(0, dtype=np.int64)
        merged.sort()  # ascending classes keep the re-rank's tie order exact
        return merged, probed

    def shortlist(
        self,
        query: np.ndarray,
        candidates: np.ndarray,
        rerank: int | None = None,
    ) -> np.ndarray:
        """PQ ADC shortlist of ``candidates`` (ascending classes), or all of
        them when the index carries no codebook / they already fit."""
        rerank = rerank or self.spec.rerank
        if self.pq is None or len(candidates) <= rerank:
            return candidates
        # One [cells, d] matvec then an integer gather — materializing
        # cell_means[cells] would cost as much as gathering the real vectors.
        means_dot = self.cell_means @ query
        approx = means_dot[self._cell_of[candidates]] + self.pq.approx_scores(
            self.pq.lookup_tables(query), candidates
        )
        keep = candidates[top_k_indices(approx, rerank)]
        keep.sort()
        return keep

    # ------------------------------------------------------------------
    @property
    def _cell_of(self) -> np.ndarray:
        cached = getattr(self, "_cell_of_cache", None)
        if cached is None:
            cached = np.empty(self.n_items, dtype=np.int64)
            for cell, members in enumerate(self.lists):
                cached[members] = cell
            self._cell_of_cache = cached
        return cached

    def signature(self) -> dict:
        """Cheap content fingerprint used by rebuild-determinism tests."""
        return {
            "centroid_sum": float(self.centroids.sum()),
            "list_sizes": self.list_sizes().tolist(),
            "codes_sum": int(self.pq.codes.sum()) if self.pq is not None else 0,
        }


def build_index(item_vectors: np.ndarray, spec: IndexSpec) -> IVFIndex:
    """Deterministically build an :class:`IVFIndex` from scoring-space vectors.

    A pure function: the same ``(item_vectors, spec)`` produce bit-identical
    centroids, inverted lists, and PQ codes in any process.
    """
    vectors = np.ascontiguousarray(np.asarray(item_vectors, dtype=np.float64))
    n, dim = vectors.shape
    spec = spec.resolve(n, dim)
    rng = np.random.default_rng(spec.seed)
    if n > spec.train_size:
        train = vectors[np.sort(rng.choice(n, size=spec.train_size, replace=False))]
    else:
        train = vectors
    coarse = spherical_kmeans(train, spec.cells, seed=spec.seed, iters=spec.iters)
    from .kmeans import assign_spherical, _normalize_rows  # noqa: PLC0415

    assignments = assign_spherical(_normalize_rows(vectors), coarse.centroids)
    lists = [
        np.flatnonzero(assignments == cell).astype(np.int64) for cell in range(spec.cells)
    ]
    cell_means = np.zeros((spec.cells, dim), dtype=np.float64)
    for cell, members in enumerate(lists):
        if len(members):
            cell_means[cell] = vectors[members].mean(axis=0)
    pq = None
    if spec.kind == "ivfpq":
        residuals = vectors - cell_means[assignments]
        pq = PQCodebook.train(
            residuals,
            spec.pq_m,
            spec.pq_bits,
            seed=spec.seed,
            train_size=spec.train_size,
        )
    return IVFIndex(spec, vectors, coarse.centroids, lists, cell_means, pq)
