"""Recall measurement for ANN indexes.

``repro index build`` and the retrieval benchmark both need the same
question answered: of the top-``k`` items exact full scoring would
return, what fraction does the ANN path recover? :func:`measure_recall`
answers it for a batch of query vectors at one ``nprobe``;
:func:`recall_frontier` sweeps ``nprobe`` to trace the recall-latency
frontier reported in ``benchmarks/results/retrieval.json``.

Query sets come from :func:`sample_queries`: seeded perturbations of
catalogue vectors, which mimics serving (a session representation lands
*near* the items it co-occurs with, not on a random direction — uniform
random queries would understate recall for any clustered catalogue).
"""

from __future__ import annotations

import time

import numpy as np

from ..eval.topk import top_k_indices, topk_recall
from .index import IVFIndex

__all__ = ["measure_recall", "recall_frontier", "sample_queries"]


def sample_queries(
    vectors: np.ndarray, n_queries: int, *, seed: int = 0, noise: float = 0.25
) -> np.ndarray:
    """Seeded serving-like query vectors: perturbed catalogue rows.

    Each query is a catalogue vector plus Gaussian noise scaled to
    ``noise`` times the catalogue's mean row norm.
    """
    rng = np.random.default_rng(seed)
    n = vectors.shape[0]
    rows = rng.choice(n, size=min(n_queries, n), replace=n_queries > n)
    scale = noise * float(np.sqrt((vectors * vectors).sum(axis=1)).mean())
    queries = vectors[rows] + scale * rng.standard_normal((len(rows), vectors.shape[1]))
    return np.ascontiguousarray(queries, dtype=np.float64)


def measure_recall(
    index: IVFIndex,
    queries: np.ndarray,
    ks: tuple[int, ...] = (10, 20),
    nprobe: int | None = None,
) -> dict:
    """Recall@k of ANN+re-rank against exact full scoring, plus timings.

    Returns ``{"recall": {k: float}, "ann_ms": [...], "exact_ms": [...],
    "candidates": mean_candidate_count, "nprobe": resolved}`` where the
    ``*_ms`` lists hold per-query wall-clock milliseconds (callers take
    their own percentiles).
    """
    nprobe = min(nprobe or index.spec.nprobe, index.n_cells)
    kmax = max(ks)
    hits = {k: 0 for k in ks}
    ann_ms: list[float] = []
    exact_ms: list[float] = []
    total_candidates = 0
    for query in queries:
        started = time.perf_counter()
        exact_top = top_k_indices(index.vectors @ query, kmax)
        exact_ms.append((time.perf_counter() - started) * 1000.0)

        started = time.perf_counter()
        cand, _ = index.candidates(query, nprobe, min_candidates=kmax)
        short = index.shortlist(query, cand)
        ann_top = short[top_k_indices(index.vectors[short] @ query, kmax)]
        ann_ms.append((time.perf_counter() - started) * 1000.0)

        total_candidates += len(cand)
        for k in ks:
            hits[k] += topk_recall(exact_top, ann_top, k)
    n = max(1, len(queries))
    return {
        "recall": {k: hits[k] / n for k in ks},
        "ann_ms": ann_ms,
        "exact_ms": exact_ms,
        "candidates": total_candidates / n,
        "nprobe": nprobe,
    }


def recall_frontier(
    index: IVFIndex,
    queries: np.ndarray,
    nprobes: tuple[int, ...],
    ks: tuple[int, ...] = (10, 20),
) -> list[dict]:
    """:func:`measure_recall` at each ``nprobe``, summarized per point."""
    points = []
    for nprobe in nprobes:
        if nprobe > index.n_cells:
            continue
        result = measure_recall(index, queries, ks=ks, nprobe=nprobe)
        ann = np.array(result["ann_ms"])
        points.append(
            {
                "nprobe": result["nprobe"],
                "recall": {str(k): result["recall"][k] for k in ks},
                "candidates": result["candidates"],
                "p50_ms": float(np.percentile(ann, 50)),
                "p95_ms": float(np.percentile(ann, 95)),
            }
        )
    return points
