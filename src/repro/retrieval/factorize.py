"""Factorize a model's scoring head into ``queries @ item_matrix.T``.

Every neural system in the repository ends its forward pass the same way:
a ``[B, d]`` session representation hits the item embedding table —
either a bare dot product (``session @ weight[1:].T``; NARM, STAMP,
SR-GNN, GC-SAN, BERT4Rec, RIB, HUP, MKM-SR) or the NISER-style cosine
head (:class:`~repro.core.fusion.ScorePredictor`; EMBSR and SGNN-HN).
Both are inner products against a *static* item matrix, which is exactly
the shape ANN retrieval needs: index the item matrix once, embed each
request into the same space, and the full ``[B, num_items]`` matmul —
the only part of serving that scales with the catalogue — becomes a
candidate search plus a small exact re-rank.

:func:`factorize` reads the seam the models expose
(``Module.encode_sessions``) and returns a :class:`ScoringFactorization`
whose ``query_matrix(batch) @ item_matrix().T`` reproduces
``model(batch)`` bit-for-bit (asserted per family in
``tests/retrieval/test_factorize.py``). Models without the seam (none in
the registry today) simply return ``None`` and serving stays exact.
"""

from __future__ import annotations

import numpy as np

from ..autograd import default_dtype, no_grad

__all__ = ["ScoringFactorization", "factorize"]


def _l2n(x: np.ndarray) -> np.ndarray:
    # Must mirror Tensor.l2_normalize exactly (eps inside the sqrt) so the
    # factorized scores match the forward pass bit-for-bit.
    return x / np.sqrt((x * x).sum(axis=-1, keepdims=True) + 1e-12)


class ScoringFactorization:
    """The ``scores == queries @ items.T`` decomposition of one model.

    Parameters
    ----------
    model:
        A fitted module exposing ``encode_sessions(batch) -> Tensor``.
    head:
        ``"dot"`` for bare inner-product decoders, ``"cosine"`` for the
        NISER-style normalized head.
    w_k:
        The cosine head's score scale (ignored for ``"dot"``).
    num_items:
        Real catalogue size — BERT4Rec's table carries an extra [MASK]
        row beyond it.
    dtype:
        Ambient dtype queries are computed under (the model's training
        dtype; a float32 model must not silently upcast at serve time).
    """

    def __init__(self, model, head: str, w_k: float, num_items: int, dtype: str = "float64"):
        self.model = model
        self.head = head
        self.w_k = w_k
        self.num_items = num_items
        self.dtype = dtype

    # ------------------------------------------------------------------
    def item_matrix(self) -> np.ndarray:
        """``[num_items, d]`` scoring-space item vectors (row i = class i)."""
        table = self.model.item_embedding.weight.data[1 : self.num_items + 1]
        if self.head == "cosine":
            return _l2n(table)
        return table

    def query_matrix(self, batch) -> np.ndarray:
        """``[B, d]`` scoring-space queries for one collated batch."""
        self.model.eval()
        with default_dtype(self.dtype), no_grad():
            encoded = self.model.encode_sessions(batch).data
        if self.head == "cosine":
            return _l2n(encoded) * self.w_k
        return encoded

    def exact_scores(self, queries: np.ndarray, classes: np.ndarray) -> np.ndarray:
        """Exact scores of the given item classes for one query vector."""
        return self.item_matrix()[classes] @ queries

    def describe(self) -> dict:
        return {"head": self.head, "w_k": self.w_k, "num_items": self.num_items}


def factorize(model, num_items: int | None = None, dtype: str = "float64"):
    """Build the :class:`ScoringFactorization` for ``model``, or ``None``.

    The head is read off the module itself: a ``predictor`` attribute that
    is a :class:`~repro.core.fusion.ScorePredictor` marks the cosine head;
    anything else with the ``encode_sessions`` seam is a bare dot product.
    """
    if not hasattr(model, "encode_sessions"):
        return None
    if num_items is None:
        num_items = getattr(model, "num_items", None)
        if num_items is None:
            num_items = model.config.num_items
    from ..core.fusion import ScorePredictor

    predictor = getattr(model, "predictor", None)
    if isinstance(predictor, ScorePredictor):
        return ScoringFactorization(model, "cosine", predictor.w_k, num_items, dtype)
    return ScoringFactorization(model, "dot", 1.0, num_items, dtype)
