"""Two-stage scoring: ANN candidate generation + exact re-rank.

:class:`RetrievalPipeline` is the serving-side face of the subsystem. It
owns a :class:`~repro.retrieval.factorize.ScoringFactorization` (how to
embed a request batch) and an :class:`~repro.retrieval.index.IVFIndex`
(where the catalogue lives), and exposes :meth:`top_k_classes` with the
same contract as exact serving: the ``k`` best item *classes* per row,
best first, ties in ascending class order. The contract holds because

* candidate sets are kept in ascending class order, and
* the re-rank scores candidates with the exact dot products and selects
  via :func:`repro.eval.topk.top_k_indices` (the stable-argsort kernel
  every ranked surface shares),

so with ``nprobe == n_cells`` the pipeline's output is *identical* to
full-catalogue scoring — including tie order — and with fewer probes the
only possible deviation is a missing candidate, which the measured
recall@k curve quantifies (``repro index build``, ``docs/retrieval.md``).

Each call records a :class:`RetrievalStats`; the gateway registers an
``observer`` to stream candidate-set sizes, probe counts, and ANN-stage
latency into ``/metrics``.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass

import numpy as np

from ..eval.topk import top_k_indices
from .factorize import factorize
from .index import IVFIndex, IndexSpec, build_index

__all__ = ["RetrievalPipeline", "RetrievalStats"]

# Distinguishes every pipeline instance ever attached in this process, so a
# score cached under one index generation can never alias a rebuilt index's
# answers for the same session fingerprint (satellite fix, docs/serving.md).
_GENERATIONS = itertools.count(1)


@dataclass
class RetrievalStats:
    """One scoring call's ANN-stage telemetry."""

    rows: int
    probes: int          # cells scanned, summed over rows
    candidates: int      # candidate rows scored, summed over rows
    reranked: int        # rows surviving the PQ shortlist, summed over rows
    ann_ms: float        # candidate generation + shortlist, milliseconds
    rerank_ms: float     # exact re-rank, milliseconds


class RetrievalPipeline:
    """ANN candidate generation in front of a fitted recommender.

    Parameters
    ----------
    factorization:
        The model's ``queries @ items.T`` decomposition.
    index:
        An :class:`IVFIndex` built over ``factorization.item_matrix()``.
    nprobe:
        Serve-time probe width; defaults to the index spec's.
    observer:
        Optional callable receiving each call's :class:`RetrievalStats`.
    """

    def __init__(
        self,
        factorization,
        index: IVFIndex,
        nprobe: int | None = None,
        observer=None,
    ):
        self.factorization = factorization
        self.index = index
        self.nprobe = min(nprobe or index.spec.nprobe, index.n_cells)
        self.observer = observer
        self.generation = next(_GENERATIONS)
        self.last_stats: RetrievalStats | None = None

    # ------------------------------------------------------------------
    @classmethod
    def for_recommender(
        cls,
        recommender,
        spec: IndexSpec | None = None,
        nprobe: int | None = None,
        observer=None,
    ) -> "RetrievalPipeline":
        """Build the whole two-stage path from a fitted recommender.

        Raises ``ValueError`` when the model does not expose the
        ``encode_sessions`` factorization seam — callers fall back to
        exact serving.
        """
        from .index import default_spec

        dtype = getattr(getattr(recommender, "train_config", None), "dtype", "float64")
        fact = factorize(recommender.model, dtype=dtype)
        if fact is None:
            raise ValueError(
                f"{getattr(recommender, 'name', type(recommender).__name__)} does not "
                "expose encode_sessions(); ANN retrieval needs the factorized head"
            )
        items = fact.item_matrix()
        spec = spec or default_spec(items.shape[0], items.shape[1])
        return cls(fact, build_index(items, spec), nprobe=nprobe, observer=observer)

    @property
    def kind(self) -> str:
        return self.index.spec.kind

    def scope(self) -> tuple:
        """Cache-key component naming this exact retrieval configuration."""
        return (self.kind, self.generation, self.nprobe)

    def describe(self) -> dict:
        spec = self.index.spec
        return {
            "kind": spec.kind,
            "cells": spec.cells,
            "nprobe": self.nprobe,
            "seed": spec.seed,
            "pq_m": spec.pq_m,
            "pq_bits": spec.pq_bits,
            "rerank": spec.rerank,
            "n_items": self.index.n_items,
            "generation": self.generation,
        }

    # ------------------------------------------------------------------
    def top_k_classes(
        self,
        batch,
        k: int,
        seen_classes: list[np.ndarray] | None = None,
        nprobe: int | None = None,
    ) -> list[np.ndarray]:
        """The ``k`` best item classes per batch row, best first.

        ``seen_classes`` rows are masked to ``-inf`` *inside* the candidate
        scores — the same masking exact serving applies — rather than
        removed, so the two paths stay comparable item for item.
        """
        queries = self.factorization.query_matrix(batch)
        return self.rank_queries(queries, k, seen_classes=seen_classes, nprobe=nprobe)

    def rank_queries(
        self,
        queries: np.ndarray,
        k: int,
        seen_classes: list[np.ndarray] | None = None,
        nprobe: int | None = None,
    ) -> list[np.ndarray]:
        """:meth:`top_k_classes` for already-embedded query vectors."""
        nprobe = min(nprobe or self.nprobe, self.index.n_cells)
        index = self.index
        results: list[np.ndarray] = []
        probes = candidates = reranked = 0
        ann_s = rerank_s = 0.0
        for row in range(queries.shape[0]):
            query = queries[row]
            # Seen items may dominate the probed cells; widen the candidate
            # floor so masking them can never starve the top-k.
            need = k + (len(seen_classes[row]) if seen_classes is not None else 0)
            started = time.perf_counter()
            cand, probed = index.candidates(query, nprobe, min_candidates=need)
            short = index.shortlist(query, cand)
            ann_s += time.perf_counter() - started

            started = time.perf_counter()
            scores = index.vectors[short] @ query
            if seen_classes is not None and len(seen_classes[row]):
                mask = np.isin(short, seen_classes[row])
                if mask.any():
                    scores = scores.copy() if scores.base is not None else scores
                    scores[mask] = -np.inf
            top = top_k_indices(scores, k)
            results.append(short[top])
            rerank_s += time.perf_counter() - started

            probes += probed
            candidates += len(cand)
            reranked += len(short)
        stats = RetrievalStats(
            rows=queries.shape[0],
            probes=probes,
            candidates=candidates,
            reranked=reranked,
            ann_ms=ann_s * 1000.0,
            rerank_ms=rerank_s * 1000.0,
        )
        self.last_stats = stats
        if self.observer is not None:
            self.observer(stats)
        return results
