"""Deterministic k-means for index construction (NumPy only).

Two flavors, both pure functions of ``(points, k, seed)``:

* :func:`spherical_kmeans` — clusters *directions*: assignments maximize
  the dot product against unit-norm centroids and centroids are
  re-normalized means. This is the coarse quantizer geometry for the
  repository's scoring heads — the NISER-style cosine head scores
  direction exactly, and the bare dot-product heads are dominated by
  direction for comparably-normed embeddings (``docs/retrieval.md``).
* :func:`lloyd_kmeans` — classic L2 Lloyd iterations, used for the
  product-quantization sub-codebooks where residuals are not unit-norm.

Determinism contract (asserted in ``tests/retrieval/test_kmeans.py``):
same inputs and seed give bit-identical centroids and assignments — no
``np.random`` global state, no data-dependent iteration counts, and
empty-cluster repair picks its replacement point by a fixed rule
(the currently worst-represented point, earliest index on ties).
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeansResult", "lloyd_kmeans", "spherical_kmeans"]

# Assignment matmuls are chunked so a 10^6-point catalogue against ~10^3
# centroids never materializes an [n, k] block bigger than ~128 MB.
_CHUNK = 16384


class KMeansResult:
    """Centroids plus the final hard assignment of every training point."""

    def __init__(self, centroids: np.ndarray, assignments: np.ndarray):
        self.centroids = centroids
        self.assignments = assignments

    @property
    def k(self) -> int:
        return self.centroids.shape[0]


def _init_centroids(points: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """Seeded choice of ``k`` distinct points as the starting centroids."""
    if k > points.shape[0]:
        raise ValueError(f"k={k} exceeds the number of points ({points.shape[0]})")
    picks = rng.choice(points.shape[0], size=k, replace=False)
    # Sorted picks make the centroid order independent of choice() internals
    # beyond the draw itself (stable across NumPy minor versions in practice,
    # and the round-trip tests pin it per environment anyway).
    return points[np.sort(picks)].astype(np.float64, copy=True)


def _repair_empty(
    centroids: np.ndarray, points: np.ndarray, assignments: np.ndarray, best: np.ndarray
) -> None:
    """Reseed each empty cluster from the worst-represented point.

    ``best`` is each point's affinity to its chosen centroid (similarity
    for spherical, negative squared distance for Lloyd) — the *lowest*
    value marks the point its centroid represents worst. Earliest index
    wins ties, keeping the repair deterministic.
    """
    counts = np.bincount(assignments, minlength=centroids.shape[0])
    for cell in np.flatnonzero(counts == 0):
        worst = int(np.argmin(best))
        centroids[cell] = points[worst]
        assignments[worst] = cell
        best[worst] = np.inf  # a reseeded point represents itself perfectly


def _normalize_rows(x: np.ndarray) -> np.ndarray:
    # Mirrors Tensor.l2_normalize: eps inside the sqrt, no clipping.
    return x / np.sqrt((x * x).sum(axis=1, keepdims=True) + 1e-12)


def assign_spherical(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Hard assignment by maximum dot product against unit centroids."""
    out = np.empty(points.shape[0], dtype=np.int64)
    for start in range(0, points.shape[0], _CHUNK):
        sims = points[start : start + _CHUNK] @ centroids.T
        out[start : start + _CHUNK] = np.argmax(sims, axis=1)
    return out


def spherical_kmeans(
    points: np.ndarray, k: int, *, seed: int = 0, iters: int = 20
) -> KMeansResult:
    """Direction-clustering k-means; centroids come back unit-norm.

    Points are normalized up front (clustering is over directions), the
    update step is normalize(mean(members)), and a fixed number of
    iterations runs regardless of convergence so the result is a pure
    function of the inputs.
    """
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    unit = _normalize_rows(points)
    rng = np.random.default_rng(seed)
    centroids = _normalize_rows(_init_centroids(unit, k, rng))
    assignments = np.zeros(unit.shape[0], dtype=np.int64)
    for _ in range(iters):
        sims = np.empty(unit.shape[0], dtype=np.float64)
        for start in range(0, unit.shape[0], _CHUNK):
            block = unit[start : start + _CHUNK] @ centroids.T
            idx = np.argmax(block, axis=1)
            assignments[start : start + _CHUNK] = idx
            sims[start : start + _CHUNK] = block[np.arange(block.shape[0]), idx]
        _repair_empty(centroids, unit, assignments, sims)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, unit)
        counts = np.bincount(assignments, minlength=k).astype(np.float64)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
        centroids = _normalize_rows(centroids)
    return KMeansResult(centroids, assign_spherical(unit, centroids))


def assign_l2(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    """Hard assignment by minimum squared Euclidean distance."""
    out = np.empty(points.shape[0], dtype=np.int64)
    sq = (centroids * centroids).sum(axis=1)
    for start in range(0, points.shape[0], _CHUNK):
        block = points[start : start + _CHUNK]
        # ||p - c||^2 = ||p||^2 - 2 p.c + ||c||^2; ||p||^2 is constant per row.
        dists = sq[None, :] - 2.0 * (block @ centroids.T)
        out[start : start + _CHUNK] = np.argmin(dists, axis=1)
    return out


def lloyd_kmeans(points: np.ndarray, k: int, *, seed: int = 0, iters: int = 20) -> KMeansResult:
    """Classic L2 k-means with the same determinism contract."""
    points = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    rng = np.random.default_rng(seed)
    centroids = _init_centroids(points, k, rng)
    assignments = np.zeros(points.shape[0], dtype=np.int64)
    for _ in range(iters):
        sq = (centroids * centroids).sum(axis=1)
        best = np.empty(points.shape[0], dtype=np.float64)
        for start in range(0, points.shape[0], _CHUNK):
            block = points[start : start + _CHUNK]
            dists = sq[None, :] - 2.0 * (block @ centroids.T)
            idx = np.argmin(dists, axis=1)
            assignments[start : start + _CHUNK] = idx
            best[start : start + _CHUNK] = -dists[np.arange(block.shape[0]), idx]
        _repair_empty(centroids, points, assignments, best)
        sums = np.zeros_like(centroids)
        np.add.at(sums, assignments, points)
        counts = np.bincount(assignments, minlength=k).astype(np.float64)
        nonempty = counts > 0
        centroids[nonempty] = sums[nonempty] / counts[nonempty, None]
    return KMeansResult(centroids, assign_l2(points, centroids))
