"""Module and Parameter base classes (the `torch.nn.Module` substitute).

A :class:`Module` discovers its parameters and submodules by attribute
inspection, exactly like PyTorch: assigning a :class:`Parameter` or another
:class:`Module` to ``self.<name>`` registers it automatically.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..autograd import Tensor
from ..perf import profiler as _profiler

__all__ = ["Parameter", "Module"]


class Parameter(Tensor):
    """A tensor that is always trainable and discovered by :class:`Module`."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even when constructed under
        # no_grad (e.g. when building a model inside an inference context).
        self.requires_grad = True


class Module:
    """Base class for all neural network layers and models."""

    def __init__(self):
        self._training = True

    # -- attribute discovery ------------------------------------------------
    def parameters(self) -> Iterator[Parameter]:
        """Yield all unique parameters of this module and its children."""
        seen: set[int] = set()
        yield from self._parameters(seen)

    def _parameters(self, seen: set[int]) -> Iterator[Parameter]:
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                if id(value) not in seen:
                    seen.add(id(value))
                    yield value
            elif isinstance(value, Module):
                yield from value._parameters(seen)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item._parameters(seen)
                    elif isinstance(item, Parameter) and id(item) not in seen:
                        seen.add(id(item))
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs."""
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants."""
        yield self
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield from value.modules()
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield from item.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        """Yield ``(dotted_path, module)`` pairs; the root's path is ``""``."""
        yield prefix, self
        for name, value in self.__dict__.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value.named_modules(prefix=child_prefix)
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(prefix=f"{child_prefix}.{i}")

    # -- training state -----------------------------------------------------
    @property
    def training(self) -> bool:
        return self._training

    def train(self) -> "Module":
        for module in self.modules():
            module._training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module._training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        """Total scalar parameter count."""
        return sum(p.size for p in self.parameters())

    # -- (de)serialization ---------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter array keyed by dotted name."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load arrays produced by :meth:`state_dict` (strict matching)."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, array in state.items():
            if params[name].data.shape != array.shape:
                raise ValueError(f"shape mismatch for {name}: {params[name].data.shape} != {array.shape}")
            # Cast to the parameter's dtype so a float64 checkpoint loads
            # cleanly into a model built under float32 training mode.
            params[name].data = array.astype(params[name].data.dtype, copy=True)

    # -- call protocol --------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        profiler = _profiler._ACTIVE
        if profiler is not None:
            return profiler._call_module(self, args, kwargs)
        return self.forward(*args, **kwargs)
