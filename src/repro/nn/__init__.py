"""Neural-network module library built on ``repro.autograd``.

Provides the layers the EMBSR paper's models need: Linear, Embedding,
GRU(+cell), LayerNorm, Dropout, transformer blocks, losses, and optimizers.
"""

from .attention import MultiHeadSelfAttention, TransformerBlock, scaled_dot_attention
from .init import normal, scaled_uniform, xavier_uniform, zeros
from .layers import (
    Dropout,
    Embedding,
    FeedForward,
    LayerNorm,
    Linear,
    ModuleList,
    Sequential,
)
from .loss import cross_entropy
from .module import Module, Parameter
from .optim import SGD, Adam, Optimizer, StepLR, clip_grad_norm
from .rnn import GRU, GRUCell
from .serialization import load_checkpoint, save_checkpoint

__all__ = [
    "Module",
    "Parameter",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "FeedForward",
    "Sequential",
    "ModuleList",
    "GRU",
    "GRUCell",
    "MultiHeadSelfAttention",
    "TransformerBlock",
    "scaled_dot_attention",
    "cross_entropy",
    "Optimizer",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "scaled_uniform",
    "xavier_uniform",
    "normal",
    "zeros",
]
