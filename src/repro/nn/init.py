"""Weight initialization schemes.

The paper (Sec. V-A4) initializes parameters "the same with [12]" (MKM-SR),
i.e. uniform in ``[-1/sqrt(d), 1/sqrt(d)]`` where ``d`` is the hidden size.
That scheme is :func:`scaled_uniform` below and is the library default.
"""

from __future__ import annotations

import numpy as np

from ..autograd import get_default_dtype

__all__ = ["scaled_uniform", "xavier_uniform", "normal", "zeros"]


def scaled_uniform(rng: np.random.Generator, shape: tuple[int, ...], scale_dim: int) -> np.ndarray:
    """Uniform in ``[-1/sqrt(scale_dim), 1/sqrt(scale_dim)]`` (MKM-SR style)."""
    bound = 1.0 / np.sqrt(scale_dim)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot/Xavier uniform for 2-D weights."""
    fan_in, fan_out = shape[0], shape[-1]
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 0.02) -> np.ndarray:
    """Gaussian init (BERT-style)."""
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    """All-zero init (biases and gate offsets)."""
    return np.zeros(shape, dtype=get_default_dtype())
