"""Loss functions.

The paper trains every neural model with the cross-entropy objective
(Eq. 20) over softmax scores; EMBSR additionally L2-normalizes the session
and item representations with a scale factor ``w_k`` before the softmax
(Eq. 19) — that normalization lives in the models, the loss here consumes
raw logits.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..perf import fused as _fused

__all__ = ["cross_entropy"]


def cross_entropy(logits: Tensor, targets: np.ndarray, total: int | None = None) -> Tensor:
    """Mean negative log-likelihood of ``targets`` under softmax(logits).

    Parameters
    ----------
    logits:
        [B, num_classes] unnormalized scores.
    targets:
        [B] integer class ids.
    total:
        Divisor of the sum of per-row losses. Defaults to the batch size
        (the ordinary mean). Data-parallel training passes the *full*
        batch size while scoring one shard of it, so the fixed-order sum
        of shard losses equals the whole-batch objective
        (``docs/performance.md``, "Parallelism").
    """
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2:
        raise ValueError(f"logits must be 2-D, got shape {logits.shape}")
    if targets.shape[0] != logits.shape[0]:
        raise ValueError("batch size mismatch between logits and targets")
    if _fused.fusion_enabled():
        return _fused.log_softmax_nll(logits, targets, total=total)
    log_probs = logits.log_softmax(axis=-1)
    picked = log_probs[np.arange(targets.shape[0]), targets]
    if total is None or total == targets.shape[0]:
        return -picked.mean()
    return -(picked.sum() / float(total))
