"""Optimizers and learning-rate scheduling.

The paper uses Adam for all neural models (Sec. V-A4), with a learning rate
tuned in {0.001, 0.003, 0.005, 0.008, 0.01}; StepLR matches the decay used
by the SR-GNN family reference implementations.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "StepLR", "clip_grad_norm"]


def clip_grad_norm(parameters: Iterable[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging divergence).
    """
    params = [p for p in parameters if p.grad is not None]
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm and total > 0.0:
        scale = max_norm / total
        for p in params:
            p.grad = p.grad * scale
    return total


class Optimizer:
    """Base optimizer holding a parameter list and a mutable learning rate."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, weight_decay: float = 0.0):
        self.parameters: Sequence[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.weight_decay = weight_decay

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- (de)serialization: everything a resumed run must replay exactly ----
    def state_dict(self) -> dict:
        """Copy of the optimizer's mutable state (subclasses extend)."""
        return {"lr": self.lr}

    def load_state_dict(self, state: dict) -> None:
        self.lr = float(state["lr"])

    def _check_arrays(self, name: str, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Validate per-parameter array lists against the parameter shapes."""
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"{name}: expected {len(self.parameters)} arrays, got {len(arrays)}"
            )
        for array, p in zip(arrays, self.parameters):
            if array.shape != p.data.shape:
                raise ValueError(f"{name}: shape mismatch {array.shape} != {p.data.shape}")
        return [np.array(a, copy=True) for a in arrays]


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr, weight_decay)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        return super().state_dict() | {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._velocity = self._check_arrays("velocity", state["velocity"])

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += grad
                grad = v
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters, lr, weight_decay)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def state_dict(self) -> dict:
        """Step count plus both moment estimates — Adam's full memory."""
        return super().state_dict() | {
            "step": self._step,
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
        }

    def load_state_dict(self, state: dict) -> None:
        super().load_state_dict(state)
        self._step = int(state["step"])
        self._m = self._check_arrays("m", state["m"])
        self._v = self._check_arrays("v", state["v"])

    def step(self) -> None:
        self._step += 1
        t = self._step
        bias1 = 1.0 - self.beta1**t
        bias2 = 1.0 - self.beta2**t
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            m_hat = m / bias1
            v_hat = v / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiply the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1):
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0
        self._base_lr = optimizer.lr

    def step(self) -> None:
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma**decays)

    def scale_lr(self, factor: float) -> None:
        """Permanently scale the schedule (divergence-watchdog cooldowns).

        Scaling only ``optimizer.lr`` would be undone at the next epoch
        boundary when :meth:`step` recomputes from the base rate, so the
        base is scaled too.
        """
        self._base_lr *= factor
        self.optimizer.lr *= factor

    def state_dict(self) -> dict:
        return {"epoch": self._epoch, "base_lr": self._base_lr}

    def load_state_dict(self, state: dict) -> None:
        self._epoch = int(state["epoch"])
        self._base_lr = float(state["base_lr"])
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma**decays)
