"""Standard attention blocks used by the transformer-style baselines.

The operation-aware self-attention of EMBSR itself (Eqs. 12-17) lives in
``repro.core.attention``; this module provides the *vanilla* building blocks
needed by GC-SAN and BERT4Rec.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from .layers import Dropout, LayerNorm, Linear
from .module import Module

__all__ = ["scaled_dot_attention", "MultiHeadSelfAttention", "TransformerBlock"]

_NEG_INF = -1e9


def scaled_dot_attention(
    q: Tensor,
    k: Tensor,
    v: Tensor,
    mask: np.ndarray | None = None,
) -> Tensor:
    """Softmax(QK^T / sqrt(d)) V with an optional boolean attention mask.

    ``mask`` broadcasts against the score shape [..., Tq, Tk]; positions where
    it is 0/False are excluded from attention.
    """
    d = q.shape[-1]
    scores = (q @ k.swapaxes(-1, -2)) * (1.0 / np.sqrt(d))
    if mask is not None:
        bias = np.where(np.asarray(mask, dtype=bool), 0.0, _NEG_INF)
        scores = scores + Tensor(np.broadcast_to(bias, scores.shape).copy())
    return scores.softmax(axis=-1) @ v


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention over [B, T, dim]."""

    def __init__(self, dim: int, num_heads: int, *, rng: np.random.Generator):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        self.dim = dim
        self.num_heads = num_heads
        self.head_dim = dim // num_heads
        self.wq = Linear(dim, dim, bias=False, rng=rng)
        self.wk = Linear(dim, dim, bias=False, rng=rng)
        self.wv = Linear(dim, dim, bias=False, rng=rng)
        self.wo = Linear(dim, dim, bias=False, rng=rng)

    def _split(self, x: Tensor) -> Tensor:
        b, t, _ = x.shape
        return x.reshape(b, t, self.num_heads, self.head_dim).transpose(0, 2, 1, 3)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        b, t, _ = x.shape
        q, k, v = self._split(self.wq(x)), self._split(self.wk(x)), self._split(self.wv(x))
        if mask is not None:
            # [B, Tk] key mask -> [B, 1, 1, Tk]
            mask = np.asarray(mask, dtype=bool)[:, None, None, :]
        out = scaled_dot_attention(q, k, v, mask=mask)
        return self.wo(out.transpose(0, 2, 1, 3).reshape(b, t, self.dim))


class TransformerBlock(Module):
    """Pre-LN transformer encoder block (attention + position-wise FFN)."""

    def __init__(self, dim: int, num_heads: int, dropout: float, *, rng: np.random.Generator):
        super().__init__()
        self.attention = MultiHeadSelfAttention(dim, num_heads, rng=rng)
        self.norm1 = LayerNorm(dim)
        self.norm2 = LayerNorm(dim)
        self.fc1 = Linear(dim, dim * 2, rng=rng)
        self.fc2 = Linear(dim * 2, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(self, x: Tensor, mask: np.ndarray | None = None) -> Tensor:
        x = x + self.dropout(self.attention(self.norm1(x), mask=mask))
        return x + self.dropout(self.fc2(self.fc1(self.norm2(x)).relu()))
