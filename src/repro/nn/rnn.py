"""Recurrent layers: GRU cell and mask-aware GRU over padded sequences.

The paper uses GRUs in two places: to encode each macro-item's
micro-operation sequence (Eq. 3) and inside the RNN baselines
(GRU4Rec-style encoders in NARM / RIB / HUP / MKM-SR).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, stack
from ..perf import fused as _fused
from .init import scaled_uniform, zeros
from .module import Module, Parameter

__all__ = ["GRUCell", "GRU"]


class GRUCell(Module):
    """Single-step gated recurrent unit (Cho et al., 2014)."""

    def __init__(self, input_dim: int, hidden_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        # Gates are fused: [update | reset | candidate].
        self.w_ih = Parameter(scaled_uniform(rng, (input_dim, 3 * hidden_dim), hidden_dim))
        self.w_hh = Parameter(scaled_uniform(rng, (hidden_dim, 3 * hidden_dim), hidden_dim))
        self.b_ih = Parameter(zeros((3 * hidden_dim,)))
        self.b_hh = Parameter(zeros((3 * hidden_dim,)))

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        """Advance one step: ``x`` is [B, input_dim], ``h`` is [B, hidden_dim]."""
        if _fused.fusion_enabled():
            return _fused.gru_cell(x, h, self.w_ih, self.w_hh, self.b_ih, self.b_hh)
        d = self.hidden_dim
        gi = x @ self.w_ih + self.b_ih
        gh = h @ self.w_hh + self.b_hh
        z = (gi[:, :d] + gh[:, :d]).sigmoid()
        r = (gi[:, d : 2 * d] + gh[:, d : 2 * d]).sigmoid()
        n = (gi[:, 2 * d :] + r * gh[:, 2 * d :]).tanh()
        return (1.0 - z) * n + z * h


class GRU(Module):
    """GRU over a padded batch of sequences with an explicit validity mask.

    Padded steps leave the hidden state unchanged, so the final hidden state
    equals the state after the last *valid* step of each sequence.
    """

    def __init__(self, input_dim: int, hidden_dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.cell = GRUCell(input_dim, hidden_dim, rng=rng)
        self.hidden_dim = hidden_dim

    def forward(
        self,
        x: Tensor,
        mask: np.ndarray | None = None,
        h0: Tensor | None = None,
    ) -> tuple[Tensor, Tensor]:
        """Run the GRU over ``x`` of shape [B, T, input_dim].

        Parameters
        ----------
        mask:
            Optional [B, T] array of {0, 1}; 0 marks padding.
        h0:
            Optional initial state [B, hidden_dim]; zeros by default.

        Returns
        -------
        (outputs, final_state):
            ``outputs`` is [B, T, hidden_dim], ``final_state`` is [B, hidden_dim].
        """
        if _fused.fusion_enabled():
            cell = self.cell
            outputs = _fused.gru_sequence(
                x, cell.w_ih, cell.w_hh, cell.b_ih, cell.b_hh, mask=mask, h0=h0
            )
            # Padded steps carry the state forward, so the last column IS the
            # final state even for sequences that end before step T.
            return outputs, outputs[:, -1, :]
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_dim), dtype=x.data.dtype))
        outputs = []
        for t in range(steps):
            x_t = x[:, t, :]
            h_new = self.cell(x_t, h)
            if mask is not None:
                m = Tensor(mask[:, t : t + 1].astype(x.data.dtype))
                h = m * h_new + (1.0 - m) * h
            else:
                h = h_new
            outputs.append(h)
        return stack(outputs, axis=1), h
