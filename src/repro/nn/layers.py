"""Core layers: Linear, Embedding, LayerNorm, Dropout, FeedForward, Sequential."""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..compile import tape as _tape
from ..perf import fused as _fused
from .init import scaled_uniform, zeros
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "FeedForward",
    "Sequential",
    "ModuleList",
]


class Linear(Module):
    """Affine map ``y = x W + b`` with optional bias.

    Weights use the MKM-SR uniform scheme scaled by the *input* dimension.
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(scaled_uniform(rng, (in_features, out_features), in_features))
        self.bias = Parameter(zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        if _fused.fusion_enabled():
            return _fused.addmm(x, self.weight, self.bias)
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Lookup table mapping integer ids to ``dim``-vectors.

    ``padding_idx`` rows are initialized to zero; their gradient is zeroed
    after each backward pass by the optimizer step (see :class:`repro.nn.optim.Optimizer`)
    only if the caller masks them — in practice every model here multiplies
    padded positions by an explicit mask, so the padding row only ever
    receives zero gradient contributions through masked paths.
    """

    def __init__(self, num_embeddings: int, dim: int, *, rng: np.random.Generator, padding_idx: int | None = None):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.padding_idx = padding_idx
        weight = scaled_uniform(rng, (num_embeddings, dim), dim)
        if padding_idx is not None:
            weight[padding_idx] = 0.0
        self.weight = Parameter(weight)

    def forward(self, indices: np.ndarray) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if _fused.fusion_enabled():
            return _fused.embedding_lookup(self.weight, indices)
        return self.weight.take(indices, axis=0)


class LayerNorm(Module):
    """Layer normalization over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-6):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        variance = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (variance + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Dropout(Module):
    """Inverted dropout; identity when the module is in eval mode."""

    def __init__(self, p: float, *, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        # ``self.rng`` is read inside the closure, not captured: a compiled
        # replay (repro.compile) re-draws the mask from whatever generator is
        # installed at replay time, consuming the stream exactly as eagerly —
        # this also keeps shard_rng swaps visible to replays.
        mask = _tape.leaf(lambda: (self.rng.random(x.shape) < keep) / keep)
        return x * mask


class FeedForward(Module):
    """Position-wise feed-forward network: ``max(0, x W1 + b1) W2 + b2`` (Eq. 17)."""

    def __init__(self, dim: int, hidden_dim: int | None = None, *, rng: np.random.Generator):
        super().__init__()
        hidden_dim = hidden_dim or dim
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(self.fc1(x).relu())


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.items = list(modules)

    def forward(self, x):
        for module in self.items:
            x = module(x)
        return x

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)


class ModuleList(Module):
    """Holds an indexable list of modules (registered for parameters())."""

    def __init__(self, modules=()):
        super().__init__()
        self.items = list(modules)

    def append(self, module: Module) -> None:
        self.items.append(module)

    def __getitem__(self, i: int) -> Module:
        return self.items[i]

    def __iter__(self):
        return iter(self.items)

    def __len__(self):
        return len(self.items)
