"""Model checkpointing: save/load a Module's parameters as ``.npz``.

The dotted parameter names from :meth:`Module.named_parameters` become the
archive keys, so checkpoints are portable across processes as long as the
model is constructed with the same architecture switches.

Saves go through :func:`repro.reliability.atomic_save_npz` — a temp file
in the destination directory renamed into place with ``os.replace`` — so
a crash mid-save (see the ``serialization.mid_write`` failpoint) leaves
the previous checkpoint intact instead of a truncated archive.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..reliability import atomic_save_npz
from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(model: Module, path: str | pathlib.Path) -> pathlib.Path:
    """Atomically write every parameter of ``model`` to a ``.npz`` archive."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    return atomic_save_npz(pathlib.Path(path), state)


def load_checkpoint(model: Module, path: str | pathlib.Path) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Strict: raises ``KeyError`` on any missing/unexpected parameter and
    ``ValueError`` on shape mismatch (same contract as ``load_state_dict``).
    """
    with np.load(pathlib.Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
