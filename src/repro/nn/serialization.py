"""Model checkpointing: save/load a Module's parameters as ``.npz``.

The dotted parameter names from :meth:`Module.named_parameters` become the
archive keys, so checkpoints are portable across processes as long as the
model is constructed with the same architecture switches.
"""

from __future__ import annotations

import pathlib

import numpy as np

from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(model: Module, path: str | pathlib.Path) -> None:
    """Write every parameter of ``model`` to a compressed ``.npz`` archive."""
    state = model.state_dict()
    if not state:
        raise ValueError("model has no parameters to save")
    np.savez_compressed(pathlib.Path(path), **state)


def load_checkpoint(model: Module, path: str | pathlib.Path) -> Module:
    """Load parameters saved by :func:`save_checkpoint` into ``model``.

    Strict: raises ``KeyError`` on any missing/unexpected parameter and
    ``ValueError`` on shape mismatch (same contract as ``load_state_dict``).
    """
    with np.load(pathlib.Path(path)) as archive:
        state = {name: archive[name] for name in archive.files}
    model.load_state_dict(state)
    return model
