"""Session-to-multigraph conversion (paper Sec. IV-B1, Fig. 3).

A macro-item sequence ``[v1, v2, v3, v2, v3, v4]`` becomes a directed
**multigraph**: nodes are the distinct items, and every transition
``v^i -> v^{i+1}`` contributes its own edge carrying an integer ``order``
attribute (its position in the session). The multigraph — as opposed to the
simple graph used by SR-GNN — is what lets the same node pass *different*
messages along parallel edges, keyed by the micro-operation sequence its
endpoint had at that time.

The star node (inspired by SGNN-HN) is bidirectionally connected to every
satellite node; it is kept implicit here and materialized in the model.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

__all__ = ["SessionGraph"]


@dataclass(frozen=True)
class Edge:
    """One ordered transition in the multigraph."""

    source: int  # node index
    target: int  # node index
    order: int  # transition index in the session (0-based)


class SessionGraph:
    """Directed multigraph of one macro-item sequence with ordered edges."""

    def __init__(self, macro_items: list[int]):
        if not macro_items:
            raise ValueError("cannot build a graph from an empty session")
        for a, b in zip(macro_items, macro_items[1:]):
            if a == b:
                raise ValueError(
                    "successive duplicate items must be merged before graph "
                    "construction (see repro.data.schema.merge_successive)"
                )
        self.macro_items = list(macro_items)
        # Nodes in order of first appearance — matches the paper's S^u_t.
        self.nodes: list[int] = []
        self._node_index: dict[int, int] = {}
        for item in macro_items:
            if item not in self._node_index:
                self._node_index[item] = len(self.nodes)
                self.nodes.append(item)
        self.alias: list[int] = [self._node_index[v] for v in macro_items]
        self.edges: list[Edge] = [
            Edge(self.alias[i], self.alias[i + 1], order=i)
            for i in range(len(macro_items) - 1)
        ]

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        return len(self.edges)

    def node_of(self, item: int) -> int:
        return self._node_index[item]

    def in_edges(self, node: int) -> list[Edge]:
        return [e for e in self.edges if e.target == node]

    def out_edges(self, node: int) -> list[Edge]:
        return [e for e in self.edges if e.source == node]

    def parallel_edge_count(self) -> int:
        """Number of edges beyond the first between any ordered node pair.

        Positive exactly when the session genuinely needs a *multi*graph.
        """
        seen: dict[tuple[int, int], int] = {}
        for e in self.edges:
            seen[(e.source, e.target)] = seen.get((e.source, e.target), 0) + 1
        return sum(n - 1 for n in seen.values() if n > 1)

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to networkx for validation and visualization."""
        graph = nx.MultiDiGraph()
        for idx, item in enumerate(self.nodes):
            graph.add_node(idx, item=item)
        for e in self.edges:
            graph.add_edge(e.source, e.target, order=e.order)
        return graph
