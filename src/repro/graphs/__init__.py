"""Session multigraph construction and batched graph arrays."""

from .batch_graph import BatchGraph
from .session_graph import SessionGraph

__all__ = ["SessionGraph", "BatchGraph"]
