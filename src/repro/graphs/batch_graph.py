"""Batched multigraph arrays for the GNN layers.

All graph structure is encoded as constant one-hot matrices so the gather
(node -> macro position) and scatter (ordered edge -> node) operations reduce
to batched matrix multiplications, which the autograd engine differentiates
for free.

Shapes (B = batch, n = max macro length, c = max distinct-node count):

* ``node_items``  [B, c]   — distinct item ids per session, 0-padded
* ``node_mask``   [B, c]   — validity of node slots
* ``alias``       [B, n]   — node index of each macro position
* ``gather``      [B, n, c] — one-hot: position p reads node alias[p]
* ``scatter_in``  [B, c, n-1] — transition p (edge v^p -> v^{p+1}) adds its
  in-message to node alias[p+1]
* ``scatter_out`` [B, c, n-1] — transition p adds its out-message to node
  alias[p]
* ``micro_gather`` [B, t, c] — micro step reads its item's node
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import SessionBatch

__all__ = ["BatchGraph"]


@dataclass
class BatchGraph:
    """Constant arrays describing a batch of session multigraphs."""

    node_items: np.ndarray
    node_mask: np.ndarray
    alias: np.ndarray
    gather: np.ndarray
    scatter_in: np.ndarray
    scatter_out: np.ndarray
    micro_gather: np.ndarray
    trans_mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.node_items.shape[0]

    @property
    def max_nodes(self) -> int:
        return self.node_items.shape[1]

    @classmethod
    def from_batch(cls, batch: SessionBatch) -> "BatchGraph":
        """Build graph arrays for every session in ``batch``."""
        B, n = batch.items.shape
        t = batch.micro_items.shape[1]

        alias = np.zeros((B, n), dtype=np.int64)
        node_lists: list[list[int]] = []
        for b in range(B):
            index: dict[int, int] = {}
            nodes: list[int] = []
            for p in range(n):
                item = int(batch.items[b, p])
                if batch.item_mask[b, p] == 0:
                    break
                if item not in index:
                    index[item] = len(nodes)
                    nodes.append(item)
                alias[b, p] = index[item]
            node_lists.append(nodes)

        c = max(1, max(len(nodes) for nodes in node_lists))
        node_items = np.zeros((B, c), dtype=np.int64)
        node_mask = np.zeros((B, c))
        for b, nodes in enumerate(node_lists):
            node_items[b, : len(nodes)] = nodes
            node_mask[b, : len(nodes)] = 1.0

        gather = np.zeros((B, n, c))
        rows = np.arange(n)
        for b in range(B):
            valid = batch.item_mask[b].astype(bool)
            gather[b, rows[valid], alias[b, valid]] = 1.0

        n_trans = max(1, n - 1)
        scatter_in = np.zeros((B, c, n_trans))
        scatter_out = np.zeros((B, c, n_trans))
        trans_mask = np.zeros((B, n_trans))
        for b in range(B):
            length = int(batch.item_mask[b].sum())
            for p in range(length - 1):
                scatter_in[b, alias[b, p + 1], p] = 1.0
                scatter_out[b, alias[b, p], p] = 1.0
                trans_mask[b, p] = 1.0

        micro_gather = np.zeros((B, t, c))
        for b in range(B):
            index = {item: i for i, item in enumerate(node_lists[b])}
            for s in range(t):
                if batch.micro_mask[b, s] == 0:
                    break
                micro_gather[b, s, index[int(batch.micro_items[b, s])]] = 1.0

        return cls(
            node_items=node_items,
            node_mask=node_mask,
            alias=alias,
            gather=gather,
            scatter_in=scatter_in,
            scatter_out=scatter_out,
            micro_gather=micro_gather,
            trans_mask=trans_mask,
        )

    def collapse_parallel_edges(self) -> "BatchGraph":
        """Return a simple-graph view: duplicate (src, dst) edges dropped.

        Keeps only the first occurrence of each ordered node pair, zeroing
        later parallel transitions out of the scatter matrices and the
        transition mask. This is the ablation hook for the paper's central
        graph-construction choice (Fig. 3): EMBSR's *multigraph* vs. the
        simple session graph used by SR-GNN-style models.
        """
        B, c, n_trans = self.scatter_in.shape
        scatter_in = self.scatter_in.copy()
        scatter_out = self.scatter_out.copy()
        trans_mask = self.trans_mask.copy()
        for b in range(B):
            seen: set[tuple[int, int]] = set()
            for p in range(n_trans):
                if trans_mask[b, p] == 0:
                    continue
                src = int(np.argmax(scatter_out[b, :, p]))
                dst = int(np.argmax(scatter_in[b, :, p]))
                if (src, dst) in seen:
                    scatter_in[b, :, p] = 0.0
                    scatter_out[b, :, p] = 0.0
                    trans_mask[b, p] = 0.0
                else:
                    seen.add((src, dst))
        return BatchGraph(
            node_items=self.node_items,
            node_mask=self.node_mask,
            alias=self.alias,
            gather=self.gather,
            scatter_in=scatter_in,
            scatter_out=scatter_out,
            micro_gather=self.micro_gather,
            trans_mask=trans_mask,
        )
