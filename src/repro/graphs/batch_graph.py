"""Batched multigraph arrays for the GNN layers.

All graph structure is encoded as constant one-hot matrices so the gather
(node -> macro position) and scatter (ordered edge -> node) operations reduce
to batched matrix multiplications, which the autograd engine differentiates
for free.

Shapes (B = batch, n = max macro length, c = max distinct-node count):

* ``node_items``  [B, c]   — distinct item ids per session, 0-padded
* ``node_mask``   [B, c]   — validity of node slots
* ``alias``       [B, n]   — node index of each macro position
* ``gather``      [B, n, c] — one-hot: position p reads node alias[p]
* ``scatter_in``  [B, c, n-1] — transition p (edge v^p -> v^{p+1}) adds its
  in-message to node alias[p+1]
* ``scatter_out`` [B, c, n-1] — transition p adds its out-message to node
  alias[p]
* ``micro_gather`` [B, t, c] — micro step reads its item's node
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import SessionBatch

__all__ = ["BatchGraph"]


@dataclass
class BatchGraph:
    """Constant arrays describing a batch of session multigraphs."""

    node_items: np.ndarray
    node_mask: np.ndarray
    alias: np.ndarray
    gather: np.ndarray
    scatter_in: np.ndarray
    scatter_out: np.ndarray
    micro_gather: np.ndarray
    trans_mask: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.node_items.shape[0]

    @property
    def max_nodes(self) -> int:
        return self.node_items.shape[1]

    @classmethod
    def from_batch(cls, batch: SessionBatch) -> "BatchGraph":
        """Build graph arrays for every session in ``batch``.

        Fully vectorized — a compiled replay (``repro.compile``) rebuilds
        the graph from refreshed batch buffers on every step, so this is
        on the per-step hot path, not just in the data pipeline. The
        per-row reference construction is kept as
        :meth:`_from_batch_loops` and asserted equal in
        ``tests/graphs/test_batch_graph.py``.
        """
        items, item_mask = batch.items, batch.item_mask
        B, n = items.shape
        t = batch.micro_items.shape[1]

        # Node discovery stops at the first masked position (prefix scan).
        prefix = np.cumprod(item_mask != 0, axis=1).astype(bool)
        # first[b, p]: earliest prefix position holding the same item.
        same = (items[:, :, None] == items[:, None, :]) & prefix[:, :, None] & prefix[:, None, :]
        first = same.argmax(axis=2)
        is_new = (first == np.arange(n)) & prefix
        order = np.cumsum(is_new, axis=1) - 1  # node index of each new position
        alias = np.where(prefix, np.take_along_axis(order, first, axis=1), 0)

        counts = is_new.sum(axis=1)
        c = max(1, int(counts.max()))
        node_items = np.zeros((B, c), dtype=np.int64)
        nb, npos = np.nonzero(is_new)
        node_items[nb, order[nb, npos]] = items[nb, npos]
        node_mask = (np.arange(c) < counts[:, None]).astype(np.float64)

        # Positions outside the prefix but still mask-valid keep alias 0,
        # exactly like the reference loop (alias is initialized to zero).
        gather = np.zeros((B, n, c))
        vb, vp = np.nonzero(item_mask.astype(bool))
        gather[vb, vp, alias[vb, vp]] = 1.0

        n_trans = max(1, n - 1)
        scatter_in = np.zeros((B, c, n_trans))
        scatter_out = np.zeros((B, c, n_trans))
        trans_mask = np.zeros((B, n_trans))
        lengths = item_mask.sum(axis=1).astype(np.int64)
        if n > 1:
            tb, tp = np.nonzero(np.arange(n - 1) < (lengths - 1)[:, None])
            scatter_in[tb, alias[tb, tp + 1], tp] = 1.0
            scatter_out[tb, alias[tb, tp], tp] = 1.0
            trans_mask[tb, tp] = 1.0

        micro_gather = np.zeros((B, t, c))
        mprefix = np.cumprod(batch.micro_mask != 0, axis=1).astype(bool)
        node_valid = np.arange(c) < counts[:, None]
        hit = (batch.micro_items[:, :, None] == node_items[:, None, :]) & node_valid[:, None, :]
        if not hit.any(axis=2)[mprefix].all():
            raise KeyError("micro item not present among the session's macro nodes")
        mb, ms = np.nonzero(mprefix)
        micro_gather[mb, ms, hit.argmax(axis=2)[mb, ms]] = 1.0

        return cls(
            node_items=node_items,
            node_mask=node_mask,
            alias=alias,
            gather=gather,
            scatter_in=scatter_in,
            scatter_out=scatter_out,
            micro_gather=micro_gather,
            trans_mask=trans_mask,
        )

    @classmethod
    def _from_batch_loops(cls, batch: SessionBatch) -> "BatchGraph":
        """Reference per-row construction (the pre-vectorization semantics)."""
        B, n = batch.items.shape
        t = batch.micro_items.shape[1]

        alias = np.zeros((B, n), dtype=np.int64)
        node_lists: list[list[int]] = []
        for b in range(B):
            index: dict[int, int] = {}
            nodes: list[int] = []
            for p in range(n):
                item = int(batch.items[b, p])
                if batch.item_mask[b, p] == 0:
                    break
                if item not in index:
                    index[item] = len(nodes)
                    nodes.append(item)
                alias[b, p] = index[item]
            node_lists.append(nodes)

        c = max(1, max(len(nodes) for nodes in node_lists))
        node_items = np.zeros((B, c), dtype=np.int64)
        node_mask = np.zeros((B, c))
        for b, nodes in enumerate(node_lists):
            node_items[b, : len(nodes)] = nodes
            node_mask[b, : len(nodes)] = 1.0

        gather = np.zeros((B, n, c))
        rows = np.arange(n)
        for b in range(B):
            valid = batch.item_mask[b].astype(bool)
            gather[b, rows[valid], alias[b, valid]] = 1.0

        n_trans = max(1, n - 1)
        scatter_in = np.zeros((B, c, n_trans))
        scatter_out = np.zeros((B, c, n_trans))
        trans_mask = np.zeros((B, n_trans))
        for b in range(B):
            length = int(batch.item_mask[b].sum())
            for p in range(length - 1):
                scatter_in[b, alias[b, p + 1], p] = 1.0
                scatter_out[b, alias[b, p], p] = 1.0
                trans_mask[b, p] = 1.0

        micro_gather = np.zeros((B, t, c))
        for b in range(B):
            index = {item: i for i, item in enumerate(node_lists[b])}
            for s in range(t):
                if batch.micro_mask[b, s] == 0:
                    break
                micro_gather[b, s, index[int(batch.micro_items[b, s])]] = 1.0

        return cls(
            node_items=node_items,
            node_mask=node_mask,
            alias=alias,
            gather=gather,
            scatter_in=scatter_in,
            scatter_out=scatter_out,
            micro_gather=micro_gather,
            trans_mask=trans_mask,
        )

    def collapse_parallel_edges(self) -> "BatchGraph":
        """Return a simple-graph view: duplicate (src, dst) edges dropped.

        Keeps only the first occurrence of each ordered node pair, zeroing
        later parallel transitions out of the scatter matrices and the
        transition mask. This is the ablation hook for the paper's central
        graph-construction choice (Fig. 3): EMBSR's *multigraph* vs. the
        simple session graph used by SR-GNN-style models.
        """
        B, c, n_trans = self.scatter_in.shape
        scatter_in = self.scatter_in.copy()
        scatter_out = self.scatter_out.copy()
        trans_mask = self.trans_mask.copy()
        for b in range(B):
            seen: set[tuple[int, int]] = set()
            for p in range(n_trans):
                if trans_mask[b, p] == 0:
                    continue
                src = int(np.argmax(scatter_out[b, :, p]))
                dst = int(np.argmax(scatter_in[b, :, p]))
                if (src, dst) in seen:
                    scatter_in[b, :, p] = 0.0
                    scatter_out[b, :, p] = 0.0
                    trans_mask[b, p] = 0.0
                else:
                    seen.add((src, dst))
        return BatchGraph(
            node_items=self.node_items,
            node_mask=self.node_mask,
            alias=self.alias,
            gather=self.gather,
            scatter_in=scatter_in,
            scatter_out=scatter_out,
            micro_gather=self.micro_gather,
            trans_mask=trans_mask,
        )
