"""Experiment runner: trains/evaluates named models on prepared datasets.

This is the engine behind every benchmark in ``benchmarks/``: it resolves
all twelve systems of Table III (plus the analysis variants of Tables IV
and Figs. 4-6) through :mod:`repro.registry`, fits them on a dataset, and
produces the paper's metric rows. Raw score matrices are retained so
significance tests can be run between any two fitted systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import DataLoader
from ..data.preprocess import PreparedDataset
from ..registry import REGISTRY, TABLE3_MODELS
from .metrics import evaluate_scores
from .recommender import Recommender
from .trainer import TrainConfig

__all__ = ["ExperimentConfig", "ExperimentResult", "ExperimentRunner", "MODEL_NAMES"]

MODEL_NAMES = list(TABLE3_MODELS)

# TrainConfig fields that are *runtime-only* — machine paths, verbosity,
# and the worker count (parallelism changes wall-clock, never the math;
# the math-bearing knob, grad_shards, IS portable) have no business
# inside a portable ModelSpec.
# ``compile`` joins them: trace/replay execution is bitwise the eager
# step, so it is an execution detail like the worker count.
# ``bucket_lengths`` stays portable — bucketed padding changes the math.
# ``packed``/``prefetch`` are execution-only too: columnar collation is
# bitwise the loop collate and prefetch only overlaps it with the step.
_NON_PORTABLE_TRAIN_FIELDS = frozenset(
    {
        "checkpoint_path",
        "checkpoint_every",
        "resume_from",
        "verbose",
        "workers",
        "compile",
        "packed",
        "prefetch",
    }
)


@dataclass
class ExperimentConfig:
    """Scale and optimization knobs shared by every model in a run."""

    dim: int = 32
    epochs: int = 12
    batch_size: int = 64
    lr: float = 0.005
    dropout: float = 0.2
    w_k: float = 12.0
    patience: int = 5
    seed: int = 0
    dtype: str = "float64"
    ks: tuple[int, ...] = (5, 10, 20)
    # Crash-safe training (docs/reliability.md): periodic training-state
    # checkpoints and resumption, threaded through to Trainer.fit.
    checkpoint_path: str | None = None
    checkpoint_every: int = 0
    resume_from: str | None = None
    # Data-parallel training (docs/performance.md, "Parallelism").
    workers: int = 1
    grad_shards: int = 0  # 0 = auto (follows workers); 1 = classic path
    # Compiled training step (docs/performance.md, "Compiled step").
    compile: bool = False
    bucket_lengths: bool = False
    # Packed data pipeline (docs/data.md): columnar storage + vectorized
    # collate, and double-buffered background collation.
    packed: bool = False
    prefetch: bool = False
    # Training objective (docs/objectives.md). None = defer to the model's
    # registry entry (EMBSR-SSL pins "ssl"); set explicitly to override.
    objective: str | None = None
    cl_weight: float | None = None

    def train_config(self) -> TrainConfig:
        overrides = {}
        if self.objective is not None:
            overrides["objective"] = self.objective
        if self.cl_weight is not None:
            overrides["cl_weight"] = self.cl_weight
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            patience=self.patience,
            seed=self.seed,
            dtype=self.dtype,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            resume_from=self.resume_from,
            workers=self.workers,
            grad_shards=self.grad_shards,
            compile=self.compile,
            bucket_lengths=self.bucket_lengths,
            packed=self.packed,
            prefetch=self.prefetch,
            **overrides,
        )


@dataclass
class ExperimentResult:
    """Fitted system + its test-set scores and metrics."""

    name: str
    metrics: dict[str, float]
    scores: np.ndarray
    target_classes: np.ndarray
    recommender: Recommender


class ExperimentRunner:
    """Builds, fits, and evaluates named systems on one dataset."""

    def __init__(self, dataset: PreparedDataset, config: ExperimentConfig | None = None):
        self.dataset = dataset
        self.config = config or ExperimentConfig()
        self.results: dict[str, ExperimentResult] = {}

    # ------------------------------------------------------------------
    def _portable_train(self) -> dict:
        """The portable slice of the train config, for embedding in specs."""
        from dataclasses import asdict

        drop = set(_NON_PORTABLE_TRAIN_FIELDS)
        # Objective knobs the user left on auto must not shadow the model's
        # registry defaults (spec_for merges caller train over entry.train,
        # so EMBSR-SSL's {"objective": "ssl"} only survives if absent here).
        if self.config.objective is None:
            drop.add("objective")
        if self.config.cl_weight is None:
            drop.add("cl_weight")
        return {
            k: v
            for k, v in asdict(self.config.train_config()).items()
            if k not in drop
        }

    def spec_for(self, name: str):
        """The :class:`~repro.registry.ModelSpec` this runner builds for ``name``."""
        cfg = self.config
        return REGISTRY.spec_for(
            name,
            num_items=self.dataset.num_items,
            num_ops=self.dataset.num_operations,
            dim=cfg.dim,
            dropout=cfg.dropout,
            seed=cfg.seed,
            w_k=cfg.w_k,
            dtype=cfg.dtype,
            train=self._portable_train(),
        )

    def build(self, name: str) -> Recommender:
        """Construct the (unfitted) system registered under ``name``.

        Resolution is delegated to :mod:`repro.registry`: all Table III
        names, every EMBSR analysis variant, and the ``EMBSR-beta=<x>`` /
        ``EMBSR-SSL-cl=<x>`` pattern sweeps. Unknown names raise
        ``KeyError`` listing what *is* registered.

        The runtime train config derives from the *spec* (entry defaults
        merged with this runner's knobs) plus the non-portable runtime
        fields, so a model's registry objective survives into training.
        """
        cfg = self.config
        spec = self.spec_for(name)
        runtime = spec.train_config(
            checkpoint_path=cfg.checkpoint_path,
            checkpoint_every=cfg.checkpoint_every,
            resume_from=cfg.resume_from,
            workers=cfg.workers,
            compile=cfg.compile,
            packed=cfg.packed,
            prefetch=cfg.prefetch,
        )
        return REGISTRY.build(spec, train=runtime)

    # ------------------------------------------------------------------
    def score_on_test(self, recommender: Recommender) -> tuple[np.ndarray, np.ndarray]:
        loader = DataLoader(self.dataset.test, batch_size=128)
        scores, targets = [], []
        for batch in loader:
            scores.append(recommender.score_batch(batch))
            targets.append(batch.target_classes)
        return np.concatenate(scores), np.concatenate(targets)

    def run(self, name: str, verbose: bool = False) -> ExperimentResult:
        """Fit and evaluate one system; results are cached per name."""
        if name in self.results:
            return self.results[name]
        recommender = self.build(name)
        recommender.fit(self.dataset)
        scores, targets = self.score_on_test(recommender)
        metrics = evaluate_scores(scores, targets, ks=self.config.ks)
        result = ExperimentResult(name, metrics, scores, targets, recommender)
        self.results[name] = result
        if verbose:
            pretty = ", ".join(f"{k}={v:.2f}" for k, v in metrics.items())
            print(f"[{self.dataset.name}] {name}: {pretty}")
        return result

    def run_all(self, names: list[str], verbose: bool = False) -> dict[str, ExperimentResult]:
        return {name: self.run(name, verbose=verbose) for name in names}

    def metric_table(self, names: list[str]) -> dict[str, dict[str, float]]:
        """Metrics of already-run systems, keyed by model name."""
        return {name: self.results[name].metrics for name in names if name in self.results}
