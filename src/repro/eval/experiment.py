"""Experiment runner: trains/evaluates named models on prepared datasets.

This is the engine behind every benchmark in ``benchmarks/``: it knows how
to construct all twelve systems of Table III (plus the analysis variants of
Tables IV and Figs. 4-6), fit them on a dataset, and produce the paper's
metric rows. Raw score matrices are retained so significance tests can be
run between any two fitted systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable

import numpy as np

from ..core import EMBSRConfig, VARIANT_BUILDERS, build_fixed_beta
from ..data.dataset import DataLoader
from ..data.preprocess import PreparedDataset
from ..nn import Module
from .metrics import evaluate_scores
from .recommender import Recommender
from .trainer import NeuralRecommender, TrainConfig

__all__ = ["ExperimentConfig", "ExperimentResult", "ExperimentRunner", "MODEL_NAMES"]

MACRO_BASELINES = ["S-POP", "SKNN", "NARM", "STAMP", "SR-GNN", "GC-SAN", "BERT4Rec", "SGNN-HN"]
MICRO_BASELINES = ["RIB", "HUP", "MKM-SR"]
MODEL_NAMES = MACRO_BASELINES + MICRO_BASELINES + ["EMBSR"]


@dataclass
class ExperimentConfig:
    """Scale and optimization knobs shared by every model in a run."""

    dim: int = 32
    epochs: int = 12
    batch_size: int = 64
    lr: float = 0.005
    dropout: float = 0.2
    w_k: float = 12.0
    patience: int = 5
    seed: int = 0
    dtype: str = "float64"
    ks: tuple[int, ...] = (5, 10, 20)
    # Crash-safe training (docs/reliability.md): periodic training-state
    # checkpoints and resumption, threaded through to Trainer.fit.
    checkpoint_path: str | None = None
    checkpoint_every: int = 0
    resume_from: str | None = None

    def train_config(self) -> TrainConfig:
        return TrainConfig(
            epochs=self.epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            patience=self.patience,
            seed=self.seed,
            dtype=self.dtype,
            checkpoint_path=self.checkpoint_path,
            checkpoint_every=self.checkpoint_every,
            resume_from=self.resume_from,
        )


@dataclass
class ExperimentResult:
    """Fitted system + its test-set scores and metrics."""

    name: str
    metrics: dict[str, float]
    scores: np.ndarray
    target_classes: np.ndarray
    recommender: Recommender


class ExperimentRunner:
    """Builds, fits, and evaluates named systems on one dataset."""

    def __init__(self, dataset: PreparedDataset, config: ExperimentConfig | None = None):
        self.dataset = dataset
        self.config = config or ExperimentConfig()
        self.results: dict[str, ExperimentResult] = {}

    # ------------------------------------------------------------------
    def _embsr_config(self) -> EMBSRConfig:
        cfg = self.config
        return EMBSRConfig(
            num_items=self.dataset.num_items,
            num_ops=self.dataset.num_operations,
            dim=cfg.dim,
            dropout=cfg.dropout,
            w_k=cfg.w_k,
            seed=cfg.seed,
        )

    def build(self, name: str) -> Recommender:
        """Construct the (unfitted) system registered under ``name``.

        Accepts all Table III names, every variant in
        ``repro.core.variants.VARIANT_BUILDERS``, and ``EMBSR-beta=<x>``
        for the Fig. 6 fixed-fusion sweep.
        """
        # Imported here (not at module top) to avoid a circular import:
        # baseline modules themselves import repro.eval.recommender.
        from ..baselines import (
            BERT4Rec,
            GCSAN,
            HUP,
            MKMSR,
            NARM,
            RIB,
            SGNNHN,
            SKNN,
            SPop,
            SRGNN,
            STAMP,
        )

        cfg = self.config
        ds = self.dataset
        d, drop, seed = cfg.dim, cfg.dropout, cfg.seed

        simple: dict[str, Callable[[], Recommender]] = {
            "S-POP": SPop,
            "SKNN": SKNN,
        }
        if name in simple:
            return simple[name]()

        neural: dict[str, Callable[[PreparedDataset], Module]] = {
            "NARM": lambda ds: NARM(ds.num_items, dim=d, dropout=drop, seed=seed),
            "STAMP": lambda ds: STAMP(ds.num_items, dim=d, dropout=drop, seed=seed),
            "SR-GNN": lambda ds: SRGNN(ds.num_items, dim=d, dropout=drop, seed=seed),
            "GC-SAN": lambda ds: GCSAN(ds.num_items, dim=d, dropout=drop, seed=seed),
            "BERT4Rec": lambda ds: BERT4Rec(ds.num_items, dim=d, dropout=drop, seed=seed),
            "SGNN-HN": lambda ds: SGNNHN(ds.num_items, dim=d, w_k=cfg.w_k, dropout=drop, seed=seed),
            "RIB": lambda ds: RIB(ds.num_items, ds.num_operations, dim=d, dropout=drop, seed=seed),
            "HUP": lambda ds: HUP(ds.num_items, ds.num_operations, dim=d, dropout=drop, seed=seed),
            "MKM-SR": lambda ds: MKMSR(ds.num_items, ds.num_operations, dim=d, dropout=drop, seed=seed),
        }
        if name in neural:
            return NeuralRecommender(name, neural[name], cfg.train_config())

        if name in VARIANT_BUILDERS:
            builder = VARIANT_BUILDERS[name]
            return NeuralRecommender(
                name, lambda ds: builder(self._embsr_config()), cfg.train_config()
            )

        if name.startswith("EMBSR-beta="):
            beta = float(name.split("=", 1)[1])
            return NeuralRecommender(
                name,
                lambda ds: build_fixed_beta(self._embsr_config(), beta),
                cfg.train_config(),
            )

        raise KeyError(f"unknown model name: {name!r}")

    # ------------------------------------------------------------------
    def score_on_test(self, recommender: Recommender) -> tuple[np.ndarray, np.ndarray]:
        loader = DataLoader(self.dataset.test, batch_size=128)
        scores, targets = [], []
        for batch in loader:
            scores.append(recommender.score_batch(batch))
            targets.append(batch.target_classes)
        return np.concatenate(scores), np.concatenate(targets)

    def run(self, name: str, verbose: bool = False) -> ExperimentResult:
        """Fit and evaluate one system; results are cached per name."""
        if name in self.results:
            return self.results[name]
        recommender = self.build(name)
        recommender.fit(self.dataset)
        scores, targets = self.score_on_test(recommender)
        metrics = evaluate_scores(scores, targets, ks=self.config.ks)
        result = ExperimentResult(name, metrics, scores, targets, recommender)
        self.results[name] = result
        if verbose:
            pretty = ", ".join(f"{k}={v:.2f}" for k, v in metrics.items())
            print(f"[{self.dataset.name}] {name}: {pretty}")
        return result

    def run_all(self, names: list[str], verbose: bool = False) -> dict[str, ExperimentResult]:
        return {name: self.run(name, verbose=verbose) for name in names}

    def metric_table(self, names: list[str]) -> dict[str, dict[str, float]]:
        """Metrics of already-run systems, keyed by model name."""
        return {name: self.results[name].metrics for name in names if name in self.results}
