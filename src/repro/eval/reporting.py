"""Paper-style result tables.

Formats a measured-metrics dict the way the paper's Table III is typeset:
the best score per metric **bold**, the second best _underlined_ (markdown
emphasis), plus the "Imp." row — EMBSR's relative improvement over the best
baseline.
"""

from __future__ import annotations

from .analysis import improvement_table

__all__ = ["format_results_markdown"]


def _mark(value: float, best: float, second: float) -> str:
    text = f"{value:.2f}"
    if value == best:
        return f"**{text}**"
    if value == second:
        return f"_{text}_"
    return text


def format_results_markdown(
    measured: dict[str, dict[str, float]],
    metrics: tuple[str, ...] = ("H@5", "H@10", "H@20", "M@5", "M@10", "M@20"),
    highlight_system: str | None = "EMBSR",
) -> str:
    """Render measured results as a paper-style markdown table.

    Parameters
    ----------
    measured:
        ``{model: {metric: value}}``.
    metrics:
        Column order.
    highlight_system:
        If present in ``measured``, an "Imp." row is appended showing its
        relative gain over the best *other* system per metric.
    """
    if not measured:
        raise ValueError("no results to format")
    missing = [
        (model, metric)
        for model, row in measured.items()
        for metric in metrics
        if metric not in row
    ]
    if missing:
        raise KeyError(f"missing metrics: {missing[:3]}...")

    ranked: dict[str, tuple[float, float]] = {}
    for metric in metrics:
        values = sorted((row[metric] for row in measured.values()), reverse=True)
        ranked[metric] = (values[0], values[1] if len(values) > 1 else values[0])

    lines = [
        "| model | " + " | ".join(metrics) + " |",
        "|" + "---|" * (len(metrics) + 1),
    ]
    for model, row in measured.items():
        cells = [_mark(row[m], *ranked[m]) for m in metrics]
        lines.append(f"| {model} | " + " | ".join(cells) + " |")

    if highlight_system and highlight_system in measured and len(measured) > 1:
        imp = improvement_table(measured, highlight_system, metrics=metrics)
        cells = [f"{imp[m]:+.2f}%" for m in metrics]
        lines.append(f"| Imp. ({highlight_system}) | " + " | ".join(cells) + " |")
    return "\n".join(lines)
