"""Hyper-parameter grid search on the validation split.

The paper (Sec. V-A4) tunes every method's learning rate in
{0.001, 0.003, 0.005, 0.008, 0.01} and dropout in {0, ..., 0.5} by grid
search on the validation set. :func:`grid_search` reproduces that protocol
for any registered model name.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace

from ..data.preprocess import PreparedDataset
from .experiment import ExperimentConfig, ExperimentRunner

__all__ = ["GridPoint", "GridSearchResult", "grid_search", "PAPER_LR_GRID", "PAPER_DROPOUT_GRID"]

PAPER_LR_GRID = (0.001, 0.003, 0.005, 0.008, 0.01)
PAPER_DROPOUT_GRID = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5)


@dataclass(frozen=True)
class GridPoint:
    """One hyper-parameter combination and its validation score."""

    lr: float
    dropout: float
    valid_metric: float


@dataclass
class GridSearchResult:
    """All evaluated grid points plus the winning configuration."""

    model: str
    metric: str
    points: list[GridPoint]

    @property
    def best(self) -> GridPoint:
        return max(self.points, key=lambda p: p.valid_metric)


def grid_search(
    dataset: PreparedDataset,
    model_name: str,
    base_config: ExperimentConfig,
    lrs: tuple[float, ...] = (0.003, 0.005, 0.008),
    dropouts: tuple[float, ...] = (0.1,),
    metric: str = "M@20",
) -> GridSearchResult:
    """Fit ``model_name`` for every (lr, dropout) pair; select on validation.

    Uses a fresh :class:`ExperimentRunner` per point so no state leaks
    between configurations. Deliberately evaluates on the *validation*
    split — the test split stays untouched for the final comparison.
    """
    from ..data.dataset import DataLoader
    from .metrics import evaluate_scores

    points: list[GridPoint] = []
    for lr, dropout in itertools.product(lrs, dropouts):
        config = replace(base_config, lr=lr, dropout=dropout)
        runner = ExperimentRunner(dataset, config)
        recommender = runner.build(model_name)
        recommender.fit(dataset)
        loader = DataLoader(dataset.validation, batch_size=128)
        import numpy as np

        scores, targets = [], []
        for batch in loader:
            scores.append(recommender.score_batch(batch))
            targets.append(batch.target_classes)
        metrics = evaluate_scores(np.concatenate(scores), np.concatenate(targets))
        points.append(GridPoint(lr=lr, dropout=dropout, valid_metric=metrics[metric]))
    return GridSearchResult(model=model_name, metric=metric, points=points)
