"""Exact top-k selection with stable, index-ascending tie-breaking.

Every ranked surface in the repository — ``Recommender.top_k``, the live
:class:`~repro.serve.RecommenderService`, the HR/MRR metrics — needs "the
k best item indices, best first, earliest index wins ties". A full
``np.argsort`` of the score matrix is O(n log n) per row even when k is
tiny; :func:`top_k_indices` gets the identical answer in O(n + k log k)
per row via ``np.argpartition``-style selection, then a sort of only the k
survivors. The equivalence (including tie order) is asserted in
``tests/eval/test_topk.py`` and measured in ``benchmarks/bench_supp3_topk.py``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices", "topk_recall"]


def top_k_indices(scores: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries per row, best first.

    Exactly equivalent to ``np.argsort(-scores, axis=-1, kind="stable")[..., :k]``
    — equal scores are returned in ascending index order — but without
    sorting the full row when ``k < n``.

    Accepts a 1-D vector or a 2-D ``[rows, n]`` matrix; the result keeps
    the input's leading shape with a final axis of ``min(k, n)`` (``k <= 0``
    yields an empty final axis).
    """
    scores = np.asarray(scores)
    if scores.ndim not in (1, 2):
        raise ValueError(f"scores must be 1-D or 2-D, got shape {scores.shape}")
    squeeze = scores.ndim == 1
    if squeeze:
        scores = scores[None, :]
    rows, n = scores.shape

    if k <= 0:
        result = np.empty((rows, 0), dtype=np.int64)
        return result[0] if squeeze else result
    if k >= n:
        result = np.argsort(-scores, axis=1, kind="stable")
        return result[0] if squeeze else result

    # Value of the k-th largest entry per row (ties may straddle it).
    kth = np.partition(scores, n - k, axis=1)[:, n - k : n - k + 1]
    greater = scores > kth
    # Fill the remaining slots with the *lowest-index* entries equal to the
    # threshold — that is precisely the stable argsort's tie order.
    need = k - greater.sum(axis=1, keepdims=True)
    equal = scores == kth
    take_equal = equal & (np.cumsum(equal, axis=1) <= need)

    # np.nonzero walks row-major, so each row's k candidates come out in
    # ascending column order; the reshape is safe because every row has
    # exactly k True cells by construction.
    candidates = np.nonzero(greater | take_equal)[1].reshape(rows, k)
    candidate_scores = np.take_along_axis(scores, candidates, axis=1)
    # Stable sort of k ascending-index candidates by descending score keeps
    # equal-score candidates in ascending index order.
    order = np.argsort(-candidate_scores, axis=1, kind="stable")
    result = np.take_along_axis(candidates, order, axis=1)
    return result[0] if squeeze else result


def topk_recall(reference: np.ndarray, approximate: np.ndarray, k: int) -> float:
    """Fraction of the top-``k`` reference indices the approximate list kept.

    The standard ANN quality metric (``repro.retrieval``): order within the
    top-``k`` is ignored, membership is what counts. Accepts 1-D index lists
    or 2-D ``[rows, >=k]`` matrices (averaged over rows).
    """
    reference = np.atleast_2d(np.asarray(reference))
    approximate = np.atleast_2d(np.asarray(approximate))
    if reference.shape[0] != approximate.shape[0]:
        raise ValueError(
            f"row mismatch: reference {reference.shape[0]} vs approximate {approximate.shape[0]}"
        )
    hits = 0
    for ref_row, approx_row in zip(reference, approximate):
        hits += len(np.intersect1d(ref_row[:k], approx_row[:k], assume_unique=True))
    return hits / (k * reference.shape[0])
