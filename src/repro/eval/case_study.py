"""Case-study tooling (paper Sec. V-G, Fig. 7).

Fig. 7 shows one real session and the top-5 items recalled by SGNN-Self,
SGNN-Seq-Self, SGNN-Dyadic, and EMBSR. :func:`run_case_study` reproduces
that analysis for any prepared example against any set of fitted systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.dataset import collate
from ..data.preprocess import PreparedDataset
from ..data.schema import MacroSession
from .recommender import Recommender

__all__ = ["CaseStudyRow", "run_case_study", "find_interesting_session"]


@dataclass
class CaseStudyRow:
    """Top-K list of one system for the case-study session."""

    model: str
    top_items: list[int]
    target_rank: int
    hit_at_k: bool


def run_case_study(
    example: MacroSession,
    systems: dict[str, Recommender],
    k: int = 5,
) -> list[CaseStudyRow]:
    """Score one session with every system and report its top-K lists."""
    batch = collate([example])
    rows = []
    for name, recommender in systems.items():
        scores = recommender.score_batch(batch)[0]
        order = np.argsort(-scores, kind="stable")
        rank = int(np.where(order == example.target - 1)[0][0]) + 1
        rows.append(
            CaseStudyRow(
                model=name,
                top_items=[int(i) + 1 for i in order[:k]],
                target_rank=rank,
                hit_at_k=rank <= k,
            )
        )
    return rows


def find_interesting_session(
    dataset: PreparedDataset,
    systems: dict[str, Recommender],
    macro_only: str,
    full_model: str,
    k: int = 5,
    max_candidates: int = 200,
) -> MacroSession | None:
    """Find a test session where micro-behavior information flips the outcome.

    Mirrors Fig. 7's narrative: the macro-only system misses the target in
    its top-K while the micro-behavior-aware system recalls it.
    """
    for example in dataset.test[:max_candidates]:
        rows = {r.model: r for r in run_case_study(example, systems, k=k)}
        if not rows[macro_only].hit_at_k and rows[full_model].hit_at_k:
            return example
    return None
