"""Evaluation harness: metrics, training, experiments, significance."""

from .analysis import (
    improvement_table,
    repeat_vs_explore_breakdown,
    session_length_breakdown,
)
from .case_study import CaseStudyRow, find_interesting_session, run_case_study
from .experiment import (
    MODEL_NAMES,
    ExperimentConfig,
    ExperimentResult,
    ExperimentRunner,
)
from .metrics import evaluate_scores, hit_rate, mrr, ranks_of_targets
from .recommender import Recommender
from .reporting import format_results_markdown
from .significance import SignificanceResult, wilcoxon_reciprocal_ranks
from .trainer import NeuralRecommender, TrainConfig, Trainer
from .tuning import GridPoint, GridSearchResult, grid_search

__all__ = [
    "evaluate_scores",
    "hit_rate",
    "mrr",
    "ranks_of_targets",
    "Recommender",
    "TrainConfig",
    "Trainer",
    "NeuralRecommender",
    "ExperimentConfig",
    "ExperimentResult",
    "ExperimentRunner",
    "MODEL_NAMES",
    "SignificanceResult",
    "wilcoxon_reciprocal_ranks",
    "CaseStudyRow",
    "run_case_study",
    "find_interesting_session",
    "improvement_table",
    "session_length_breakdown",
    "repeat_vs_explore_breakdown",
    "grid_search",
    "GridPoint",
    "GridSearchResult",
    "format_results_markdown",
]
