"""Statistical significance of per-session ranking improvements.

The paper reports Wilcoxon signed-rank tests with p << 0.01 for EMBSR over
the best baseline (Sec. V-B). We apply the same test to the paired
per-session reciprocal ranks of two systems.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from .metrics import ranks_of_targets

__all__ = ["SignificanceResult", "wilcoxon_reciprocal_ranks"]


@dataclass(frozen=True)
class SignificanceResult:
    """Outcome of a paired Wilcoxon signed-rank test."""

    statistic: float
    p_value: float
    mean_improvement: float  # mean difference in reciprocal rank (a - b)

    @property
    def significant(self) -> bool:
        return self.p_value < 0.01

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"Wilcoxon W={self.statistic:.1f}, p={self.p_value:.2e} "
            f"({verdict}), mean RR improvement={self.mean_improvement:+.4f}"
        )


def wilcoxon_reciprocal_ranks(
    scores_a: np.ndarray,
    scores_b: np.ndarray,
    target_classes: np.ndarray,
    k: int = 20,
) -> SignificanceResult:
    """Test whether system A's per-session reciprocal ranks beat system B's."""
    ranks_a = ranks_of_targets(scores_a, target_classes).astype(np.float64)
    ranks_b = ranks_of_targets(scores_b, target_classes).astype(np.float64)
    rr_a = np.where(ranks_a <= k, 1.0 / ranks_a, 0.0)
    rr_b = np.where(ranks_b <= k, 1.0 / ranks_b, 0.0)
    diff = rr_a - rr_b
    if np.allclose(diff, 0.0):
        return SignificanceResult(statistic=0.0, p_value=1.0, mean_improvement=0.0)
    res = stats.wilcoxon(rr_a, rr_b, zero_method="wilcox", alternative="greater")
    return SignificanceResult(
        statistic=float(res.statistic),
        p_value=float(res.pvalue),
        mean_improvement=float(diff.mean()),
    )
