"""Ranking metrics (paper Sec. V-A3): Hit Rate and MRR at top-K.

Both are reported in percent, matching the paper's tables. ``H@K`` is the
fraction of test cases whose ground truth appears in the top-K list
(Eq. 21); ``M@K`` is the mean reciprocal rank with ranks beyond K zeroed
(Eq. 22).
"""

from __future__ import annotations

import numpy as np

__all__ = ["ranks_of_targets", "hit_rate", "mrr", "evaluate_scores"]


def ranks_of_targets(scores: np.ndarray, target_classes: np.ndarray) -> np.ndarray:
    """1-based rank of each target under descending scores.

    Ties are broken pessimistically (tied competitors count as ranked
    ahead), which makes the metrics reproducible across BLAS backends.
    """
    scores = np.asarray(scores)
    target_classes = np.asarray(target_classes, dtype=np.int64)
    if scores.ndim != 2:
        raise ValueError(f"scores must be [B, num_items], got {scores.shape}")
    target_scores = scores[np.arange(len(target_classes)), target_classes]
    higher = (scores > target_scores[:, None]).sum(axis=1)
    ties_before = (
        (scores == target_scores[:, None]).sum(axis=1) - 1
    )  # other items tied with the target
    return higher + ties_before + 1


def hit_rate(ranks: np.ndarray, k: int) -> float:
    """H@K in percent."""
    ranks = np.asarray(ranks)
    return float((ranks <= k).mean() * 100.0)


def mrr(ranks: np.ndarray, k: int) -> float:
    """M@K in percent (reciprocal rank zeroed beyond K)."""
    ranks = np.asarray(ranks, dtype=np.float64)
    rr = np.where(ranks <= k, 1.0 / ranks, 0.0)
    return float(rr.mean() * 100.0)


def evaluate_scores(
    scores: np.ndarray,
    target_classes: np.ndarray,
    ks: tuple[int, ...] = (5, 10, 20),
) -> dict[str, float]:
    """Compute ``H@K`` and ``M@K`` for every requested K."""
    ranks = ranks_of_targets(scores, target_classes)
    result: dict[str, float] = {}
    for k in ks:
        result[f"H@{k}"] = hit_rate(ranks, k)
        result[f"M@{k}"] = mrr(ranks, k)
    return result
