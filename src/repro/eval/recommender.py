"""The common recommender interface shared by EMBSR and every baseline.

``Recommender.fit`` consumes prepared training/validation examples;
``score_batch`` returns a dense score matrix over all real items
(class ``i`` scores item id ``i + 1``, consistent with
``SessionBatch.target_classes``).
"""

from __future__ import annotations

import abc

import numpy as np

from ..data.dataset import SessionBatch
from ..data.preprocess import PreparedDataset

__all__ = ["Recommender"]


class Recommender(abc.ABC):
    """Abstract recommender: fit on a dataset, score padded batches."""

    name: str = "recommender"

    @abc.abstractmethod
    def fit(self, dataset: PreparedDataset) -> "Recommender":
        """Train (or index) the model on the dataset's train split."""

    @abc.abstractmethod
    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        """Return [B, num_items] scores (higher = more likely next item)."""

    def top_k(self, batch: SessionBatch, k: int) -> np.ndarray:
        """Dense ids of the top-``k`` items per session, best first."""
        scores = self.score_batch(batch)
        order = np.argsort(-scores, axis=1, kind="stable")[:, :k]
        return order + 1
