"""The common recommender interface shared by EMBSR and every baseline.

``Recommender.fit`` consumes prepared training/validation examples;
``score_batch`` returns a dense score matrix over all real items
(class ``i`` scores item id ``i + 1``, consistent with
``SessionBatch.target_classes``).
"""

from __future__ import annotations

import abc
import pathlib

import numpy as np

from ..data.dataset import SessionBatch
from ..data.preprocess import PreparedDataset
from .topk import top_k_indices

__all__ = ["Recommender"]


class Recommender(abc.ABC):
    """Abstract recommender: fit on a dataset, score padded batches."""

    name: str = "recommender"

    @abc.abstractmethod
    def fit(self, dataset: PreparedDataset) -> "Recommender":
        """Train (or index) the model on the dataset's train split."""

    @abc.abstractmethod
    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        """Return [B, num_items] scores (higher = more likely next item)."""

    # -- persistence (overridden where the system has parameters) -------
    def save(self, path: str | pathlib.Path) -> None:
        """Persist fitted state to ``path`` so serving can skip retraining.

        Parametric systems override this (see ``NeuralRecommender.save``);
        non-parametric ones (S-POP, SKNN) re-index in seconds and opt out.
        """
        raise NotImplementedError(
            f"{self.name} is non-parametric and does not write artifacts: "
            "it has no weights to persist — re-fit() it on the dataset "
            "instead (seconds, not epochs). See docs/registry.md."
        )

    def load(self, dataset: PreparedDataset, path: str | pathlib.Path) -> "Recommender":
        """Restore state saved by :meth:`save`; the inverse round-trip.

        ``dataset`` supplies the architecture dimensions (vocabulary sizes)
        the checkpoint was trained with — loading never touches the train
        split, so a gateway can boot from disk in milliseconds.
        """
        raise NotImplementedError(
            f"{self.name} is non-parametric and cannot load artifacts: "
            "nothing was ever saved for it — re-fit() it on the dataset "
            "instead (seconds, not epochs). See docs/registry.md."
        )

    def top_k(self, batch: SessionBatch, k: int) -> np.ndarray:
        """Dense ids of the top-``k`` items per session, best first."""
        return top_k_indices(self.score_batch(batch), k) + 1
