"""Post-hoc analysis utilities.

Tools an adopter of the library would reach for after training:

* :func:`improvement_table` — the paper's "Imp." column (relative gain of
  one system over the best competitor, per metric).
* :func:`session_length_breakdown` — metric values bucketed by macro-item
  session length (standard SR analysis; shows where graph models win).
* :func:`repeat_vs_explore_breakdown` — metrics split by whether the ground
  truth already appeared in the session (the axis separating the JD-like
  and trivago-like regimes in the paper's Sec. V-B discussion).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..data.schema import MacroSession
from .metrics import evaluate_scores, ranks_of_targets

__all__ = [
    "improvement_table",
    "session_length_breakdown",
    "repeat_vs_explore_breakdown",
]


def improvement_table(
    measured: dict[str, dict[str, float]],
    system: str,
    metrics: tuple[str, ...] = ("H@5", "H@10", "H@20", "M@5", "M@10", "M@20"),
) -> dict[str, float]:
    """Relative improvement (%) of ``system`` over the best other system.

    Matches the paper's "Imp." column in Table III: positive values mean
    ``system`` leads; negative values mean the best competitor does.
    """
    out: dict[str, float] = {}
    for metric in metrics:
        ours = measured[system][metric]
        best_other = max(
            row[metric] for name, row in measured.items() if name != system
        )
        if best_other == 0:
            out[metric] = float("inf") if ours > 0 else 0.0
        else:
            out[metric] = (ours - best_other) / best_other * 100.0
    return out


@dataclass(frozen=True)
class Bucket:
    """One row of a breakdown table."""

    label: str
    count: int
    metrics: dict[str, float]


def _bucketize(
    scores: np.ndarray,
    target_classes: np.ndarray,
    assignment: np.ndarray,
    labels: dict[int, str],
    ks: tuple[int, ...],
) -> list[Bucket]:
    buckets = []
    for key in sorted(labels):
        mask = assignment == key
        if not mask.any():
            continue
        metrics = evaluate_scores(scores[mask], target_classes[mask], ks=ks)
        buckets.append(Bucket(label=labels[key], count=int(mask.sum()), metrics=metrics))
    return buckets


def session_length_breakdown(
    examples: list[MacroSession],
    scores: np.ndarray,
    target_classes: np.ndarray,
    edges: tuple[int, ...] = (2, 4, 7),
    ks: tuple[int, ...] = (10, 20),
) -> list[Bucket]:
    """Split metrics by macro-session length (short / medium / long / ...)."""
    if len(examples) != scores.shape[0]:
        raise ValueError("examples and scores must align")
    lengths = np.array([len(ex) for ex in examples])
    assignment = np.searchsorted(np.asarray(edges), lengths, side="right")
    labels = {}
    bounds = (0,) + tuple(edges) + (None,)
    for i in range(len(bounds) - 1):
        lo = bounds[i] + 1 if i else 1
        hi = bounds[i + 1]
        labels[i] = f"len {lo}-{hi}" if hi is not None else f"len >{bounds[i]}"
    return _bucketize(scores, target_classes, assignment, labels, ks)


def repeat_vs_explore_breakdown(
    examples: list[MacroSession],
    scores: np.ndarray,
    target_classes: np.ndarray,
    ks: tuple[int, ...] = (10, 20),
) -> list[Bucket]:
    """Split metrics by whether the ground truth was already in the session."""
    if len(examples) != scores.shape[0]:
        raise ValueError("examples and scores must align")
    assignment = np.array(
        [int(ex.target in ex.macro_items) for ex in examples]
    )
    labels = {0: "explore (target unseen)", 1: "repeat (target in session)"}
    return _bucketize(scores, target_classes, assignment, labels, ks)
