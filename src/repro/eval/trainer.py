"""Training loop for the neural models.

Mirrors the paper's protocol (Sec. V-A4): Adam optimizer, mini-batches,
model selection on the validation split (we track MRR@20), and a bounded
epoch budget. Gradient clipping and StepLR decay follow the SR-GNN family's
reference implementations.

Crash safety (``docs/reliability.md``): :meth:`Trainer.fit` periodically
writes the *full* training state — parameters, Adam moments, StepLR
position, epoch/batch cursor, loader shuffle epoch, and every model RNG
stream — through an atomic temp-file+rename, and :meth:`Trainer.resume`
continues a killed run to results bit-identical with an uninterrupted one.
A divergence watchdog rolls back NaN/Inf batches, halves the LR, and
aborts with a clear error once its retry budget is spent.
"""

from __future__ import annotations

import pathlib
from dataclasses import asdict, dataclass
from typing import Callable

import numpy as np

from ..autograd import default_dtype, no_grad
from ..data.dataset import DataLoader, SessionBatch
from ..data.preprocess import PreparedDataset
from ..nn import Adam, Module, StepLR, clip_grad_norm, cross_entropy
from ..reliability import (
    DivergenceWatchdog,
    TrainingState,
    capture_rng_states,
    failpoint,
    load_training_state,
    restore_rng_states,
    save_training_state,
)
from .metrics import evaluate_scores
from .recommender import Recommender

__all__ = ["TrainConfig", "Trainer", "NeuralRecommender"]

# Resuming with any of these changed would silently train a different run;
# epochs/patience/verbose may legitimately differ (e.g. extending a run).
_RESUME_CRITICAL_FIELDS = (
    "batch_size",
    "lr",
    "weight_decay",
    "grad_clip",
    "lr_step",
    "lr_gamma",
    "selection_metric",
    "max_ops_per_item",
    "seed",
    "dtype",
)


@dataclass
class TrainConfig:
    """Hyper-parameters of the optimization loop."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.003
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    lr_step: int = 3
    lr_gamma: float = 0.5
    patience: int = 3          # early stop after this many non-improving epochs
    selection_metric: str = "M@20"
    max_ops_per_item: int = 6
    seed: int = 0
    dtype: str = "float64"     # "float32" halves memory traffic (docs/performance.md)
    verbose: bool = False
    # -- reliability knobs (docs/reliability.md) ---------------------------
    checkpoint_path: str | None = None   # training-state file; None disables
    checkpoint_every: int = 0            # also save every N batches (0 = epoch ends only)
    resume_from: str | None = None       # continue fit() from this state file
    watchdog: bool = True                # NaN/Inf rollback + LR halving
    watchdog_retries: int = 3
    watchdog_grad_limit: float | None = None  # extra ceiling on pre-clip grad norm


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    valid_metric: float


class Trainer:
    """Fits a ``Module`` that maps :class:`SessionBatch` -> logits."""

    def __init__(self, model: Module, config: TrainConfig):
        self.model = model
        self.config = config
        self.history: list[EpochStats] = []

    # ------------------------------------------------------------------
    def fit(self, dataset: PreparedDataset) -> "Trainer":
        if self.config.resume_from:
            return self.resume(dataset, self.config.resume_from)
        return self._run(dataset, state=None)

    def resume(self, dataset: PreparedDataset, path: str | pathlib.Path) -> "Trainer":
        """Continue an interrupted :meth:`fit` from a training-state file.

        The model must be freshly constructed with the same architecture
        switches; optimization-critical config fields are validated against
        the saved run so a resumed run cannot silently diverge from it.
        """
        state = load_training_state(path)
        self._validate_resume_config(state.config, path)
        return self._run(dataset, state=state)

    def _validate_resume_config(self, saved: dict, path) -> None:
        current = asdict(self.config)
        mismatched = {
            name: (saved.get(name), current[name])
            for name in _RESUME_CRITICAL_FIELDS
            if saved.get(name) != current[name]
        }
        if mismatched:
            detail = ", ".join(
                f"{name}: saved={was!r} != current={now!r}"
                for name, (was, now) in sorted(mismatched.items())
            )
            raise ValueError(f"cannot resume from {path}: config mismatch ({detail})")

    # ------------------------------------------------------------------
    def _run(self, dataset: PreparedDataset, state: TrainingState | None) -> "Trainer":
        cfg = self.config
        optimizer = Adam(self.model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step, gamma=cfg.lr_gamma)
        train_loader = DataLoader(
            dataset.train,
            batch_size=cfg.batch_size,
            shuffle=True,
            seed=cfg.seed,
            max_ops_per_item=cfg.max_ops_per_item,
        )

        best_metric = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale = 0
        start_epoch = start_batch = global_step = 0
        epoch_losses: list[float] = []
        if state is not None:
            self.model.load_state_dict(state.model_state)
            optimizer.load_state_dict(state.optimizer_state)
            scheduler.load_state_dict(state.scheduler_state)
            restore_rng_states(self.model, state.rng_states)
            start_epoch, start_batch = state.epoch, state.batch_index
            global_step = state.global_step
            best_metric, best_state, stale = state.best_metric, state.best_state, state.stale
            self.history = [EpochStats(**h) for h in state.history]
            epoch_losses = list(state.epoch_losses)

        watchdog = (
            DivergenceWatchdog(
                self.model,
                optimizer,
                max_retries=cfg.watchdog_retries,
                grad_limit=cfg.watchdog_grad_limit,
                on_lr_change=scheduler.scale_lr,
            )
            if cfg.watchdog
            else None
        )

        def checkpoint(epoch: int, next_batch: int, losses: list[float]) -> None:
            if cfg.checkpoint_path is None:
                return
            save_training_state(
                cfg.checkpoint_path,
                TrainingState(
                    epoch=epoch,
                    batch_index=next_batch,
                    global_step=global_step,
                    model_state=self.model.state_dict(),
                    optimizer_state=optimizer.state_dict(),
                    scheduler_state=scheduler.state_dict(),
                    loader_state={"seed": cfg.seed, "epoch": epoch},
                    rng_states=capture_rng_states(self.model),
                    best_metric=float(best_metric),
                    best_state=best_state,
                    stale=stale,
                    history=[asdict(h) for h in self.history],
                    epoch_losses=[float(x) for x in losses],
                    config=asdict(self.config),
                ),
            )

        for epoch in range(start_epoch, cfg.epochs):
            self.model.train()
            train_loader.set_epoch(epoch)
            losses = epoch_losses if epoch == start_epoch else []
            skip = start_batch if epoch == start_epoch else 0
            for batch_index, batch in enumerate(train_loader):
                if batch_index < skip:
                    continue  # replaying a resumed epoch up to the cursor
                loss_value = self._train_batch(
                    batch, optimizer, watchdog, epoch=epoch, batch_index=batch_index
                )
                global_step += 1
                losses.append(loss_value)
                if cfg.checkpoint_every and global_step % cfg.checkpoint_every == 0:
                    checkpoint(epoch, batch_index + 1, losses)
                failpoint("trainer.after_batch", {"epoch": epoch, "batch": batch_index})

            scheduler.step()
            valid = self.evaluate(dataset.validation, batch_size=cfg.batch_size)
            metric = valid[cfg.selection_metric]
            self.history.append(EpochStats(epoch, float(np.mean(losses)), metric))
            if cfg.verbose:
                print(
                    f"epoch {epoch}: loss={np.mean(losses):.4f} "
                    f"{cfg.selection_metric}={metric:.2f}"
                )
            if metric > best_metric:
                best_metric = metric
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
            checkpoint(epoch + 1, 0, [])
            failpoint("trainer.after_epoch", {"epoch": epoch})
            if stale >= self.config.patience:
                break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def _train_batch(
        self,
        batch: SessionBatch,
        optimizer: Adam,
        watchdog: DivergenceWatchdog | None,
        epoch: int,
        batch_index: int,
    ) -> float:
        """One optimization step, retried under the divergence watchdog."""
        cfg = self.config
        while True:
            optimizer.zero_grad()
            logits = self.model(batch)
            loss = cross_entropy(logits, batch.target_classes)
            failpoint("trainer.loss", loss)
            loss_value = float(loss.item())
            loss.backward()
            grad_norm = clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            if watchdog is None or watchdog.healthy(loss_value, grad_norm):
                optimizer.step()
                if watchdog is not None:
                    watchdog.record_good()
                return loss_value
            watchdog.recover(
                where=f"epoch {epoch}, batch {batch_index}",
                loss=loss_value,
                grad_norm=grad_norm,
            )

    # ------------------------------------------------------------------
    def evaluate(
        self,
        examples,
        ks: tuple[int, ...] = (5, 10, 20),
        batch_size: int = 128,
    ) -> dict[str, float]:
        """HR/MRR of the current model over ``examples``."""
        scores, targets = self.predict(examples, batch_size=batch_size)
        return evaluate_scores(scores, targets, ks=ks)

    def predict(self, examples, batch_size: int = 128) -> tuple[np.ndarray, np.ndarray]:
        """Score matrix and target classes over ``examples`` (eval mode)."""
        self.model.eval()
        loader = DataLoader(
            examples, batch_size=batch_size, max_ops_per_item=self.config.max_ops_per_item
        )
        all_scores, all_targets = [], []
        with no_grad():
            for batch in loader:
                logits = self.model(batch)
                all_scores.append(logits.data)
                all_targets.append(batch.target_classes)
        return np.concatenate(all_scores), np.concatenate(all_targets)


class NeuralRecommender(Recommender):
    """Adapts a model factory + trainer into the :class:`Recommender` API."""

    def __init__(
        self,
        name: str,
        model_factory: Callable[[PreparedDataset], Module],
        train_config: TrainConfig | None = None,
    ):
        self.name = name
        self._factory = model_factory
        self.train_config = train_config or TrainConfig()
        self.trainer: Trainer | None = None

    @property
    def model(self) -> Module:
        if self.trainer is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        return self.trainer.model

    def fit(self, dataset: PreparedDataset) -> "NeuralRecommender":
        # Build AND train under the configured dtype so parameters and every
        # intermediate share it (mixing dtypes silently upcasts to float64).
        with default_dtype(self.train_config.dtype):
            model = self._factory(dataset)
            self.trainer = Trainer(model, self.train_config)
            self.trainer.fit(dataset)
        return self

    def save(self, path) -> None:
        """Checkpoint the fitted model's parameters (``.npz`` archive)."""
        from ..nn import save_checkpoint

        save_checkpoint(self.model, path)

    def load(self, dataset: PreparedDataset, path) -> "NeuralRecommender":
        """Rebuild the architecture for ``dataset`` and load a checkpoint.

        The factory must be constructed with the same switches (dim, seed,
        ...) used at training time; ``load_checkpoint`` is strict about
        names and shapes, so a mismatched architecture fails loudly.
        """
        from ..nn import load_checkpoint

        with default_dtype(self.train_config.dtype):
            model = self._factory(dataset)
            load_checkpoint(model, path)
        self.trainer = Trainer(model, self.train_config)
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        model = self.model
        model.eval()
        with no_grad():
            return model(batch).data
