"""Training loop for the neural models.

Mirrors the paper's protocol (Sec. V-A4): Adam optimizer, mini-batches,
model selection on the validation split (we track MRR@20), and a bounded
epoch budget. Gradient clipping and StepLR decay follow the SR-GNN family's
reference implementations.

Crash safety (``docs/reliability.md``): :meth:`Trainer.fit` periodically
writes the *full* training state — parameters, Adam moments, StepLR
position, epoch/batch cursor, loader shuffle epoch, and every model RNG
stream — through an atomic temp-file+rename, and :meth:`Trainer.resume`
continues a killed run to results bit-identical with an uninterrupted one.
A divergence watchdog rolls back NaN/Inf batches, halves the LR, and
aborts with a clear error once its retry budget is spent.
"""

from __future__ import annotations

import pathlib
from dataclasses import asdict, dataclass, field

import numpy as np

from ..autograd import default_dtype, no_grad
from ..data.dataset import DataLoader, SessionBatch
from ..data.preprocess import PreparedDataset
from ..nn import Adam, Module, StepLR, clip_grad_norm
from ..objectives import Objective, StepContext, build_objective
from ..reliability import (
    DivergenceWatchdog,
    TrainingState,
    capture_rng_states,
    failpoint,
    load_training_state,
    restore_rng_states,
    save_training_state,
)
from .metrics import evaluate_scores
from .recommender import Recommender

__all__ = ["TrainConfig", "Trainer", "NeuralRecommender"]

# Resuming with any of these changed would silently train a different run;
# epochs/patience/verbose may legitimately differ (e.g. extending a run).
# ``workers`` is deliberately absent: the shard grid (``grad_shards``)
# pins the math, so a run checkpointed under N workers may resume at any
# worker count and still land on bit-identical parameters.
_RESUME_CRITICAL_FIELDS = (
    "batch_size",
    "lr",
    "weight_decay",
    "grad_clip",
    "lr_step",
    "lr_gamma",
    "selection_metric",
    "max_ops_per_item",
    "seed",
    "dtype",
    "grad_shards",
    # Padded-length bucketing changes padded shapes, and padding is
    # math-bearing (masked positions still draw dropout), so a resumed run
    # must keep the same bucketing choice. ``compile`` is deliberately
    # absent: trace/replay is bitwise the eager step, so it may toggle
    # freely across restarts.
    "bucket_lengths",
    # The objective IS the math being optimized: resuming a run under a
    # different objective (or auxiliary weight) would silently train a
    # different model while reporting the old identity.
    "objective",
    "cl_weight",
)

# Popularity rankings embedded in artifacts are capped so an artifact for a
# huge catalogue stays small; degraded serving only ever pages the head.
_POPULARITY_LIMIT = 1024


@dataclass
class TrainConfig:
    """Hyper-parameters of the optimization loop."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.003
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    lr_step: int = 3
    lr_gamma: float = 0.5
    patience: int = 3          # early stop after this many non-improving epochs
    selection_metric: str = "M@20"
    max_ops_per_item: int = 6
    seed: int = 0
    dtype: str = "float64"     # "float32" halves memory traffic (docs/performance.md)
    verbose: bool = False
    # -- training objective (docs/objectives.md) ---------------------------
    objective: str = "ce"      # "ce" | "ssl" | "infonce" | "op-aux"
    cl_weight: float = 0.1     # weight of the auxiliary term in composites
    # -- parallelism knobs (docs/performance.md, "Parallelism") ------------
    workers: int = 1           # forked data-parallel workers (1 = in-process)
    # -- data-pipeline knobs (docs/data.md) --------------------------------
    # Both are pure execution strategy: packed storage collates bitwise the
    # same batches and prefetch only overlaps their construction with the
    # step, so neither is resume-critical and either may toggle freely
    # between (or during) runs.
    packed: bool = False       # columnar storage + zero-loop vectorized collate
    prefetch: bool = False     # double-buffered background collation
    # -- compiled-step knobs (docs/performance.md, "Compiled step") --------
    compile: bool = False      # trace/validate/replay training steps (bitwise-safe)
    bucket_lengths: bool = False  # quantize padded dims so tape shape keys repeat
    grad_shards: int = 0       # summation-tree grid; 0 = auto (max(workers, 1)).
                               # 1 trains the classic whole-batch path bit-for-bit;
                               # G > 1 is bit-identical across ANY worker count.
    # -- reliability knobs (docs/reliability.md) ---------------------------
    checkpoint_path: str | None = None   # training-state file; None disables
    checkpoint_every: int = 0            # also save every N batches (0 = epoch ends only)
    resume_from: str | None = None       # continue fit() from this state file
    watchdog: bool = True                # NaN/Inf rollback + LR halving
    watchdog_retries: int = 3
    watchdog_grad_limit: float | None = None  # extra ceiling on pre-clip grad norm


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    valid_metric: float
    # Per-component mean training losses, e.g. {"ce": ..., "infonce": ...}.
    # Empty for histories written before composable objectives existed.
    components: dict = field(default_factory=dict)


class _LossProbe:
    """Mutable stand-in for the loss tensor at the ``trainer.loss`` failpoint.

    On the executor path the real loss tensors live in the shards (or in
    forked workers) and only their reduced float comes back; armed fault
    actions still expect something with a mutable ``.data`` to poison.
    """

    __slots__ = ("data",)

    def __init__(self, value: float) -> None:
        self.data = np.asarray(value, dtype=np.float64)

    def item(self) -> float:
        return float(self.data)


class Trainer:
    """Fits a ``Module`` that maps :class:`SessionBatch` -> logits.

    ``spec`` optionally records the architecture identity (a
    :class:`~repro.registry.ModelSpec` dict) inside every training-state
    checkpoint, so resuming with a differently-built model fails with a
    config diff instead of a parameter shape mismatch deep in NumPy.
    """

    def __init__(
        self,
        model: Module,
        config: TrainConfig,
        spec: dict | None = None,
        objective: Objective | None = None,
    ):
        self.model = model
        self.config = config
        self.spec = spec
        # Usually resolved from config.objective at fit time (it needs the
        # dataset's operation count); an explicit instance wins.
        self.objective = objective
        self.history: list[EpochStats] = []

    # ------------------------------------------------------------------
    def fit(self, dataset: PreparedDataset) -> "Trainer":
        if self.config.resume_from:
            return self.resume(dataset, self.config.resume_from)
        return self._run(dataset, state=None)

    def resume(self, dataset: PreparedDataset, path: str | pathlib.Path) -> "Trainer":
        """Continue an interrupted :meth:`fit` from a training-state file.

        The model must be freshly constructed with the same architecture
        switches; optimization-critical config fields are validated against
        the saved run so a resumed run cannot silently diverge from it.
        """
        state = load_training_state(path)
        self._validate_resume_spec(state.spec, path)
        self._validate_resume_config(state.config, path)
        return self._run(dataset, state=state)

    def _validate_resume_spec(self, saved_spec: dict | None, path) -> None:
        """Architecture compatibility: spec recorded at save vs. ours now."""
        if saved_spec is None or self.spec is None:
            return  # one side has no spec (hand-built Trainer); shapes still checked
        from ..registry import ModelSpec

        mismatched = ModelSpec.from_dict(self.spec).architecture_mismatch(saved_spec)
        if mismatched:
            detail = ", ".join(
                f"{name}: saved={was[1]!r} != current={was[0]!r}"
                for name, was in sorted(mismatched.items())
            )
            raise ValueError(
                f"cannot resume from {path}: the checkpoint was written by a "
                f"different architecture ({detail})"
            )

    def _validate_resume_config(self, saved: dict, path) -> None:
        current = asdict(self.config)
        # Shard-grid normalization: checkpoints always record the *resolved*
        # grid (pre-parallelism checkpoints trained the classic grid, 1),
        # and a current config still on auto (0) adopts whatever the
        # checkpoint trained with — resuming never silently changes math.
        saved = dict(saved)
        saved.setdefault("grad_shards", 1)
        saved.setdefault("bucket_lengths", False)  # pre-bucketing checkpoints
        # Pre-objective checkpoints trained plain cross-entropy.
        saved.setdefault("objective", "ce")
        saved.setdefault("cl_weight", 0.1)
        if not current.get("grad_shards"):
            current["grad_shards"] = saved["grad_shards"]
        mismatched = {
            name: (saved.get(name), current[name])
            for name in _RESUME_CRITICAL_FIELDS
            if saved.get(name) != current[name]
        }
        if mismatched:
            detail = ", ".join(
                f"{name}: saved={was!r} != current={now!r}"
                for name, (was, now) in sorted(mismatched.items())
            )
            raise ValueError(f"cannot resume from {path}: config mismatch ({detail})")

    # ------------------------------------------------------------------
    def _resolved_grad_shards(self, state: TrainingState | None) -> int:
        """The effective summation-tree grid for this run.

        Explicit config wins; auto (0) follows the worker count, except on
        resume where it adopts the grid the checkpoint was trained with
        (so ``--workers`` may change freely across restarts).
        """
        cfg = self.config
        if cfg.grad_shards:
            return int(cfg.grad_shards)
        if state is not None:
            return int(state.config.get("grad_shards", 1)) or 1
        return max(int(cfg.workers), 1)

    def _make_executor(self, grad_shards: int, train_loader: DataLoader, dataset):
        """Executor for the shard grid: None (classic), serial, or forked.

        ``grad_shards == 1`` keeps the original whole-batch code path —
        including its persistent dropout streams — bit-for-bit. A grid
        needs the per-shard math; it runs in-process below 2 effective
        workers and forks a :class:`~repro.parallel.DataParallelEngine`
        otherwise (the engine doubles as the executor *and* fans out the
        validation passes).
        """
        if grad_shards <= 1:
            return None, None
        from ..parallel import DataParallelEngine, SerialShardExecutor

        cfg = self.config
        workers = min(max(int(cfg.workers), 1), grad_shards)
        if workers <= 1:
            return (
                SerialShardExecutor(
                    self.model, grad_shards=grad_shards, seed=cfg.seed,
                    compile=cfg.compile, objective=self.objective,
                ),
                None,
            )
        engine = DataParallelEngine(
            self.model,
            train_loader,
            workers=workers,
            grad_shards=grad_shards,
            seed=cfg.seed,
            dtype=cfg.dtype,
            eval_splits={"validation": dataset.validation},
            num_items=dataset.num_items,
            compile=cfg.compile,
            objective=self.objective,
        )
        return engine, engine

    def _make_compiled(self):
        """A :class:`~repro.compile.step.CompileEngine` when enabled, else None."""
        if not self.config.compile:
            return None
        from ..compile.step import CompileEngine

        return CompileEngine(self.model, objective=self.objective)

    def _run(self, dataset: PreparedDataset, state: TrainingState | None) -> "Trainer":
        cfg = self.config
        if cfg.packed:
            # Columnar storage: every loader below batches through the
            # vectorized collate, bit-identical to the object path.
            from ..data.packed import pack_dataset

            dataset = pack_dataset(dataset)
        optimizer = Adam(self.model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step, gamma=cfg.lr_gamma)
        train_loader = DataLoader(
            dataset.train,
            batch_size=cfg.batch_size,
            shuffle=True,
            seed=cfg.seed,
            max_ops_per_item=cfg.max_ops_per_item,
            reuse_buffers=True,  # batches are consumed before the next collate
            bucket_lengths=cfg.bucket_lengths,
            prefetch=cfg.prefetch,
        )
        if self.objective is None:
            self.objective = build_objective(
                cfg.objective,
                cl_weight=cfg.cl_weight,
                num_ops=dataset.num_operations,
            )
        grad_shards = self._resolved_grad_shards(state)
        compiled = self._make_compiled() if grad_shards <= 1 else None

        best_metric = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale = 0
        start_epoch = start_batch = global_step = 0
        epoch_losses: list[float] = []
        epoch_components: list[dict] = []
        if state is not None:
            self.model.load_state_dict(state.model_state)
            optimizer.load_state_dict(state.optimizer_state)
            scheduler.load_state_dict(state.scheduler_state)
            restore_rng_states(self.model, state.rng_states)
            start_epoch, start_batch = state.epoch, state.batch_index
            global_step = state.global_step
            best_metric, best_state, stale = state.best_metric, state.best_state, state.stale
            self.history = [EpochStats(**h) for h in state.history]
            epoch_losses = list(state.epoch_losses)
            epoch_components = [dict(c) for c in state.epoch_components]

        watchdog = (
            DivergenceWatchdog(
                self.model,
                optimizer,
                max_retries=cfg.watchdog_retries,
                grad_limit=cfg.watchdog_grad_limit,
                on_lr_change=scheduler.scale_lr,
            )
            if cfg.watchdog
            else None
        )

        def checkpoint(
            epoch: int, next_batch: int, losses: list[float], comps: list[dict]
        ) -> None:
            if cfg.checkpoint_path is None:
                return
            save_training_state(
                cfg.checkpoint_path,
                TrainingState(
                    epoch=epoch,
                    batch_index=next_batch,
                    global_step=global_step,
                    model_state=self.model.state_dict(),
                    optimizer_state=optimizer.state_dict(),
                    scheduler_state=scheduler.state_dict(),
                    loader_state={"seed": cfg.seed, "epoch": epoch},
                    rng_states=capture_rng_states(self.model),
                    best_metric=float(best_metric),
                    best_state=best_state,
                    stale=stale,
                    history=[asdict(h) for h in self.history],
                    epoch_losses=[float(x) for x in losses],
                    epoch_components=[dict(c) for c in comps],
                    config={**asdict(self.config), "grad_shards": grad_shards},
                    spec=self.spec,
                ),
            )

        executor, engine = self._make_executor(grad_shards, train_loader, dataset)
        try:
            for epoch in range(start_epoch, cfg.epochs):
                self.model.train()
                train_loader.set_epoch(epoch)
                losses = epoch_losses if epoch == start_epoch else []
                comp_losses = epoch_components if epoch == start_epoch else []
                skip = start_batch if epoch == start_epoch else 0
                if engine is not None:
                    # Workers collate their own shard rows; the master never
                    # materializes batches, it only walks the batch indices.
                    batch_iter = ((i, None) for i in range(len(train_loader)))
                else:
                    batch_iter = enumerate(train_loader)
                for batch_index, batch in batch_iter:
                    if batch_index < skip:
                        continue  # replaying a resumed epoch up to the cursor
                    loss_value, components = self._train_batch(
                        batch, optimizer, watchdog,
                        epoch=epoch, batch_index=batch_index, executor=executor,
                        compiled=compiled,
                    )
                    global_step += 1
                    losses.append(loss_value)
                    comp_losses.append(components)
                    if cfg.checkpoint_every and global_step % cfg.checkpoint_every == 0:
                        checkpoint(epoch, batch_index + 1, losses, comp_losses)
                    failpoint("trainer.after_batch", {"epoch": epoch, "batch": batch_index})

                scheduler.step()
                if engine is not None:
                    scores, targets = engine.predict("validation", batch_size=cfg.batch_size)
                    valid = evaluate_scores(scores, targets)
                else:
                    valid = self.evaluate(dataset.validation, batch_size=cfg.batch_size)
                metric = valid[cfg.selection_metric]
                means = {}
                if comp_losses:
                    means = {
                        name: float(np.mean([c.get(name, 0.0) for c in comp_losses]))
                        for name in comp_losses[0]
                    }
                self.history.append(EpochStats(epoch, float(np.mean(losses)), metric, means))
                if cfg.verbose:
                    print(
                        f"epoch {epoch}: loss={np.mean(losses):.4f} "
                        f"{cfg.selection_metric}={metric:.2f}"
                    )
                if metric > best_metric:
                    best_metric = metric
                    best_state = self.model.state_dict()
                    stale = 0
                else:
                    stale += 1
                checkpoint(epoch + 1, 0, [], [])
                failpoint("trainer.after_epoch", {"epoch": epoch})
                if stale >= self.config.patience:
                    break
        finally:
            if engine is not None:
                engine.shutdown()
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def _train_batch(
        self,
        batch: SessionBatch | None,
        optimizer: Adam,
        watchdog: DivergenceWatchdog | None,
        epoch: int,
        batch_index: int,
        executor=None,
        compiled=None,
    ) -> tuple[float, dict]:
        """One optimization step, retried under the divergence watchdog.

        Returns ``(loss, per-component losses)``. With an ``executor``
        (shard grid active) the forward/backward runs through
        :meth:`~repro.parallel.SerialShardExecutor.compute`; the retry
        counter feeds the per-shard dropout streams so a rolled-back batch
        redraws fresh masks, like the classic path does by consuming
        further along its persistent streams. The retry counter also feeds
        the objective's :class:`~repro.objectives.StepContext`, so
        objective randomness (augmented views) redraws alongside.
        """
        cfg = self.config
        retry = 0
        while True:
            optimizer.zero_grad()
            ctx = StepContext(
                seed=cfg.seed, epoch=epoch, batch_index=batch_index, shard=0, retry=retry
            )
            if executor is None and compiled is not None:
                # The engine guarantees replayed steps are bitwise the eager
                # forward/backward (validated per shape key, transactional
                # fallback otherwise), so this branch trains the exact
                # classic trajectory.
                loss = _LossProbe(compiled.step(batch, ctx=ctx))
                failpoint("trainer.loss", loss)
                loss_value = float(loss.item())
                components = dict(compiled.last_components)
            elif executor is None:
                self.objective.begin_step(ctx)
                parts = self.objective.compute(self.model, batch)
                loss = parts.loss
                failpoint("trainer.loss", loss)
                loss_value = float(loss.item())
                loss.backward()
                components = parts.component_values()
            else:
                loss = _LossProbe(executor.compute(epoch, batch_index, retry, batch=batch))
                failpoint("trainer.loss", loss)
                loss_value = float(loss.item())
                components = dict(executor.last_components)
            grad_norm = clip_grad_norm(self.model.parameters(), cfg.grad_clip)
            if watchdog is None or watchdog.healthy(loss_value, grad_norm):
                optimizer.step()
                if watchdog is not None:
                    watchdog.record_good()
                return loss_value, components
            watchdog.recover(
                where=f"epoch {epoch}, batch {batch_index}",
                loss=loss_value,
                grad_norm=grad_norm,
            )
            retry += 1

    # ------------------------------------------------------------------
    def evaluate(
        self,
        examples,
        ks: tuple[int, ...] = (5, 10, 20),
        batch_size: int = 128,
    ) -> dict[str, float]:
        """HR/MRR of the current model over ``examples``."""
        scores, targets = self.predict(examples, batch_size=batch_size)
        return evaluate_scores(scores, targets, ks=ks)

    def predict(self, examples, batch_size: int = 128) -> tuple[np.ndarray, np.ndarray]:
        """Score matrix and target classes over ``examples`` (eval mode).

        Runs under the configured dtype so standalone evaluation matches
        the in-training validation passes exactly (a float32 model scored
        in an ambient-float64 process would silently upcast).
        """
        self.model.eval()
        loader = DataLoader(
            examples, batch_size=batch_size, max_ops_per_item=self.config.max_ops_per_item
        )
        all_scores, all_targets = [], []
        with default_dtype(self.config.dtype), no_grad():
            for batch in loader:
                logits = self.model(batch)
                all_scores.append(logits.data)
                all_targets.append(batch.target_classes)
        return np.concatenate(all_scores), np.concatenate(all_targets)


class NeuralRecommender(Recommender):
    """Adapts a registry :class:`~repro.registry.ModelSpec` + trainer into
    the :class:`Recommender` API.

    The spec is the *only* architecture description this class holds — no
    closures, no factories — so a fitted model persists as a
    self-describing artifact (:meth:`save`) and reconstructs from the
    artifact path alone in any process (:meth:`from_artifact`).
    """

    def __init__(self, spec, train_config: TrainConfig | None = None):
        self.spec = spec
        self.name = spec.name
        self.train_config = train_config or spec.train_config()
        self.trainer: Trainer | None = None
        # Dataset context stashed at fit/load time so save() can write a
        # complete artifact: {"item_ids", "name", "fingerprint", "popularity"}.
        self._dataset_info: dict | None = None

    @property
    def model(self) -> Module:
        if self.trainer is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        return self.trainer.model

    def build_model(self) -> Module:
        """Construct the (untrained) module for this spec via the registry.

        Respects the ambient default dtype; callers that care wrap this in
        ``default_dtype(...)`` exactly like :meth:`fit` does.
        """
        from ..registry import build_module

        return build_module(self.spec)

    def _check_dims(self, dataset: PreparedDataset) -> None:
        if (dataset.num_items, dataset.num_operations) != (self.spec.num_items, self.spec.num_ops):
            raise ValueError(
                f"{self.name} spec was sized for {self.spec.num_items} items / "
                f"{self.spec.num_ops} operations but the dataset has "
                f"{dataset.num_items} / {dataset.num_operations}"
            )

    def _stash_dataset_info(self, dataset: PreparedDataset) -> None:
        from ..data.stats import dataset_fingerprint, popularity_ranking

        # Packed datasets carry their fingerprint (computed at pack time,
        # identical to the object-path digest); anything else is digested.
        fingerprint = getattr(dataset, "fingerprint", "") or dataset_fingerprint(dataset)
        self._dataset_info = {
            "item_ids": dataset.vocab.ordered_raw_ids(),
            "name": dataset.name,
            "fingerprint": fingerprint,
            "popularity": popularity_ranking(dataset, limit=_POPULARITY_LIMIT),
        }

    def fit(self, dataset: PreparedDataset) -> "NeuralRecommender":
        # Build AND train under the configured dtype so parameters and every
        # intermediate share it (mixing dtypes silently upcasts to float64).
        self._check_dims(dataset)
        with default_dtype(self.train_config.dtype):
            model = self.build_model()
            self.trainer = Trainer(model, self.train_config, spec=self.spec.to_dict())
            self.trainer.fit(dataset)
        self._stash_dataset_info(dataset)
        return self

    # -- persistence: self-describing artifacts -------------------------
    def save(self, path, metrics: dict | None = None) -> None:
        """Write the fitted model as a self-describing artifact bundle.

        The bundle (spec + item vocabulary + weights + metadata) is enough
        to reconstruct and serve this model in a process that has never
        seen the dataset; see ``docs/registry.md`` for the layout.
        """
        from ..artifacts import save_artifact

        model = self.model  # raises RuntimeError when unfitted
        if self._dataset_info is None:
            raise RuntimeError(
                f"{self.name} has no dataset context to persist; fit() or "
                "load() it before save()"
            )
        metadata = {
            "model": self.name,
            "dtype": self.train_config.dtype,
            "metrics": dict(metrics or {}),
            "dataset": {
                "name": self._dataset_info["name"],
                "fingerprint": self._dataset_info["fingerprint"],
                "num_items": self.spec.num_items,
                "num_ops": self.spec.num_ops,
            },
            "popularity": self._dataset_info["popularity"],
            "history": [asdict(h) for h in self.trainer.history],
        }
        save_artifact(
            path,
            spec=self.spec,
            weights=model.state_dict(),
            item_ids=self._dataset_info["item_ids"],
            metadata=metadata,
        )

    def load(self, dataset: PreparedDataset, path) -> "NeuralRecommender":
        """Restore weights saved for this architecture.

        Accepts both artifact bundles (validated against this spec — a
        mismatched architecture raises ``ValueError`` naming the differing
        fields) and legacy bare-parameter ``.npz`` checkpoints (strict
        name/shape matching as before).
        """
        from ..artifacts import try_load_artifact

        self._check_dims(dataset)
        bundle = try_load_artifact(path)
        if bundle is None:
            from ..nn import load_checkpoint

            with default_dtype(self.train_config.dtype):
                model = self.build_model()
                load_checkpoint(model, path)
        else:
            mismatched = self.spec.architecture_mismatch(bundle.spec)
            if mismatched:
                detail = ", ".join(
                    f"{name}: artifact={theirs!r} != requested={ours!r}"
                    for name, (ours, theirs) in sorted(mismatched.items())
                )
                raise ValueError(f"artifact {path} does not match this spec ({detail})")
            with default_dtype(self.train_config.dtype):
                model = self.build_model()
                model.load_state_dict(bundle.weights)
        self.trainer = Trainer(model, self.train_config, spec=self.spec.to_dict())
        self._stash_dataset_info(dataset)
        return self

    @classmethod
    def from_artifact(cls, artifact, train_config: TrainConfig | None = None) -> "NeuralRecommender":
        """Reconstruct a fitted recommender from an artifact — no dataset.

        ``artifact`` is a :class:`~repro.artifacts.ModelArtifact` or a path
        to one. This is the portability seam: the returned recommender
        scores batches bit-identically to the process that saved it.
        """
        from ..artifacts import ModelArtifact, load_artifact

        bundle = artifact if isinstance(artifact, ModelArtifact) else load_artifact(artifact)
        recommender = cls(bundle.spec, train_config)
        model = bundle.build_module()
        recommender.trainer = Trainer(model, recommender.train_config, spec=bundle.spec.to_dict())
        recommender._dataset_info = {
            "item_ids": list(bundle.item_ids),
            "name": bundle.metadata.get("dataset", {}).get("name", "unknown"),
            "fingerprint": bundle.metadata.get("dataset", {}).get("fingerprint", ""),
            "popularity": bundle.metadata.get("popularity", []),
        }
        return recommender

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        model = self.model
        model.eval()
        # Score under the training dtype: a float32 model must not upcast
        # to float64 just because the ambient default says so.
        with default_dtype(self.train_config.dtype), no_grad():
            return model(batch).data
