"""Training loop for the neural models.

Mirrors the paper's protocol (Sec. V-A4): Adam optimizer, mini-batches,
model selection on the validation split (we track MRR@20), and a bounded
epoch budget. Gradient clipping and StepLR decay follow the SR-GNN family's
reference implementations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..autograd import no_grad
from ..data.dataset import DataLoader, SessionBatch
from ..data.preprocess import PreparedDataset
from ..nn import Adam, Module, StepLR, clip_grad_norm, cross_entropy
from .metrics import evaluate_scores
from .recommender import Recommender

__all__ = ["TrainConfig", "Trainer", "NeuralRecommender"]


@dataclass
class TrainConfig:
    """Hyper-parameters of the optimization loop."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 0.003
    weight_decay: float = 0.0
    grad_clip: float = 5.0
    lr_step: int = 3
    lr_gamma: float = 0.5
    patience: int = 3          # early stop after this many non-improving epochs
    selection_metric: str = "M@20"
    max_ops_per_item: int = 6
    seed: int = 0
    verbose: bool = False


@dataclass
class EpochStats:
    epoch: int
    train_loss: float
    valid_metric: float


class Trainer:
    """Fits a ``Module`` that maps :class:`SessionBatch` -> logits."""

    def __init__(self, model: Module, config: TrainConfig):
        self.model = model
        self.config = config
        self.history: list[EpochStats] = []

    def fit(self, dataset: PreparedDataset) -> "Trainer":
        cfg = self.config
        optimizer = Adam(self.model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
        scheduler = StepLR(optimizer, step_size=cfg.lr_step, gamma=cfg.lr_gamma)
        train_loader = DataLoader(
            dataset.train,
            batch_size=cfg.batch_size,
            shuffle=True,
            seed=cfg.seed,
            max_ops_per_item=cfg.max_ops_per_item,
        )

        best_metric = -np.inf
        best_state: dict[str, np.ndarray] | None = None
        stale = 0
        for epoch in range(cfg.epochs):
            self.model.train()
            losses = []
            for batch in train_loader:
                optimizer.zero_grad()
                logits = self.model(batch)
                loss = cross_entropy(logits, batch.target_classes)
                loss.backward()
                clip_grad_norm(self.model.parameters(), cfg.grad_clip)
                optimizer.step()
                losses.append(loss.item())
            scheduler.step()

            valid = self.evaluate(dataset.validation, batch_size=cfg.batch_size)
            metric = valid[cfg.selection_metric]
            self.history.append(EpochStats(epoch, float(np.mean(losses)), metric))
            if cfg.verbose:
                print(
                    f"epoch {epoch}: loss={np.mean(losses):.4f} "
                    f"{cfg.selection_metric}={metric:.2f}"
                )
            if metric > best_metric:
                best_metric = metric
                best_state = self.model.state_dict()
                stale = 0
            else:
                stale += 1
                if stale >= cfg.patience:
                    break
        if best_state is not None:
            self.model.load_state_dict(best_state)
        return self

    def evaluate(
        self,
        examples,
        ks: tuple[int, ...] = (5, 10, 20),
        batch_size: int = 128,
    ) -> dict[str, float]:
        """HR/MRR of the current model over ``examples``."""
        scores, targets = self.predict(examples, batch_size=batch_size)
        return evaluate_scores(scores, targets, ks=ks)

    def predict(self, examples, batch_size: int = 128) -> tuple[np.ndarray, np.ndarray]:
        """Score matrix and target classes over ``examples`` (eval mode)."""
        self.model.eval()
        loader = DataLoader(
            examples, batch_size=batch_size, max_ops_per_item=self.config.max_ops_per_item
        )
        all_scores, all_targets = [], []
        with no_grad():
            for batch in loader:
                logits = self.model(batch)
                all_scores.append(logits.data)
                all_targets.append(batch.target_classes)
        return np.concatenate(all_scores), np.concatenate(all_targets)


class NeuralRecommender(Recommender):
    """Adapts a model factory + trainer into the :class:`Recommender` API."""

    def __init__(
        self,
        name: str,
        model_factory: Callable[[PreparedDataset], Module],
        train_config: TrainConfig | None = None,
    ):
        self.name = name
        self._factory = model_factory
        self.train_config = train_config or TrainConfig()
        self.trainer: Trainer | None = None

    @property
    def model(self) -> Module:
        if self.trainer is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        return self.trainer.model

    def fit(self, dataset: PreparedDataset) -> "NeuralRecommender":
        model = self._factory(dataset)
        self.trainer = Trainer(model, self.train_config)
        self.trainer.fit(dataset)
        return self

    def save(self, path) -> None:
        """Checkpoint the fitted model's parameters (``.npz`` archive)."""
        from ..nn import save_checkpoint

        save_checkpoint(self.model, path)

    def load(self, dataset: PreparedDataset, path) -> "NeuralRecommender":
        """Rebuild the architecture for ``dataset`` and load a checkpoint.

        The factory must be constructed with the same switches (dim, seed,
        ...) used at training time; ``load_checkpoint`` is strict about
        names and shapes, so a mismatched architecture fails loudly.
        """
        from ..nn import load_checkpoint

        model = self._factory(dataset)
        load_checkpoint(model, path)
        self.trainer = Trainer(model, self.train_config)
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        model = self.model
        model.eval()
        with no_grad():
            return model(batch).data
