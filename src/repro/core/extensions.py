"""Extensions beyond the published model.

The paper's conclusion sketches two future directions; both are
implemented here so the library covers the paper's full roadmap:

* **Operation importance weighting** ("whether it would be beneficial to
  weight ... micro-behavior operations according to their importance") —
  :class:`OperationImportance` learns a positive scalar per operation that
  scales its embedding everywhere it is consumed. A sigmoid gate keeps the
  weights in (0, 2) so no operation can dominate at initialization.
* **Operation filtering** ("...or filter...") —
  :func:`filter_operations` drops a configurable set of operation types
  from prepared examples, enabling controlled leave-one-operation-out
  studies (see ``benchmarks/bench_ext_op_weighting.py``).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data.schema import MacroSession
from ..nn import Embedding, Module
from ..nn.module import Parameter
from .embsr import EMBSR, EMBSRConfig

__all__ = ["OperationImportance", "WeightedOpEMBSR", "build_embsr_weighted_ops", "filter_operations"]


class OperationImportance(Module):
    """A learned positive importance weight per operation id.

    ``weight(o) = 2 * sigmoid(s_o)`` with ``s_o`` initialized to 0, so every
    operation starts at importance 1.0 and can be amplified toward 2 or
    suppressed toward 0 during training.
    """

    def __init__(self, num_ops: int):
        super().__init__()
        self.scores = Parameter(np.zeros(num_ops + 1))  # +1 for padding slot

    def forward(self, op_ids: np.ndarray) -> Tensor:
        """Return importance weights shaped like ``op_ids`` + trailing 1."""
        gathered = self.scores.take(np.asarray(op_ids, dtype=np.int64), axis=0)
        return (gathered.sigmoid() * 2.0).unsqueeze(-1)

    def values(self) -> np.ndarray:
        """Current importance per operation id (for inspection/reports)."""
        return 2.0 / (1.0 + np.exp(-self.scores.data))


class _WeightedEmbedding(Module):
    """Wraps an Embedding so lookups are scaled by operation importance."""

    def __init__(self, base: Embedding, importance: OperationImportance):
        super().__init__()
        self.base = base
        self.importance = importance
        # Expose the raw table for code paths that read `.weight` directly.
        self.weight = base.weight

    def forward(self, indices: np.ndarray) -> Tensor:
        return self.base(indices) * self.importance(indices)


class WeightedOpEMBSR(EMBSR):
    """EMBSR with learned per-operation importance weights.

    The importance gate multiplies the operation embedding wherever the
    base model consumes it (micro-op GRU input, attention input, star
    token), leaving the dyadic relation table untouched — relations encode
    *pairs* and already carry their own magnitudes.
    """

    def __init__(self, config: EMBSRConfig):
        super().__init__(config)
        self.op_importance = OperationImportance(config.num_ops)
        wrapped = _WeightedEmbedding(self.op_embedding, self.op_importance)
        if getattr(self, "gru_op_embedding", None) is self.op_embedding:
            self.gru_op_embedding = wrapped
        self.op_embedding = wrapped


def build_embsr_weighted_ops(config: EMBSRConfig) -> WeightedOpEMBSR:
    """Full EMBSR + the operation-importance extension."""
    return WeightedOpEMBSR(
        config.variant(
            encoder="star_gnn",
            use_op_gru=True,
            attention="dyadic",
            attention_level="micro",
            fusion="gate",
        )
    )


def filter_operations(
    examples: list[MacroSession],
    drop_ops: set[int],
) -> list[MacroSession]:
    """Remove the given operation ids from every example's op sequences.

    A macro step that loses all of its operations keeps a single
    placeholder (its original first operation) so the step itself — and
    therefore the item transition structure — survives; the paper's
    filtering idea targets operations, not items.
    """
    out = []
    for ex in examples:
        op_seqs = []
        for ops in ex.op_sequences:
            kept = [o for o in ops if o not in drop_ops]
            op_seqs.append(kept if kept else [ops[0]])
        out.append(
            MacroSession(
                list(ex.macro_items), op_seqs, target=ex.target, session_id=ex.session_id
            )
        )
    return out
