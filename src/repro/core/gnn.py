"""Star multigraph GNN (paper Eqs. 5-11).

This layer implements the sequential-pattern encoder of EMBSR:

* **Aggregation** (Eqs. 5-7): every ordered edge ``v^p -> v^{p+1}`` carries a
  message built from its endpoint's node embedding *and* the GRU encoding of
  that endpoint's micro-operation sequence at that position. Incoming and
  outgoing messages use separate affine maps and are summed per node, then
  concatenated to a ``2d`` vector.
* **Update** (Eq. 8): a gated (GGNN-style) cell merges the aggregated
  message with the node's previous state.
* **Star gating** (Eq. 9) lets every satellite node absorb session-global
  information from the star node; the star is refreshed by attention over
  satellites (Eq. 10).
* **Highway** (Eq. 11) mixes pre- and post-GNN node embeddings to fight
  over-smoothing.

Setting ``use_op_gru=False`` in the parent model zeroes the ``h~`` input,
which recovers the plain SGNN-HN-style propagation (used by the SGNN-Self
family of variants and the SGNN-HN baseline).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..compile.tape import leaf, static_leaf
from ..graphs import BatchGraph
from ..nn import Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter

__all__ = ["StarMultigraphGNN"]


class StarMultigraphGNN(Module):
    """Multigraph message passing with a star node and highway output."""

    def __init__(self, dim: int, num_layers: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.num_layers = num_layers
        # Eq. 6 message functions (input [e_u ; h~] of width 2d).
        self.msg_in = Linear(2 * dim, dim, rng=rng)
        self.msg_out = Linear(2 * dim, dim, rng=rng)
        # Eq. 8 gated update; W_* consume the 2d aggregated vector.
        self.w_z = Linear(2 * dim, dim, bias=False, rng=rng)
        self.w_r = Linear(2 * dim, dim, bias=False, rng=rng)
        self.w_u = Linear(2 * dim, dim, bias=False, rng=rng)
        self.u_z = Linear(dim, dim, bias=False, rng=rng)
        self.u_r = Linear(dim, dim, bias=False, rng=rng)
        self.u_u = Linear(dim, dim, bias=False, rng=rng)
        # Eq. 9 satellite gate and Eq. 10 star attention.
        self.w_q1 = Linear(dim, dim, bias=False, rng=rng)
        self.w_k1 = Linear(dim, dim, bias=False, rng=rng)
        self.w_q2 = Linear(dim, dim, bias=False, rng=rng)
        self.w_k2 = Linear(dim, dim, bias=False, rng=rng)
        # Eq. 11 highway network.
        self.w_g = Linear(2 * dim, dim, bias=False, rng=rng)

    # ------------------------------------------------------------------
    def _aggregate(self, nodes: Tensor, htilde: Tensor, graph: BatchGraph) -> Tensor:
        """Eqs. 5-7: per-node concatenated [in ; out] message sums."""
        B, c, d = nodes.shape
        n = graph.gather.shape[1]
        if n < 2:
            return static_leaf(lambda: np.zeros((B, c, 2 * d)))
        gather = leaf(lambda: graph.gather)
        pos_embed = gather @ nodes  # [B, n, d] node state at each macro position
        trans = leaf(lambda: graph.trans_mask[..., None])

        # Edge p: v^p -> v^{p+1}. In-message to target uses source features.
        src = concat([pos_embed[:, :-1, :], htilde[:, :-1, :]], axis=2)
        msg_in = self.msg_in(src) * trans
        # Out-message to source uses target features (Eq. 5, second line).
        dst = concat([pos_embed[:, 1:, :], htilde[:, 1:, :]], axis=2)
        msg_out = self.msg_out(dst) * trans

        agg_in = leaf(lambda: graph.scatter_in) @ msg_in  # [B, c, d]
        agg_out = leaf(lambda: graph.scatter_out) @ msg_out
        return concat([agg_in, agg_out], axis=2)

    def _update(self, nodes: Tensor, agg: Tensor) -> Tensor:
        """Eq. 8: gated GNN cell."""
        z = (self.w_z(agg) + self.u_z(nodes)).sigmoid()
        r = (self.w_r(agg) + self.u_r(nodes)).sigmoid()
        candidate = (self.w_u(agg) + self.u_u(r * nodes)).tanh()
        return (1.0 - z) * nodes + z * candidate

    def _star_gate(self, nodes: Tensor, star: Tensor) -> Tensor:
        """Eq. 9: blend each satellite with the star node."""
        d = self.dim
        q = self.w_q1(nodes)  # [B, c, d]
        k = self.w_k1(star).unsqueeze(1)  # [B, 1, d]
        alpha = (q * k).sum(axis=2, keepdims=True) * (1.0 / np.sqrt(d))  # [B, c, 1]
        return (1.0 - alpha) * nodes + alpha * star.unsqueeze(1)

    def _star_update(self, nodes: Tensor, star: Tensor, node_mask: np.ndarray) -> Tensor:
        """Eq. 10: attention-pool satellites into the new star state."""
        d = self.dim
        k = self.w_k2(nodes)  # [B, c, d]
        q = self.w_q2(star).unsqueeze(1)  # [B, 1, d]
        scores = (k * q).sum(axis=2) * (1.0 / np.sqrt(d))  # [B, c]
        bias = leaf(lambda: np.where(node_mask > 0, 0.0, -1e9))
        beta = (scores + bias).softmax(axis=1)
        return (beta.unsqueeze(2) * nodes).sum(axis=1)  # [B, d]

    # ------------------------------------------------------------------
    def forward(
        self,
        nodes0: Tensor,
        star0: Tensor,
        htilde: Tensor,
        graph: BatchGraph,
    ) -> tuple[Tensor, Tensor]:
        """Propagate for ``num_layers`` rounds.

        Parameters
        ----------
        nodes0:
            [B, c, d] initial satellite embeddings (Eq. 1).
        star0:
            [B, d] initial star embedding (Eq. 2).
        htilde:
            [B, n, d] micro-operation GRU encodings per macro position
            (Eq. 4); pass zeros to disable sequential-pattern information.
        graph:
            Batched multigraph arrays.

        Returns
        -------
        (h_f, star):
            Highway-mixed node states [B, c, d] and final star [B, d].
        """
        mask = leaf(lambda: graph.node_mask[..., None])
        nodes = nodes0 * mask
        star = star0
        for _ in range(self.num_layers):
            agg = self._aggregate(nodes, htilde, graph)
            updated = self._update(nodes, agg)
            gated = self._star_gate(updated, star)
            nodes = gated * mask
            star = self._star_update(nodes, star, graph.node_mask)
        # Eq. 11: highway between layer-0 and final node embeddings.
        g = self.w_g(concat([nodes0, nodes], axis=2)).sigmoid()
        h_f = (g * nodes0 + (1.0 - g) * nodes) * mask
        return h_f, star
