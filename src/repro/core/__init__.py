"""EMBSR core: the paper's primary contribution and its ablation variants."""

from .attention import OperationAwareSelfAttention, relation_ids
from .embsr import EMBSR, EMBSRConfig
from .extensions import (
    OperationImportance,
    WeightedOpEMBSR,
    build_embsr_weighted_ops,
    filter_operations,
)
from .fusion import ConcatMLP, FixedBeta, FusionGate, ScorePredictor
from .gnn import StarMultigraphGNN
from .op_encoder import MicroOpEncoder
from .variants import (
    VARIANT_BUILDERS,
    VARIANT_SWITCHES,
    build_embsr,
    build_embsr_nf,
    build_embsr_ng,
    build_embsr_ns,
    build_fixed_beta,
    build_rnn_self,
    build_sgnn_abs_self,
    build_sgnn_dyadic,
    build_sgnn_self,
    build_sgnn_seq_self,
)

__all__ = [
    "EMBSR",
    "EMBSRConfig",
    "MicroOpEncoder",
    "StarMultigraphGNN",
    "OperationAwareSelfAttention",
    "relation_ids",
    "FusionGate",
    "FixedBeta",
    "ConcatMLP",
    "ScorePredictor",
    "VARIANT_BUILDERS",
    "VARIANT_SWITCHES",
    "build_embsr",
    "build_embsr_ns",
    "build_embsr_ng",
    "build_embsr_nf",
    "build_sgnn_self",
    "build_sgnn_seq_self",
    "build_rnn_self",
    "build_sgnn_abs_self",
    "build_sgnn_dyadic",
    "build_fixed_beta",
    "OperationImportance",
    "WeightedOpEMBSR",
    "build_embsr_weighted_ops",
    "filter_operations",
]
