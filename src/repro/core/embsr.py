"""EMBSR: the full model (paper Sec. IV, Fig. 2).

Pipeline for one batch:

1. **Sequential patterns** — each macro item's micro-operation sequence is
   GRU-encoded (Eqs. 3-4) and injected into a star multigraph GNN over the
   macro-item sequence (Eqs. 5-11), producing micro-behavior-aware item
   representations ``h^f`` and a session-global star vector.
2. **Dyadic relational patterns** — the micro-behavior sequence
   ``x_i = e_{v_i} + e_{o_i}`` (Eq. 12, items taken from ``h^f``) plus the
   star token ``x_s`` (Eq. 13) pass through operation-aware self-attention
   (Eqs. 14-17), yielding the global preference ``z_s``.
3. **Fusion & prediction** — ``z_s`` is gated against the recent interest
   ``x_t`` (Eq. 18) and scored against L2-normalized item embeddings
   (Eq. 19).

Every ablation and analysis variant in the paper (Tables IV, Figs. 4-6,
Supp. Table II) is a :class:`EMBSRConfig` away — see
``repro.core.variants``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Literal

import numpy as np

from ..autograd import Tensor, concat
from ..compile.tape import host_array, leaf, session_graph, static_array, static_leaf
from ..data.dataset import SessionBatch
from ..graphs import BatchGraph
from ..nn import GRU, Dropout, Embedding, Module
from .attention import OperationAwareSelfAttention
from .fusion import ConcatMLP, FixedBeta, FusionGate, ScorePredictor
from .gnn import StarMultigraphGNN
from .op_encoder import MicroOpEncoder

__all__ = ["EMBSRConfig", "EMBSR"]

EncoderKind = Literal["star_gnn", "rnn", "none"]


def _macro_last_ops(batch: SessionBatch) -> np.ndarray:
    """[B, n] id of each macro step's last micro-operation (0 where padded)."""
    lengths = batch.op_mask.sum(axis=2).astype(np.int64)
    rows = np.arange(batch.max_macro_len)
    seq_ops = batch.ops[
        np.arange(batch.batch_size)[:, None], rows[None, :], np.maximum(lengths - 1, 0)
    ]
    return seq_ops * (lengths > 0)
AttentionKind = Literal["dyadic", "absolute", "plain", "none"]
AttentionLevel = Literal["micro", "macro"]


@dataclass(frozen=True)
class EMBSRConfig:
    """Hyper-parameters and architecture switches for EMBSR and variants.

    The defaults describe the *full* EMBSR model; the switch fields carve
    out every ablation the paper studies.
    """

    num_items: int
    num_ops: int
    dim: int = 32
    num_layers: int = 1
    dropout: float = 0.1
    w_k: float = 12.0
    max_seq_len: int = 200
    seed: int = 0

    encoder: EncoderKind = "star_gnn"
    use_op_gru: bool = True
    attention: AttentionKind = "dyadic"
    attention_level: AttentionLevel = "micro"
    fusion: str = "gate"  # "gate" | "concat" | "fixed:<beta>"
    # The paper's Table I lists a single operation embedding matrix M^O
    # shared by the micro-op GRU and the attention input. At our training
    # scale the two consumers pull the shared table in conflicting
    # directions and measurably hurt both patterns, so the library defaults
    # to untied tables; set True for the paper's exact parameterization
    # (documented in DESIGN.md/README "Differences from the paper").
    tie_op_embeddings: bool = False

    def variant(self, **changes) -> "EMBSRConfig":
        """Return a copy with the given switches changed."""
        return replace(self, **changes)


class EMBSR(Module):
    """Encode Micro-Behaviors in Session-based Recommendation."""

    def __init__(self, config: EMBSRConfig):
        super().__init__()
        self.config = config
        rng = np.random.default_rng(config.seed)
        d = config.dim

        self.item_embedding = Embedding(config.num_items + 1, d, rng=rng, padding_idx=0)
        self.op_embedding = Embedding(config.num_ops + 1, d, rng=rng, padding_idx=0)

        if config.encoder == "star_gnn":
            self.op_encoder = MicroOpEncoder(d, rng=rng) if config.use_op_gru else None
            self.gru_op_embedding = (
                self.op_embedding
                if config.tie_op_embeddings
                else Embedding(config.num_ops + 1, d, rng=rng, padding_idx=0)
            )
            self.gnn = StarMultigraphGNN(d, num_layers=config.num_layers, rng=rng)
            self.rnn = None
        elif config.encoder == "rnn":
            self.op_encoder = None
            self.gnn = None
            self.rnn = GRU(d, d, rng=rng)
        elif config.encoder == "none":
            self.op_encoder = None
            self.gnn = None
            self.rnn = None
        else:
            raise ValueError(f"unknown encoder kind: {config.encoder}")

        if config.attention != "none":
            self.attention = OperationAwareSelfAttention(
                d,
                config.num_ops,
                config.max_seq_len,
                dropout=config.dropout,
                rng=rng,
            )
        else:
            self.attention = None

        if config.fusion == "gate":
            self.fusion = FusionGate(d, rng=rng)
        elif config.fusion == "concat":
            self.fusion = ConcatMLP(d, rng=rng)
        elif config.fusion.startswith("fixed:"):
            self.fusion = FixedBeta(float(config.fusion.split(":", 1)[1]))
        else:
            raise ValueError(f"unknown fusion kind: {config.fusion}")

        self.embed_dropout = Dropout(config.dropout, rng=rng)
        self.predictor = ScorePredictor(w_k=config.w_k)

    # ------------------------------------------------------------------
    def _encode_items(
        self, batch: SessionBatch, graph: BatchGraph
    ) -> tuple[Tensor, Tensor, Tensor]:
        """Run the configured sequential encoder.

        Returns ``(micro_reps, macro_reps, star)`` — item representations at
        each micro position [B, t, d], each macro position [B, n, d], and the
        session-global vector [B, d].
        """
        cfg = self.config
        B, n = batch.items.shape

        if cfg.encoder == "star_gnn":
            nodes0 = self.item_embedding(graph.node_items)  # [B, c, d]
            mask = leaf(lambda: graph.node_mask[..., None])
            counts = leaf(
                lambda: np.maximum(graph.node_mask.sum(axis=1, keepdims=True), 1.0)
            )
            star0 = (nodes0 * mask).sum(axis=1) / counts  # Eq. 2
            if self.op_encoder is not None:
                htilde = self.op_encoder(self.gru_op_embedding, batch.ops, batch.op_mask)
            else:
                htilde = static_leaf(lambda: np.zeros((B, n, cfg.dim)))
            h_f, star = self.gnn(nodes0, star0, htilde, graph)
            micro_reps = leaf(lambda: graph.micro_gather) @ h_f
            macro_reps = leaf(lambda: graph.gather) @ h_f
            return micro_reps, macro_reps, star

        if cfg.encoder == "rnn":
            inputs = self.item_embedding(batch.micro_items) + self.op_embedding(batch.micro_ops)
            outputs, final = self.rnn(inputs, mask=batch.micro_mask)
            macro_reps = self.item_embedding(batch.items)
            return outputs, macro_reps, final

        # encoder == "none" (EMBSR-NG): raw embeddings, mean-pooled star.
        micro_reps = self.item_embedding(batch.micro_items)
        macro_reps = self.item_embedding(batch.items)
        m = leaf(lambda: batch.micro_mask[..., None])
        counts = leaf(
            lambda: np.maximum(batch.micro_mask.sum(axis=1, keepdims=True), 1.0)
        )
        star = (micro_reps * m).sum(axis=1) / counts
        return micro_reps, macro_reps, star

    # ------------------------------------------------------------------
    def encode_sessions(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """[B, d] session representations m (Eq. 16) — the scoring-head queries."""
        cfg = self.config
        if graph is None and cfg.encoder == "star_gnn":
            graph = session_graph(batch)
        micro_reps, macro_reps, star = self._encode_items(batch, graph)
        B = batch.batch_size

        if cfg.attention_level == "micro":
            seq_reps = micro_reps
            seq_ops = batch.micro_ops
            seq_mask = batch.micro_mask
            last_index = host_array(lambda: batch.micro_lengths() - 1)
        else:
            seq_reps = macro_reps
            # Represent each macro step by its last micro-operation.
            seq_ops = host_array(lambda: _macro_last_ops(batch))
            seq_mask = batch.item_mask
            last_index = host_array(lambda: batch.macro_lengths() - 1)

        # Eq. 12: x_i = e_{v_i} + e_{o_i} (operation part only when the
        # variant uses micro-operation information in the attention input).
        x_seq = seq_reps
        if cfg.attention in ("dyadic", "absolute"):
            x_seq = x_seq + self.op_embedding(seq_ops)
        x_seq = self.embed_dropout(x_seq)

        # Eq. 13: star token; the unknown next operation o_{t+1} is proxied
        # by the last observed operation (teacher signals would leak).
        x_star = star
        if cfg.attention in ("dyadic", "absolute") or (
            cfg.attention == "none" and cfg.use_op_gru
        ):
            x_star = x_star + self.op_embedding(batch.last_op)

        if self.attention is not None:
            full_x = concat([x_star.unsqueeze(1), x_seq], axis=1)  # star at idx 0
            full_ops = host_array(
                lambda: np.concatenate([batch.last_op[:, None], seq_ops], axis=1)
            )
            full_mask = host_array(
                lambda: np.concatenate([np.ones((B, 1)), seq_mask], axis=1)
            )
            z = self.attention(
                full_x, full_ops, full_mask, use_dyadic=cfg.attention == "dyadic"
            )
            z_s = z[:, 0, :]
        else:
            # EMBSR-NS: sequential patterns only; the star vector itself is
            # the global preference.
            z_s = x_star

        # Recent interest x_t: representation of the last micro-behavior.
        x_t = x_seq[static_array(lambda: np.arange(B)), last_index, :]

        return self.fusion(z_s, x_t)

    def forward(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """Score all items for each session; returns [B, num_items] logits."""
        m = self.encode_sessions(batch, graph)
        return self.predictor(m, self.item_embedding.weight)
