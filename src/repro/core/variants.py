"""Factory functions for every EMBSR variant the paper evaluates.

================  ==============================================  ==========
Variant           Description                                      Paper ref
================  ==============================================  ==========
EMBSR             full model                                       Sec. IV
EMBSR-NS          no operation-aware self-attention                Table IV
EMBSR-NG          no GNN layer (incl. the micro-op GRU)            Table IV
EMBSR-NF          concat+MLP instead of the fusion gate            Table IV
SGNN-Self         star GNN + plain self-attention, no micro info   Fig. 4
SGNN-Seq-Self     + sequential micro-op GRU in the GNN             Fig. 4
RNN-Self          RNN over item+op embeddings + plain attention    Fig. 4
SGNN-Abs-Self     absolute op embeddings in plain attention        Fig. 5
SGNN-Dyadic       dyadic attention without the micro-op GRU        Fig. 5
FixedBeta(b)      constant fusion weight                           Fig. 6
================  ==============================================  ==========
"""

from __future__ import annotations

from .embsr import EMBSR, EMBSRConfig

__all__ = [
    "build_embsr",
    "build_embsr_ns",
    "build_embsr_ng",
    "build_embsr_nf",
    "build_sgnn_self",
    "build_sgnn_seq_self",
    "build_rnn_self",
    "build_sgnn_abs_self",
    "build_sgnn_dyadic",
    "build_fixed_beta",
    "VARIANT_BUILDERS",
    "VARIANT_SWITCHES",
]

# The architecture switches behind every named variant, as plain data so the
# model registry (repro.registry) can serialize them into ModelSpecs. The
# builder functions below are thin wrappers over this table.
VARIANT_SWITCHES: dict[str, dict] = {
    "EMBSR": dict(
        encoder="star_gnn",
        use_op_gru=True,
        attention="dyadic",
        attention_level="micro",
        fusion="gate",
    ),
    "EMBSR-NS": dict(encoder="star_gnn", use_op_gru=True, attention="none", fusion="gate"),
    "EMBSR-NG": dict(
        encoder="none", attention="dyadic", attention_level="micro", fusion="gate"
    ),
    "EMBSR-NF": dict(
        encoder="star_gnn",
        use_op_gru=True,
        attention="dyadic",
        attention_level="micro",
        fusion="concat",
    ),
    "SGNN-Self": dict(
        encoder="star_gnn",
        use_op_gru=False,
        attention="plain",
        attention_level="macro",
        fusion="gate",
    ),
    "SGNN-Seq-Self": dict(
        encoder="star_gnn",
        use_op_gru=True,
        attention="plain",
        attention_level="macro",
        fusion="gate",
    ),
    "RNN-Self": dict(
        encoder="rnn", attention="plain", attention_level="micro", fusion="gate"
    ),
    "SGNN-Abs-Self": dict(
        encoder="star_gnn",
        use_op_gru=False,
        attention="absolute",
        attention_level="micro",
        fusion="gate",
    ),
    "SGNN-Dyadic": dict(
        encoder="star_gnn",
        use_op_gru=False,
        attention="dyadic",
        attention_level="micro",
        fusion="gate",
    ),
}


def _build_variant(name: str, config: EMBSRConfig) -> EMBSR:
    return EMBSR(config.variant(**VARIANT_SWITCHES[name]))


def build_embsr(config: EMBSRConfig) -> EMBSR:
    """Full EMBSR (both micro-behavior patterns + fusion gate)."""
    return _build_variant("EMBSR", config)


def build_embsr_ns(config: EMBSRConfig) -> EMBSR:
    """EMBSR-NS: drop the operation-aware self-attention layer."""
    return _build_variant("EMBSR-NS", config)


def build_embsr_ng(config: EMBSRConfig) -> EMBSR:
    """EMBSR-NG: drop the entire GNN layer (incl. the micro-op GRU)."""
    return _build_variant("EMBSR-NG", config)


def build_embsr_nf(config: EMBSRConfig) -> EMBSR:
    """EMBSR-NF: concatenation + MLP instead of the fusion gate."""
    return _build_variant("EMBSR-NF", config)


def build_sgnn_self(config: EMBSRConfig) -> EMBSR:
    """SGNN-Self: macro items only — star GNN + standard self-attention."""
    return _build_variant("SGNN-Self", config)


def build_sgnn_seq_self(config: EMBSRConfig) -> EMBSR:
    """SGNN-Seq-Self: SGNN-Self + sequential micro-op encoding in the GNN."""
    return _build_variant("SGNN-Seq-Self", config)


def build_rnn_self(config: EMBSRConfig) -> EMBSR:
    """RNN-Self: GRU over concatenated item+op embeddings, plain attention."""
    return _build_variant("RNN-Self", config)


def build_sgnn_abs_self(config: EMBSRConfig) -> EMBSR:
    """SGNN-Abs-Self: absolute operation embeddings, standard attention."""
    return _build_variant("SGNN-Abs-Self", config)


def build_sgnn_dyadic(config: EMBSRConfig) -> EMBSR:
    """SGNN-Dyadic: dyadic relational encoding without the micro-op GRU."""
    return _build_variant("SGNN-Dyadic", config)


def build_fixed_beta(config: EMBSRConfig, beta: float) -> EMBSR:
    """EMBSR with a constant fusion weight (Fig. 6 sweep)."""
    return EMBSR(
        config.variant(
            encoder="star_gnn",
            use_op_gru=True,
            attention="dyadic",
            attention_level="micro",
            fusion=f"fixed:{beta}",
        )
    )


VARIANT_BUILDERS = {
    "EMBSR": build_embsr,
    "EMBSR-NS": build_embsr_ns,
    "EMBSR-NG": build_embsr_ng,
    "EMBSR-NF": build_embsr_nf,
    "SGNN-Self": build_sgnn_self,
    "SGNN-Seq-Self": build_sgnn_seq_self,
    "RNN-Self": build_rnn_self,
    "SGNN-Abs-Self": build_sgnn_abs_self,
    "SGNN-Dyadic": build_sgnn_dyadic,
}
