"""Operation-aware self-attention (paper Sec. IV-C, Eqs. 12-17).

Extends self-attention with *dyadic* micro-operation encodings: the key and
value for position ``j`` when attended from position ``i`` are augmented
with ``e_{r_ij}``, the embedding of the operation pair ``(o_i, o_j)``
(analogous to relative-position representations, Shaw et al. 2018).

Batching note: the paper appends the star token at the *end* of the
sequence. With padded batches a trailing star would sit at a
session-dependent index, so we place it at index 0 instead; this only
permutes position-embedding indices and is otherwise equivalent (attention
itself is order-free — order enters solely through ``e_{p_j}``).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..compile.tape import host_array, leaf, static_array
from ..nn import Dropout, Embedding, FeedForward, LayerNorm, Linear, Module
from ..perf import fused as _fused

__all__ = ["OperationAwareSelfAttention", "relation_ids"]

_NEG_INF = -1e9


def relation_ids(ops_i: np.ndarray, ops_j: np.ndarray, num_ops: int) -> np.ndarray:
    """Dyadic relation index for shifted operation ids.

    ``r(o_i, o_j) = o_i * (num_ops + 1) + o_j`` over shifted ids (0 = pad),
    giving a table of ``(num_ops + 1)^2`` rows where index 0 is the pad-pad
    pair. The paper's ``M^R`` has ``|O|^2`` rows; the extra rows host pairs
    involving padding and are masked out of attention.
    """
    return ops_i[..., None] * (num_ops + 1) + ops_j[..., None, :]


class OperationAwareSelfAttention(Module):
    """Single-head attention with dyadic operation and position encodings.

    Modes (selected per call, so variants can share weights):

    * ``dyadic`` — full Eq. 14/16 with relation embeddings;
    * ``absolute`` — standard self-attention, operation information enters
      only through the input embeddings (SGNN-Abs-Self variant);
    * both add learned absolute position embeddings ``e_{p_j}`` to keys and
      values.
    """

    def __init__(
        self,
        dim: int,
        num_ops: int,
        max_len: int,
        dropout: float = 0.1,
        *,
        rng: np.random.Generator,
    ):
        super().__init__()
        self.dim = dim
        self.num_ops = num_ops
        self.w_q = Linear(dim, dim, bias=False, rng=rng)
        self.relations = Embedding((num_ops + 1) ** 2, dim, rng=rng, padding_idx=0)
        self.positions = Embedding(max_len, dim, rng=rng)
        self.ffn = FeedForward(dim, rng=rng)
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)

    def forward(
        self,
        x: Tensor,
        seq_ops: np.ndarray,
        seq_mask: np.ndarray,
        use_dyadic: bool = True,
    ) -> Tensor:
        """Attend over a micro-behavior sequence.

        Parameters
        ----------
        x:
            [B, T, d] input embeddings ``x_i`` (Eq. 12/13, star at index 0).
        seq_ops:
            [B, T] shifted operation id of each position (star carries the
            assumed next-item operation, Eq. 13).
        seq_mask:
            [B, T] validity mask.
        use_dyadic:
            Include ``e_{r_ij}`` terms (Eq. 14/16); off for the
            ``absolute``/plain variants.

        Returns
        -------
        Tensor
            [B, T, d] outputs ``z``; the session-level ``z_s`` is row 0.
        """
        B, T, d = x.shape
        scale = 1.0 / np.sqrt(d)

        pos = self.positions(static_array(lambda: np.broadcast_to(np.arange(T), (B, T))))  # [B, T, d]
        keys = x + pos  # x_j + e_{p_j}
        q = self.w_q(x)  # [B, T, d]

        # Content/position part of e_ij (Eq. 16): q_i . (x_j + p_j)
        scores = (q @ keys.swapaxes(-1, -2)) * scale  # [B, T, T]
        fused_dyadic = use_dyadic and _fused.fusion_enabled()
        if use_dyadic:
            rel_ids = host_array(
                lambda: relation_ids(seq_ops, seq_ops, self.num_ops)
            )  # [B, T, T]
            if fused_dyadic:
                # Gather-free Shaw-style kernel: never materializes the
                # [B, T, T, d] relation tensor (see repro.perf.fused).
                scores = scores + _fused.relation_scores(q, self.relations.weight, rel_ids) * scale
            else:
                rel = self.relations(rel_ids)  # [B, T, T, d]
                scores = scores + (q.unsqueeze(2) * rel).sum(axis=3) * scale

        bias = leaf(
            lambda: np.broadcast_to(
                np.where(seq_mask.astype(bool)[:, None, :], 0.0, _NEG_INF), (B, T, T)
            ).copy()
        )
        alpha = (scores + bias).softmax(axis=-1)

        # Value side (Eq. 14): sum_j alpha_ij (x_j + e_{r_ij} + e_{p_j})
        z = alpha @ keys
        if use_dyadic:
            if fused_dyadic:
                z = z + _fused.relation_values(alpha, self.relations.weight, rel_ids)
            else:
                z = z + (alpha.unsqueeze(3) * rel).sum(axis=2)

        # Post block (paper: FFN + residual + layer norm + dropout).
        z = self.norm(z + self.dropout(self.ffn(z)))
        return z
