"""Session representation fusion and prediction (paper Sec. IV-D).

``FusionGate`` implements Eq. 18 — a learned gate between the global
preference ``z_s`` and the recent interest ``x_t``. ``FixedBeta`` replaces
the gate with a constant β (the Fig. 6 sweep), and ``ConcatMLP`` is the
EMBSR-NF ablation. ``ScorePredictor`` implements the L2-normalized scaled
dot-product scoring of Eq. 19 (NISER-style).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..nn import Linear, Module

__all__ = ["FusionGate", "FixedBeta", "ConcatMLP", "ScorePredictor"]


class FusionGate(Module):
    """Eq. 18: ``m = beta * z_s + (1 - beta) * x_t`` with a learned gate."""

    def __init__(self, dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.gate = Linear(2 * dim, dim, rng=rng)

    def forward(self, z_s: Tensor, x_t: Tensor) -> Tensor:
        beta = self.gate(concat([z_s, x_t], axis=1)).sigmoid()
        return beta * z_s + (1.0 - beta) * x_t


class FixedBeta(Module):
    """Fig. 6 ablation: constant fusion weight ``beta``."""

    def __init__(self, beta: float):
        super().__init__()
        if not 0.0 <= beta <= 1.0:
            raise ValueError(f"beta must be in [0, 1], got {beta}")
        self.beta = beta

    def forward(self, z_s: Tensor, x_t: Tensor) -> Tensor:
        return z_s * self.beta + x_t * (1.0 - self.beta)


class ConcatMLP(Module):
    """EMBSR-NF ablation: concatenate and project with an MLP."""

    def __init__(self, dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(2 * dim, dim, rng=rng)
        self.fc2 = Linear(dim, dim, rng=rng)

    def forward(self, z_s: Tensor, x_t: Tensor) -> Tensor:
        return self.fc2(self.fc1(concat([z_s, x_t], axis=1)).relu())


class ScorePredictor(Module):
    """Eq. 19: scores over all items via weighted-normalized dot products.

    ``y_i ∝ w_k * L2Norm(m) . L2Norm(v_i)`` — the softmax itself lives in
    the cross-entropy loss. The normalization (NISER / SGNN-HN style) makes
    training insensitive to embedding-norm drift and popularity bias.
    """

    def __init__(self, w_k: float = 12.0):
        super().__init__()
        self.w_k = w_k

    def forward(self, m: Tensor, item_embeddings: Tensor) -> Tensor:
        """Score every real item.

        Parameters
        ----------
        m:
            [B, d] session representations.
        item_embeddings:
            [num_ids, d] full table ``M^V`` (row 0 = padding, excluded).

        Returns
        -------
        Tensor
            [B, num_items] logits, class ``i`` scoring item id ``i + 1``.
        """
        m_hat = m.l2_normalize(axis=-1) * self.w_k
        v_hat = item_embeddings[1:].l2_normalize(axis=-1)
        return m_hat @ v_hat.T
