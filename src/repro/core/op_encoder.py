"""Sequential micro-operation encoding (paper Eqs. 3-4).

For each macro item ``v^i`` the micro-operation sequence
``o^i = (o^i_1, ..., o^i_k)`` is run through a GRU; the final hidden state
``h~^i`` summarizes the user's fine-grained engagement with that item and is
later attached to the multigraph edges (Eq. 5).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..compile.tape import leaf
from ..nn import GRU, Embedding, Module

__all__ = ["MicroOpEncoder"]


class MicroOpEncoder(Module):
    """GRU over each macro step's operation sequence.

    Shares the operation embedding matrix ``M^O`` with the attention layer
    (passed in, not owned).
    """

    def __init__(self, dim: int, *, rng: np.random.Generator):
        super().__init__()
        self.gru = GRU(dim, dim, rng=rng)
        self.dim = dim

    def forward(self, op_embedding: Embedding, ops: np.ndarray, op_mask: np.ndarray) -> Tensor:
        """Encode operations.

        Parameters
        ----------
        op_embedding:
            The shared ``M^O`` table (shifted ids; row 0 = padding).
        ops:
            [B, n, k] shifted operation ids.
        op_mask:
            [B, n, k] validity mask.

        Returns
        -------
        Tensor
            ``h~`` of shape [B, n, dim] — one sequential encoding per macro
            step (zero vectors at padded macro positions).
        """
        B, n, k = ops.shape
        flat_ops = ops.reshape(B * n, k)
        flat_mask = op_mask.reshape(B * n, k)
        embedded = op_embedding(flat_ops)  # [B*n, k, d]
        _, final = self.gru(embedded, mask=flat_mask)
        htilde = final.reshape(B, n, self.dim)
        # Zero out padded macro positions (their GRU state is h0 = 0 already,
        # but the mask keeps this explicit and robust to future h0 changes).
        dtype = htilde.data.dtype
        macro_mask = leaf(lambda: (op_mask.sum(axis=2) > 0).astype(dtype)[..., None])
        return htilde * macro_mask
