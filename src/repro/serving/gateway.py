"""JSON-over-HTTP serving gateway (stdlib-only, threaded).

Request path for ``GET /recommend``::

    handler thread ──▶ ScoreCache ──hit──▶ 200 (cached)
           │ miss
           ▼
    AdmissionController ──queue full──▶ 429 (shed)
           │ admitted
           ▼
    MicroBatcher queue ──▶ scorer thread ──▶ ResilientCaller (retry +
           │                                 timeout + circuit breaker)
           │ deadline miss /                 ──▶ top_k_batch (one model
           │ breaker open /                      call for up to
           │ retries exhausted                   max_batch_size requests)
           ▼
    PopularityFallback ──▶ 200 (degraded)

``POST /events`` ingests micro-behaviors (and invalidates the session's
cache generation); ``GET /healthz`` is a liveness probe; ``GET /metrics``
renders the registry. Built on ``http.server.ThreadingHTTPServer`` so the
whole stack needs nothing outside the standard library — the point is the
architecture (batching, caching, degradation), not the web framework.

With a :class:`~repro.deploy.DeploymentManager` attached (``deployment=``),
the gateway additionally exposes the hot-swap control plane — ``GET/POST
/deploy``, ``POST /deploy/promote``, ``POST /deploy/rollback`` — samples
ingested events into shadow scoring, and scopes every cache entry by the
generation that produced it (``docs/deployment.md``).
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from ..deploy import DeploymentError
from ..reliability import CircuitBreaker, ReliabilityError, ResilientCaller, RetryPolicy
from ..serve import RecommenderService
from .admission import AdmissionController, PopularityFallback
from .batcher import DeadlineExceededError, MicroBatcher, QueueFullError
from .cache import ScoreCache
from .metrics import MetricsRegistry

__all__ = ["ServingGateway", "GatewayConfig"]

# breaker_state gauge encoding (docs/reliability.md)
_BREAKER_STATE_CODES = {
    CircuitBreaker.CLOSED: 0,
    CircuitBreaker.OPEN: 1,
    CircuitBreaker.HALF_OPEN: 2,
}

# retrieval_mode gauge encoding (docs/retrieval.md)
_RETRIEVAL_MODE_CODES = {"exact": 0, "ivf": 1, "ivfpq": 2}


class GatewayConfig:
    """Tunable knobs of the serving stack, with production-ish defaults."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,  # 0 = ephemeral, read the bound port from .port
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 256,
        deadline_ms: float = 250.0,
        cache_ttl: float = 30.0,
        cache_entries: int = 4096,
        retry_attempts: int = 3,
        retry_backoff_ms: float = 5.0,
        score_timeout_ms: float | None = None,  # per-call budget; None = unbounded
        breaker_threshold: int = 8,          # consecutive failures before opening
        breaker_reset_s: float = 2.0,        # open -> half-open probe delay
        breaker_half_open_successes: int = 2,  # probe successes to close
    ):
        self.host = host
        self.port = port
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.max_queue_depth = max_queue_depth
        self.deadline_ms = deadline_ms
        self.cache_ttl = cache_ttl
        self.cache_entries = cache_entries
        self.retry_attempts = retry_attempts
        self.retry_backoff_ms = retry_backoff_ms
        self.score_timeout_ms = score_timeout_ms
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.breaker_half_open_successes = breaker_half_open_successes


class ServingGateway:
    """Bundle service + batcher + cache + admission behind an HTTP server.

    The request operations (:meth:`ingest`, :meth:`recommend`) are plain
    methods so tests and in-process callers can drive the full stack
    without sockets; the HTTP layer is a thin JSON shim over them.
    """

    def __init__(
        self,
        service: RecommenderService,
        config: GatewayConfig | None = None,
        fallback: PopularityFallback | None = None,
        registry: MetricsRegistry | None = None,
        deployment=None,
    ):
        self.service = service
        self.config = config or GatewayConfig()
        self.registry = registry or MetricsRegistry()
        # Serializes record() vs scoring. Re-entrant: a candidate scoring
        # failure inside a batch triggers rollback on the same thread.
        self.service_lock = threading.RLock()
        self.cache = ScoreCache(
            max_entries=self.config.cache_entries, ttl=self.config.cache_ttl
        )
        # Resilient scoring path: retry + timeout + circuit breaker, with
        # every state transition and retry visible at /metrics.
        r = self.registry
        breaker_state = r.gauge("breaker_state", "0=closed, 1=open, 2=half-open")
        breaker_transitions = r.counter("breaker_transitions_total", "breaker state changes")
        breaker_opens = r.counter("breaker_open_total", "times the breaker opened")
        breaker_last = r.gauge(
            "breaker_last_transition", "monotonic clock of the last breaker state change"
        )
        self._retries = r.counter("scoring_retries_total", "model-call retry attempts")
        self._score_timeouts = r.counter("scoring_timeouts_total", "model calls over budget")
        self._score_failures = r.counter("scoring_failures_total", "failed model-call attempts")

        def on_transition(old: str, new: str) -> None:
            breaker_state.set(_BREAKER_STATE_CODES[new])
            breaker_transitions.inc()
            r.counter(
                f"breaker_transition_{old}_{new}_total",
                f"breaker transitions {old} -> {new}",
            ).inc()
            breaker_last.set(self.breaker.last_transition_at)
            if new == CircuitBreaker.OPEN:
                breaker_opens.inc()

        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            reset_timeout_s=self.config.breaker_reset_s,
            half_open_successes=self.config.breaker_half_open_successes,
            on_transition=on_transition,
        )
        timeout_ms = self.config.score_timeout_ms
        self.caller = ResilientCaller(
            retry=RetryPolicy(
                max_attempts=self.config.retry_attempts,
                backoff_base_s=self.config.retry_backoff_ms / 1000.0,
                timeout_s=timeout_ms / 1000.0 if timeout_ms is not None else None,
            ),
            breaker=self.breaker,
            on_retry=self._retries.inc,
            on_timeout=self._score_timeouts.inc,
            on_failure=self._score_failures.inc,
        )
        self.batcher = MicroBatcher(
            service,
            max_batch_size=self.config.max_batch_size,
            max_wait_ms=self.config.max_wait_ms,
            max_queue_depth=self.config.max_queue_depth,
            registry=self.registry,
            lock=self.service_lock,
            caller=self.caller,
        )
        self.admission = AdmissionController(
            self.batcher,
            deadline_ms=self.config.deadline_ms,
            fallback=fallback,
            registry=self.registry,
        )
        self._server: ThreadingHTTPServer | None = None
        self._server_thread: threading.Thread | None = None
        self._started_at = time.monotonic()
        r = self.registry
        self._events = r.counter("events_total", "micro-behavior events ingested")
        self._events_dropped = r.counter("events_dropped_total", "events outside the vocabulary")
        self._recommends = r.counter("requests_recommend_total", "recommendation requests")
        self._cache_hits = r.counter("cache_hits_total", "recommendations served from cache")
        self._cache_misses = r.counter("cache_misses_total", "cache lookups that missed")
        self._cache_hit_rate = r.gauge("cache_hit_rate", "hits / lookups since boot")
        self._active = r.gauge("active_sessions", "live session-table size")
        self._latency = r.histogram("request_latency_ms", "recommend latency, milliseconds")

        # ANN retrieval instrumentation (exact serving leaves these at rest).
        self._retrieval_mode = r.gauge("retrieval_mode", "0=exact, 1=ivf, 2=ivfpq")
        self._retrieval_mode.set(_RETRIEVAL_MODE_CODES[service.retrieval_mode])
        self._retrieval_candidates = r.histogram(
            "retrieval_candidates", "ANN candidate-set size per scored session",
            buckets=(16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0),
        )
        self._retrieval_probes = r.histogram(
            "retrieval_probes", "cells probed per scored session",
            buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0),
        )
        self._retrieval_ann_ms = r.histogram(
            "retrieval_ann_latency_ms", "candidate generation + shortlist, milliseconds"
        )
        self._retrieval_rerank_ms = r.histogram(
            "retrieval_rerank_latency_ms", "exact re-rank of candidates, milliseconds"
        )
        if service.retrieval is not None:
            service.retrieval.observer = self._observe_retrieval

        # Online-training event buffer (satellite of docs/deployment.md).
        self._buffer_depth = r.gauge("event_buffer_depth", "events awaiting the online trainer")
        self._buffer_dropped = r.counter(
            "event_buffer_dropped_total", "events evicted before training saw them"
        )
        self._buffer_dropped_seen = 0  # delta-tracking against buffer.dropped

        # Deployment control plane: hot-swap, canary, shadow scoring.
        self.deployment = deployment
        if deployment is not None:
            deployment.lock = self.service_lock  # flips atomic w.r.t. scoring
            deployment.observer = self._on_deploy_event
            deployment.on_assign = self._on_canary_assign
            self._deploy_generation = r.gauge("deploy_generation", "promotions since boot")
            self._deploy_candidate = r.gauge("deploy_candidate_active", "1 while a canary runs")
            self._deploy_swaps = r.counter("deploy_swaps_total", "candidates staged")
            self._deploy_swap_failures = r.counter(
                "deploy_swap_failures_total", "stagings that never went live"
            )
            self._deploy_promotes = r.counter("deploy_promotes_total", "candidates promoted")
            self._deploy_rollbacks = r.counter("deploy_rollbacks_total", "candidates demoted")
            self._canary_incumbent = r.counter(
                "canary_assignments_incumbent_total", "scoring decisions routed to the incumbent"
            )
            self._canary_candidate = r.counter(
                "canary_assignments_candidate_total", "scoring decisions routed to the candidate"
            )
            self._shadow_incumbent_hr = r.gauge("shadow_incumbent_hr", "windowed online HR@k, incumbent")
            self._shadow_candidate_hr = r.gauge("shadow_candidate_hr", "windowed online HR@k, candidate")
            self._shadow_delta = r.gauge("shadow_delta", "candidate minus incumbent online HR@k")
            self._shadow_observations = r.gauge(
                "shadow_observations", "lifetime paired shadow evaluations"
            )
            self._deploy_generation.set(deployment.generation)
            self._deploy_candidate.set(1 if deployment.candidate is not None else 0)

    @classmethod
    def from_artifact(
        cls,
        path,
        config: GatewayConfig | None = None,
        registry: MetricsRegistry | None = None,
        retrieval: str = "auto",
        nprobe: int | None = None,
    ) -> "ServingGateway":
        """Boot the full serving stack from one artifact file — no dataset.

        The bundle carries the model spec, the weights, the vocabulary, and
        a popularity ranking, so the gateway's degraded path works too.
        ``retrieval`` picks the scoring path (``auto`` switches to ANN at
        :data:`~repro.retrieval.AUTO_ANN_THRESHOLD` catalogue items); the
        active mode is visible at ``/metrics`` as ``retrieval_mode``.
        """
        from ..artifacts import load_artifact

        bundle = load_artifact(path)
        service = RecommenderService.from_artifact(bundle, retrieval=retrieval, nprobe=nprobe)
        ranked = bundle.metadata.get("popularity") or []
        fallback = PopularityFallback.from_ranked(ranked) if ranked else None
        return cls(service, config=config, fallback=fallback, registry=registry)

    # ------------------------------------------------------------------ ops
    def ingest(self, session_id: str, item: int, operation: int) -> dict:
        """Apply one event; bumps the session's cache generation.

        When a canary is live, a deterministic sample of events doubles as
        shadow-scoring test cases: the *pre-event* session prefix is
        captured under the lock, then both generations score it against
        the item the user actually went to (outside the lock — shadow
        evaluation must never block ingest or scoring).
        """
        shadow = None
        with self.service_lock:
            deployment = self.deployment
            if deployment is not None and deployment.candidate is not None:
                shadow = self._capture_shadow(deployment, session_id, item)
            applied = self.service.record(session_id, item, operation)
            session = self.service.session(session_id)
            steps = session.num_macro_steps if session else 0
        self._events.inc()
        if applied:
            self.cache.invalidate(session_id)
        else:
            self._events_dropped.inc()
        self._active.set(self.service.active_sessions)
        self._observe_buffer()
        if applied and shadow is not None:
            example, target_class = shadow
            self.deployment.observe_event(example, target_class, session_id)
        return {"applied": applied, "session_steps": steps}

    def _capture_shadow(self, deployment, session_id: str, item: int):
        """Pre-event (example, target) pair, or ``None`` when not sampled.

        Only genuine macro transitions qualify — a repeat of the current
        macro item carries no next-item signal — and the session must
        already have a scoreable prefix. Called with the service lock held.
        """
        service = self.service
        session = service.session(session_id)
        if session is None or session.num_macro_steps == 0:
            return None
        if item not in service.vocab:
            return None
        dense = service.vocab.encode(item)
        if session.macro_items[-1] == dense:
            return None
        if not deployment.wants_shadow(session_id, session.num_macro_steps):
            return None
        return session.to_example(service.max_macro_len), dense - 1

    def _observe_buffer(self) -> None:
        buffer = self.service.event_buffer
        if buffer is None:
            return
        self._buffer_depth.set(buffer.depth)
        dropped = buffer.dropped
        if dropped > self._buffer_dropped_seen:
            self._buffer_dropped.inc(dropped - self._buffer_dropped_seen)
            self._buffer_dropped_seen = dropped

    def end_session(self, session_id: str) -> None:
        """Drop a session and its cache bookkeeping."""
        with self.service_lock:
            self.service.end_session(session_id)
        self.cache.forget(session_id)
        self._active.set(self.service.active_sessions)

    def recommend(self, session_id: str, k: int = 10, exclude_seen: bool = False) -> dict:
        """Full request path: cache → admission → batcher → fallback.

        Raises :class:`QueueFullError` / :class:`DeadlineExceededError` for
        the HTTP layer to map onto 429 / 504.
        """
        started = time.perf_counter()
        self._recommends.inc()
        with self.service_lock:
            session = self.service.session(session_id)
            if session is not None and session.num_macro_steps > 0:
                fingerprint = session.fingerprint(self.service.max_macro_len)
                window_items, _ = session.window(self.service.max_macro_len)
                raw_seen = tuple(self.service.vocab.decode(i) for i in window_items)
            else:
                fingerprint = None
                raw_seen = ()

        if fingerprint is None:
            # Cold start: nothing scoreable yet — popularity if we have it.
            fb = self.admission.fallback
            items = fb.top_k(k) if fb is not None else []
            result = {
                "session_id": session_id,
                "items": items,
                "source": "cold_start",
                "cached": False,
                "degraded": False,
            }
            self._observe_latency(started)
            return result

        scope = self.service.score_scope(session_id)
        cached = self.cache.get(session_id, fingerprint, k, exclude_seen, scope=scope)
        if cached is not None:
            self._cache_hits.inc()
            self._update_hit_rate()
            result = {
                "session_id": session_id,
                "items": cached,
                "source": "cache",
                "cached": True,
                "degraded": False,
            }
            self._observe_latency(started)
            return result
        self._cache_misses.inc()
        self._update_hit_rate()

        try:
            rec = self.admission.recommend(
                session_id, k=k, exclude_seen=exclude_seen, exclude_raw=raw_seen
            )
        finally:
            self._observe_latency(started)
        if rec.source == "model" and self.service.score_scope(session_id) == scope:
            # The scope re-check closes a demotion race: if the session's
            # generation changed while this request was in flight, the
            # scores belong to a generation that must never serve again.
            self.cache.put(session_id, fingerprint, k, rec.items, exclude_seen, scope=scope)
        return {
            "session_id": session_id,
            "items": rec.items,
            "source": rec.source,
            "cached": False,
            "degraded": rec.source != "model",
        }

    def health(self) -> dict:
        payload = {
            "status": "ok",
            "active_sessions": self.service.active_sessions,
            "queue_depth": self.batcher.queue_depth,
            "breaker": self.breaker.state,
            "retrieval": self.service.retrieval_mode,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
        }
        if self.deployment is not None:
            candidate = self.deployment.candidate
            payload["deployment"] = {
                "generation": self.deployment.generation,
                "incumbent": self.deployment.incumbent.version,
                "candidate": candidate.version if candidate is not None else None,
            }
        return payload

    # --------------------------------------------------------------- deploy
    def deploy_status(self) -> dict:
        """Control-plane snapshot (``GET /deploy``)."""
        self._require_deployment()
        return self.deployment.status()

    def deploy_stage(
        self,
        artifact: str,
        canary_pct: float | None = None,
        shadow_sample: float | None = None,
        wait: bool = True,
    ) -> dict:
        """Stage a candidate artifact (``POST /deploy``)."""
        self._require_deployment()
        live = self.deployment.stage(
            artifact, canary_pct=canary_pct, shadow_sample=shadow_sample, wait=wait
        )
        return {"staged": bool(live), **self.deployment.status()}

    def deploy_promote(self, reason: str = "manual") -> dict:
        self._require_deployment()
        promoted = self.deployment.promote(reason=reason)
        return {"promoted": promoted.version, **self.deployment.status()}

    def deploy_rollback(self, reason: str = "manual") -> dict:
        self._require_deployment()
        demoted = self.deployment.rollback(reason=reason)
        return {"rolled_back": demoted.version, **self.deployment.status()}

    def _require_deployment(self) -> None:
        if self.deployment is None:
            raise DeploymentError("no deployment manager attached to this gateway")

    def _on_deploy_event(self, event: str, payload: dict) -> None:
        """DeploymentManager observer: lifecycle → /metrics."""
        if event == "canary_started":
            self._deploy_swaps.inc()
            self._deploy_candidate.set(1)
        elif event == "swap_failed":
            self._deploy_swap_failures.inc()
        elif event == "promoted":
            self._deploy_promotes.inc()
            self._deploy_generation.set(self.deployment.generation)
            self._deploy_candidate.set(0)
            # Old-generation cache entries die by scope mismatch; the LRU
            # evicts them — no flush needed.
        elif event == "rolled_back":
            self._deploy_rollbacks.inc()
            self._deploy_candidate.set(0)
        elif event == "shadow_eval":
            self._shadow_incumbent_hr.set(payload.get("incumbent_hr", 0.0))
            self._shadow_candidate_hr.set(payload.get("candidate_hr", 0.0))
            self._shadow_delta.set(payload.get("delta", 0.0))
            self._shadow_observations.set(payload.get("observations", 0))

    def _on_canary_assign(self, arm: str) -> None:
        if arm == "candidate":
            self._canary_candidate.inc()
        else:
            self._canary_incumbent.inc()

    def _observe_latency(self, started: float) -> None:
        self._latency.observe((time.perf_counter() - started) * 1000.0)

    def _observe_retrieval(self, stats) -> None:
        """RetrievalPipeline observer: per-session ANN telemetry."""
        rows = max(1, stats.rows)
        for _ in range(stats.rows):
            self._retrieval_candidates.observe(stats.candidates / rows)
            self._retrieval_probes.observe(stats.probes / rows)
        self._retrieval_ann_ms.observe(stats.ann_ms)
        self._retrieval_rerank_ms.observe(stats.rerank_ms)

    def _update_hit_rate(self) -> None:
        self._cache_hit_rate.set(self.cache.hit_rate)

    # ------------------------------------------------------------------ http
    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("gateway is not started")
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ServingGateway":
        """Bind the server, start the batcher and the accept loop."""
        if self._server is not None:
            return self
        self.batcher.start()
        handler = type("GatewayHandler", (_Handler,), {"gateway": self})
        self._server = ThreadingHTTPServer((self.config.host, self.config.port), handler)
        self._server.daemon_threads = True
        self._server_thread = threading.Thread(
            target=self._server.serve_forever, name="gateway-http", daemon=True
        )
        self._started_at = time.monotonic()
        self._server_thread.start()
        return self

    def stop(self) -> None:
        if self._server is not None:
            self._server.shutdown()
            self._server.server_close()
            self._server = None
            self._server_thread = None
        self.batcher.stop()

    def __enter__(self) -> "ServingGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP verbs/paths onto the gateway's request operations."""

    gateway: ServingGateway  # bound via subclassing in ServingGateway.start
    protocol_version = "HTTP/1.1"
    # Small request/response pairs on keep-alive connections hit the classic
    # Nagle + delayed-ACK 40ms stall without this.
    disable_nagle_algorithm = True

    # Silence per-request stderr logging; metrics are the observability story.
    def log_message(self, format: str, *args) -> None:
        pass

    def _reply(self, status: int, body: bytes, content_type: str, headers: dict | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        self._reply(status, json.dumps(payload).encode(), "application/json", headers)

    def do_GET(self) -> None:  # noqa: N802 (BaseHTTPRequestHandler API)
        url = urlparse(self.path)
        try:
            if url.path == "/healthz":
                self._json(200, self.gateway.health())
            elif url.path == "/metrics":
                self._reply(200, self.gateway.registry.render_text().encode(), "text/plain; version=0.0.4")
            elif url.path == "/recommend":
                self._recommend(parse_qs(url.query))
            elif url.path == "/deploy":
                self._json(200, self.gateway.deploy_status())
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except DeploymentError as error:
            self._json(409, {"error": str(error)})
        except BrokenPipeError:
            pass
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": str(error)})

    def do_POST(self) -> None:  # noqa: N802
        url = urlparse(self.path)
        try:
            if url.path == "/events":
                self._events()
            elif url.path == "/sessions/end":
                payload = self._body()
                self.gateway.end_session(str(payload["session_id"]))
                self._json(200, {"ended": True})
            elif url.path == "/deploy":
                self._deploy_stage()
            elif url.path == "/deploy/promote":
                payload = self._body()
                self._json(200, self.gateway.deploy_promote(str(payload.get("reason", "manual"))))
            elif url.path == "/deploy/rollback":
                payload = self._body()
                self._json(200, self.gateway.deploy_rollback(str(payload.get("reason", "manual"))))
            else:
                self._json(404, {"error": f"no route for {url.path}"})
        except (KeyError, ValueError, json.JSONDecodeError) as error:
            self._json(400, {"error": f"bad request: {error}"})
        except DeploymentError as error:
            self._json(409, {"error": str(error)})
        except BrokenPipeError:
            pass
        except Exception as error:  # pragma: no cover - defensive 500
            self._json(500, {"error": str(error)})

    # ------------------------------------------------------------------
    def _body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        return json.loads(self.rfile.read(length) or b"{}")

    def _events(self) -> None:
        payload = self._body()
        result = self.gateway.ingest(
            str(payload["session_id"]), int(payload["item"]), int(payload["operation"])
        )
        self._json(200, result)

    def _deploy_stage(self) -> None:
        payload = self._body()
        result = self.gateway.deploy_stage(
            str(payload["artifact"]),
            canary_pct=(
                float(payload["canary_pct"]) if "canary_pct" in payload else None
            ),
            shadow_sample=(
                float(payload["shadow_sample"]) if "shadow_sample" in payload else None
            ),
            wait=bool(payload.get("wait", True)),
        )
        self._json(200 if result["staged"] else 409, result)

    def _recommend(self, query: dict[str, list[str]]) -> None:
        if "session_id" not in query:
            self._json(400, {"error": "session_id query parameter is required"})
            return
        session_id = query["session_id"][0]
        k = int(query.get("k", ["10"])[0])
        exclude_seen = query.get("exclude_seen", ["0"])[0] in ("1", "true", "yes")
        try:
            self._json(200, self.gateway.recommend(session_id, k=k, exclude_seen=exclude_seen))
        except QueueFullError:
            self._json(429, {"error": "overloaded, try again"}, headers={"Retry-After": "1"})
        except DeadlineExceededError:
            self._json(504, {"error": "deadline exceeded and no fallback configured"})
        except ReliabilityError as error:
            # Breaker open / retries exhausted with no fallback configured.
            self._json(503, {"error": str(error)}, headers={"Retry-After": "1"})
