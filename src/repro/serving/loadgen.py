"""Closed-loop load generator for the serving gateway.

``workers`` threads each own a persistent HTTP connection and loop:
POST an event for one of their sessions, then GET a recommendation —
issuing the next request only after the previous response lands (closed
loop), so concurrency is exactly ``workers`` and measured throughput is
the system's, not the generator's. Per-request latencies and status
counts aggregate into a :class:`LoadReport`; ``benchmarks/bench_serving.py``
and the slow gateway tests both drive it.

Traffic shape is controlled by :class:`SessionPersona`: the default mix
of burst visitors (short sessions, frequent rotation) can be blended with
long-lived personas whose sessions survive hot-swaps — the traffic that
makes canary stickiness and cache-generation scoping actually observable
(``benchmarks/bench_deploy.py`` relies on them).
"""

from __future__ import annotations

import http.client
import json
import random
import threading
import time
from dataclasses import dataclass, field

__all__ = ["LoadReport", "SessionPersona", "run_load"]


@dataclass(frozen=True)
class SessionPersona:
    """How one load-generation worker behaves as a "user".

    Parameters
    ----------
    name:
        Label; becomes part of the session id (``load-<name>-<worker>``).
    event_every:
        POST an event before every N-th recommend request.
    session_lifetime:
        Requests after which the worker abandons its session id and starts
        a fresh one (``0`` = never — a long-lived session that persists
        across hot-swaps and keeps one canary arm for its whole life).
    """

    name: str = "burst"
    event_every: int = 5
    session_lifetime: int = 0

    def __post_init__(self):
        if self.event_every < 1:
            raise ValueError("event_every must be >= 1")
        if self.session_lifetime < 0:
            raise ValueError("session_lifetime must be >= 0")


# The default mix: mostly long-lived browsers plus churning visitors.
DEFAULT_PERSONAS = (
    SessionPersona(name="longlived", event_every=3, session_lifetime=0),
    SessionPersona(name="visitor", event_every=5, session_lifetime=25),
)


@dataclass
class LoadReport:
    """Aggregate outcome of one load-generation run."""

    requests: int = 0
    errors: int = 0
    status_counts: dict[int, int] = field(default_factory=dict)
    latencies_ms: list[float] = field(default_factory=list)
    duration_s: float = 0.0

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s else 0.0

    def percentile(self, q: float) -> float:
        """Exact sample quantile of observed latencies (0 when empty)."""
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        idx = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[idx]

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "status_counts": {str(k): v for k, v in sorted(self.status_counts.items())},
            "throughput_rps": round(self.throughput_rps, 1),
            "p50_ms": round(self.percentile(0.50), 3),
            "p95_ms": round(self.percentile(0.95), 3),
            "p99_ms": round(self.percentile(0.99), 3),
            "duration_s": round(self.duration_s, 3),
        }


def _worker(
    host: str,
    port: int,
    worker_id: int,
    items: list[int],
    num_ops: int,
    requests_per_worker: int,
    k: int,
    report: LoadReport,
    lock: threading.Lock,
    persona: SessionPersona,
) -> None:
    rng = random.Random(worker_id)
    conn = http.client.HTTPConnection(host, port, timeout=10.0)
    incarnation = 0
    session_id = f"load-{persona.name}-{worker_id}"
    local_latencies: list[float] = []
    local_status: dict[int, int] = {}
    local_requests = 0
    local_errors = 0
    try:
        for i in range(requests_per_worker):
            try:
                if persona.session_lifetime and i and i % persona.session_lifetime == 0:
                    incarnation += 1
                    session_id = f"load-{persona.name}-{worker_id}-{incarnation}"
                if i % persona.event_every == 0:
                    body = json.dumps(
                        {
                            "session_id": session_id,
                            "item": rng.choice(items),
                            "operation": rng.randrange(num_ops),
                        }
                    )
                    conn.request("POST", "/events", body=body, headers={"Content-Type": "application/json"})
                    conn.getresponse().read()
                started = time.perf_counter()
                conn.request("GET", f"/recommend?session_id={session_id}&k={k}")
                response = conn.getresponse()
                response.read()
                local_latencies.append((time.perf_counter() - started) * 1000.0)
                local_status[response.status] = local_status.get(response.status, 0) + 1
                local_requests += 1
            except (OSError, http.client.HTTPException):
                local_errors += 1
                conn.close()
                conn = http.client.HTTPConnection(host, port, timeout=10.0)
    finally:
        conn.close()
    with lock:
        report.requests += local_requests
        report.errors += local_errors
        report.latencies_ms.extend(local_latencies)
        for status, n in local_status.items():
            report.status_counts[status] = report.status_counts.get(status, 0) + n


def run_load(
    host: str,
    port: int,
    items: list[int],
    num_ops: int,
    workers: int = 16,
    requests_per_worker: int = 50,
    k: int = 10,
    event_every: int | None = None,
    personas: tuple[SessionPersona, ...] | None = None,
) -> LoadReport:
    """Drive the gateway with ``workers`` closed-loop clients.

    ``items`` are raw (decodable) item ids to sample events from. Workers
    take personas round-robin from ``personas`` (default
    :data:`DEFAULT_PERSONAS`: long-lived browsers + churning visitors);
    passing ``event_every`` keeps the old single-persona behavior — every
    worker one immortal session with that event:recommend mix.
    """
    if personas is None:
        if event_every is not None:
            personas = (SessionPersona(name="burst", event_every=event_every),)
        else:
            personas = DEFAULT_PERSONAS
    elif event_every is not None:
        raise ValueError("pass either event_every or personas, not both")
    report = LoadReport()
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_worker,
            args=(
                host, port, w, items, num_ops, requests_per_worker, k, report, lock,
                personas[w % len(personas)],
            ),
            daemon=True,
        )
        for w in range(workers)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.duration_s = time.perf_counter() - started
    return report
