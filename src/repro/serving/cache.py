"""Generation-aware TTL score cache for live recommendations.

Identical consecutive ``GET /recommend`` calls are extremely common in
production (page re-renders, retries, polling widgets) and a session's
ranking only changes when the session itself does. :class:`ScoreCache`
therefore keys entries on the session's *scored-window fingerprint* (the
exact ``(items, op_sequences)`` slice the model sees — see
``LiveSession.window``) plus the request shape ``(k, exclude_seen)``, and
pairs that with a per-session **generation counter**: every ingested event
bumps the generation, so stale rankings die instantly without scanning the
cache. A TTL bounds staleness of everything else (e.g. after a model swap)
and an LRU bound caps memory.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Hashable

__all__ = ["ScoreCache"]


class ScoreCache:
    """LRU + TTL + generation-checked cache of top-K result lists.

    Parameters
    ----------
    max_entries:
        LRU capacity; the least recently used entry is evicted first.
    ttl:
        Seconds after which an entry is considered stale regardless of
        generation.
    clock:
        Injectable time source (tests freeze it).
    """

    def __init__(self, max_entries: int = 4096, ttl: float = 30.0, clock=time.monotonic):
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        # key -> (generation, stored_at, value)
        self._entries: OrderedDict[tuple, tuple[int, float, list[int]]] = OrderedDict()
        self._generations: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    # ------------------------------------------------------------------
    def _key(
        self,
        session_id: str,
        fingerprint: Hashable,
        k: int,
        exclude_seen: bool,
        scope: Hashable = None,
    ) -> tuple:
        # ``scope`` names the scoring configuration that produced the entry
        # (retrieval mode + index generation + nprobe). Without it, an exact
        # ranking cached before an ANN index was attached — or against an
        # older index build — would alias the ANN path's answer for the same
        # session fingerprint.
        return (session_id, fingerprint, k, exclude_seen, scope)

    def generation(self, session_id: str) -> int:
        return self._generations.get(session_id, 0)

    def invalidate(self, session_id: str) -> None:
        """Bump the session's generation; all its cached entries go stale."""
        with self._lock:
            self._generations[session_id] = self._generations.get(session_id, 0) + 1
            self.invalidations += 1

    def forget(self, session_id: str) -> None:
        """Drop generation tracking for an ended/evicted session."""
        with self._lock:
            self._generations.pop(session_id, None)

    # ------------------------------------------------------------------
    def get(
        self,
        session_id: str,
        fingerprint: Hashable,
        k: int,
        exclude_seen: bool = False,
        *,
        scope: Hashable = None,
    ) -> list[int] | None:
        """Cached ranking, or ``None`` on miss/stale (never a wrong answer)."""
        key = self._key(session_id, fingerprint, k, exclude_seen, scope)
        now = self._clock()
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            generation, stored_at, value = entry
            if generation != self._generations.get(session_id, 0) or now - stored_at > self.ttl:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return list(value)

    def put(
        self,
        session_id: str,
        fingerprint: Hashable,
        k: int,
        value: list[int],
        exclude_seen: bool = False,
        *,
        scope: Hashable = None,
    ) -> None:
        key = self._key(session_id, fingerprint, k, exclude_seen, scope)
        with self._lock:
            self._entries[key] = (self._generations.get(session_id, 0), self._clock(), list(value))
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
