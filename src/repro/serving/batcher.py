"""Micro-batching scheduler: coalesce concurrent top-K requests.

The model substrate is dramatically more efficient per request at batch
size B than at batch size 1 (one NumPy forward amortizes all Python/op
overhead across B sessions), so the gateway never calls the model
per-request. Handler threads :meth:`~MicroBatcher.submit` requests into a
bounded queue and block on a :class:`BatchFuture`; a single scorer thread
drains the queue into batches, flushing when either ``max_batch_size``
requests are waiting or the oldest request has waited ``max_wait_ms``
(the classic size-or-timeout trigger pair). A full queue rejects
immediately with :class:`QueueFullError` — backpressure for the admission
layer to convert into HTTP 429s.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..reliability import ResilientCaller, failpoint
from .metrics import MetricsRegistry

__all__ = ["BatchFuture", "MicroBatcher", "QueueFullError", "DeadlineExceededError"]


class QueueFullError(RuntimeError):
    """The batcher's request queue is at capacity (shed this request)."""


class DeadlineExceededError(TimeoutError):
    """The request's deadline expired before a result was produced."""


class BatchFuture:
    """Single-use handle a submitting thread blocks on for its ranking."""

    def __init__(self):
        self._done = threading.Event()
        self._result: list[int] | None = None
        self._error: BaseException | None = None

    def set_result(self, result: list[int]) -> None:
        self._result = result
        self._done.set()

    def set_error(self, error: BaseException) -> None:
        self._error = error
        self._done.set()

    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> list[int]:
        """Block for the ranking; :class:`DeadlineExceededError` on timeout."""
        if not self._done.wait(timeout):
            raise DeadlineExceededError("batched scoring missed the deadline")
        if self._error is not None:
            raise self._error
        assert self._result is not None
        return self._result


@dataclass
class _Request:
    session_id: str
    k: int
    exclude_seen: bool
    future: BatchFuture = field(default_factory=BatchFuture)
    expires_at: float | None = None  # monotonic; worker skips dead requests


class MicroBatcher:
    """Size-or-timeout request coalescer in front of ``top_k_batch``.

    Parameters
    ----------
    service:
        Anything exposing ``top_k_batch(session_ids, k, exclude_seen)`` —
        normally a :class:`~repro.serve.RecommenderService`.
    max_batch_size:
        Flush as soon as this many requests are collected.
    max_wait_ms:
        Flush at most this long after the first request of a batch arrived;
        bounds the latency cost of coalescing.
    max_queue_depth:
        Bound on requests waiting to be batched; beyond it ``submit``
        raises :class:`QueueFullError`.
    registry:
        Optional :class:`MetricsRegistry` for batch-size / flush metrics.
    lock:
        Optional lock held around every ``top_k_batch`` call, shared with
        whatever mutates the service (the gateway's ingest path).
    caller:
        Optional :class:`~repro.reliability.ResilientCaller` wrapping each
        model call in retry-with-backoff, a per-call timeout, and a
        circuit breaker. ``None`` calls the model directly (the pre-PR-2
        behavior). The ``batcher.score`` failpoint fires before every
        attempt, so chaos tests can inject intermittent faults and stalls.
    """

    def __init__(
        self,
        service,
        max_batch_size: int = 32,
        max_wait_ms: float = 5.0,
        max_queue_depth: int = 256,
        registry: MetricsRegistry | None = None,
        lock: threading.Lock | None = None,
        caller: ResilientCaller | None = None,
    ):
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self.service = service
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.caller = caller
        self.lock = lock or threading.Lock()
        self._queue: queue.Queue[_Request | None] = queue.Queue(maxsize=max_queue_depth)
        self._thread: threading.Thread | None = None
        registry = registry or MetricsRegistry()
        self._flushes = registry.counter("batcher_flushes_total", "model calls made")
        self._batched = registry.counter("batcher_requests_total", "requests scored")
        self._expired = registry.counter("batcher_expired_total", "requests dead on arrival")
        self._batch_size = registry.histogram(
            "batcher_batch_size", "requests per flush", buckets=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        self._depth = registry.gauge("batcher_queue_depth", "requests waiting")

    # ------------------------------------------------------------------
    def start(self) -> "MicroBatcher":
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(target=self._run, name="micro-batcher", daemon=True)
            self._thread.start()
        return self

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is not None:
            self._queue.put(None)
            self._thread.join(timeout)
            self._thread = None

    @property
    def queue_depth(self) -> int:
        return self._queue.qsize()

    # ------------------------------------------------------------------
    def submit(
        self,
        session_id: str,
        k: int = 10,
        exclude_seen: bool = False,
        deadline_s: float | None = None,
    ) -> BatchFuture:
        """Enqueue one request; returns immediately with its future."""
        expires_at = time.monotonic() + deadline_s if deadline_s is not None else None
        request = _Request(session_id, k, exclude_seen, expires_at=expires_at)
        try:
            self._queue.put_nowait(request)
        except queue.Full:
            raise QueueFullError(
                f"batcher queue at capacity ({self._queue.maxsize} pending)"
            ) from None
        self._depth.set(self._queue.qsize())
        return request.future

    # ------------------------------------------------------------------
    def _collect(self) -> list[_Request] | None:
        """Block for a first request, then gather until size/timeout; None = stop."""
        first = self._queue.get()
        if first is None:
            return None
        batch = [first]
        deadline = time.monotonic() + self.max_wait_ms / 1000.0
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            try:
                nxt = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            if nxt is None:  # stop requested mid-gather: flush, then exit
                self._queue.put(None)
                break
            batch.append(nxt)
        self._depth.set(self._queue.qsize())
        return batch

    def flush(self, batch: list[_Request]) -> None:
        """Score one gathered batch and resolve every request's future."""
        now = time.monotonic()
        live: list[_Request] = []
        for request in batch:
            if request.expires_at is not None and now > request.expires_at:
                self._expired.inc()
                request.future.set_error(DeadlineExceededError("expired before scoring"))
            else:
                live.append(request)
        if not live:
            return
        self._flushes.inc()
        self._batched.inc(len(live))
        self._batch_size.observe(len(live))
        # One model call per (k, exclude_seen) shape; requests for the same
        # session collapse inside top_k_batch's result dict.
        groups: dict[tuple[int, bool], list[_Request]] = {}
        for request in live:
            groups.setdefault((request.k, request.exclude_seen), []).append(request)
        for (k, exclude_seen), members in groups.items():
            session_ids = [m.session_id for m in members]

            def score(session_ids=session_ids, k=k, exclude_seen=exclude_seen):
                # The failpoint sits outside the lock so injected stalls
                # simulate a slow model without freezing the ingest path.
                failpoint("batcher.score", session_ids)
                with self.lock:
                    return self.service.top_k_batch(
                        session_ids, k=k, exclude_seen=exclude_seen
                    )

            try:
                results = self.caller.call(score) if self.caller is not None else score()
            except BaseException as error:  # propagate to every waiter
                for member in members:
                    member.future.set_error(error)
                continue
            for member in members:
                member.future.set_result(results[member.session_id])

    def _run(self) -> None:
        while True:
            batch = self._collect()
            if batch is None:
                return
            self.flush(batch)
