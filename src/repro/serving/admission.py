"""Graceful degradation: load shedding, deadlines, and a cheap fallback.

Three independent safety valves keep the gateway responsive under stress:

1. **Load shedding** — the batcher's bounded queue rejects new work when
   full; :class:`AdmissionController` counts the shed and re-raises so the
   HTTP layer answers 429 in microseconds instead of queueing unboundedly.
2. **Deadlines** — every admitted request carries a wall-clock budget; a
   request still unanswered when it expires stops waiting on the model.
3. **Fallback** — expired requests, and requests whose model call failed
   through the resilient scoring path (retries exhausted, per-call
   timeout, or an open circuit breaker — any
   :class:`~repro.reliability.ReliabilityError`), are answered from
   :class:`PopularityFallback`, a precomputed global-popularity ranking
   (the classic "most popular" degraded mode: worse, but instant and never
   empty), and flagged ``degraded`` so callers/metrics can see it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..data.preprocess import PreparedDataset
from ..reliability import ReliabilityError
from .batcher import DeadlineExceededError, MicroBatcher, QueueFullError
from .metrics import MetricsRegistry

__all__ = ["PopularityFallback", "AdmissionController", "Recommendation"]


class PopularityFallback:
    """Global-popularity ranking precomputed from a dataset's train split.

    Answering from a sorted list is O(k) with zero model involvement, which
    is exactly what a deadline-missing request needs. Returned ids are raw
    (decoded) item ids, like the primary path's.
    """

    def __init__(self, dataset: PreparedDataset | None = None, *, ranked_raw: list[int] | None = None):
        if (dataset is None) == (ranked_raw is None):
            raise ValueError("provide exactly one of dataset or ranked_raw")
        if dataset is not None:
            from ..data.stats import popularity_ranking

            ranked_raw = popularity_ranking(dataset)
        self._ranked_raw = list(ranked_raw)

    @classmethod
    def from_ranked(cls, ranked_raw: list[int]) -> "PopularityFallback":
        """Build from a precomputed ranking (e.g. artifact metadata) —
        raw item ids, most popular first — with no dataset on disk."""
        return cls(ranked_raw=ranked_raw)

    def top_k(self, k: int, exclude_raw: tuple[int, ...] = ()) -> list[int]:
        """Most popular ``k`` raw item ids, skipping ``exclude_raw``."""
        excluded = set(exclude_raw)
        out = []
        for raw in self._ranked_raw:
            if raw in excluded:
                continue
            out.append(raw)
            if len(out) == k:
                break
        return out


@dataclass
class Recommendation:
    """A ranking plus how it was produced (primary model or degraded)."""

    items: list[int]
    source: str  # "model" | "fallback"
    cached: bool = False


class AdmissionController:
    """Front door for ``/recommend``: admit, bound, degrade.

    Parameters
    ----------
    batcher:
        The :class:`MicroBatcher` doing the actual scoring.
    deadline_ms:
        Per-request budget from admission to answer; a miss triggers the
        fallback (or re-raises when no fallback is configured).
    fallback:
        Optional :class:`PopularityFallback` used on deadline misses.
    registry:
        Metrics registry for shed/fallback counters.
    """

    def __init__(
        self,
        batcher: MicroBatcher,
        deadline_ms: float = 100.0,
        fallback: PopularityFallback | None = None,
        registry: MetricsRegistry | None = None,
    ):
        self.batcher = batcher
        self.deadline_ms = deadline_ms
        self.fallback = fallback
        registry = registry or MetricsRegistry()
        self._shed = registry.counter("requests_shed_total", "rejected with 429: queue full")
        self._fallbacks = registry.counter(
            "requests_fallback_total", "answered by popularity after deadline miss"
        )
        self._degraded = registry.counter(
            "requests_degraded_total", "answered by popularity after a model failure"
        )

    def recommend(
        self,
        session_id: str,
        k: int = 10,
        exclude_seen: bool = False,
        exclude_raw: tuple[int, ...] = (),
    ) -> Recommendation:
        """Admit one request end-to-end.

        Raises :class:`QueueFullError` when shed (HTTP 429); re-raises a
        deadline miss or a resilient-scoring failure when no fallback is
        configured (HTTP 504 / 503).
        """
        deadline_s = self.deadline_ms / 1000.0
        try:
            future = self.batcher.submit(
                session_id, k=k, exclude_seen=exclude_seen, deadline_s=deadline_s
            )
        except QueueFullError:
            self._shed.inc()
            raise
        try:
            return Recommendation(items=future.result(timeout=deadline_s), source="model")
        except (DeadlineExceededError, ReliabilityError) as error:
            if isinstance(error, DeadlineExceededError):
                self._fallbacks.inc()
            else:
                self._degraded.inc()
            if self.fallback is None:
                raise
            return Recommendation(
                items=self.fallback.top_k(k, exclude_raw=exclude_raw if exclude_seen else ()),
                source="fallback",
            )
