"""Production serving stack on top of :mod:`repro.serve`.

``repro.serve`` answers "top-K for this session" one caller at a time;
this package wraps it in the machinery a real deployment needs:

* :mod:`~repro.serving.batcher` — coalesce concurrent requests into one
  model call (size-or-timeout micro-batching);
* :mod:`~repro.serving.cache` — generation-aware TTL cache of rankings,
  invalidated the moment a session ingests a new event;
* :mod:`~repro.serving.admission` — bounded-queue load shedding,
  per-request deadlines, popularity fallback (graceful degradation);
  model-call failures surfaced by the resilient scoring path
  (:mod:`repro.reliability`: retry, per-call timeout, circuit breaker)
  degrade to the same fallback instead of erroring;
* :mod:`~repro.serving.metrics` — counters / gauges / latency histograms
  rendered at ``/metrics``;
* :mod:`~repro.serving.gateway` — the stdlib JSON-over-HTTP front end;
* :mod:`~repro.serving.loadgen` — a closed-loop load generator for
  benchmarks and end-to-end tests.

See ``docs/serving.md`` for the architecture walk-through and
``repro serve`` for a one-command demo.
"""

from .admission import AdmissionController, PopularityFallback, Recommendation
from .batcher import BatchFuture, DeadlineExceededError, MicroBatcher, QueueFullError
from .cache import ScoreCache
from .gateway import GatewayConfig, ServingGateway
from .loadgen import LoadReport, SessionPersona, run_load
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "AdmissionController",
    "PopularityFallback",
    "Recommendation",
    "BatchFuture",
    "DeadlineExceededError",
    "MicroBatcher",
    "QueueFullError",
    "ScoreCache",
    "GatewayConfig",
    "ServingGateway",
    "LoadReport",
    "SessionPersona",
    "run_load",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
