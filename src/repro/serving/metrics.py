"""Observability primitives for the serving gateway.

A tiny, thread-safe, dependency-free metrics registry in the spirit of the
Prometheus client: monotonically increasing :class:`Counter`\\ s,
set-to-current :class:`Gauge`\\ s, and fixed-bucket :class:`Histogram`\\ s
whose p50/p95/p99 summaries are interpolated from bucket counts (constant
memory regardless of request volume). :meth:`MetricsRegistry.render_text`
produces the exposition format served at ``GET /metrics``.
"""

from __future__ import annotations

import bisect
import threading

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_LATENCY_BUCKETS_MS"]

# Request latencies in milliseconds: sub-ms cache hits up to multi-second
# stragglers, roughly logarithmic.
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = (
    0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000,
)


class Counter:
    """A monotonically increasing count (requests served, cache hits, ...)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that goes up and down (queue depth, active sessions)."""

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated percentile summaries.

    ``buckets`` are upper bounds (``le``); observations beyond the last
    bound land in a +Inf overflow bucket. Percentiles assume observations
    are uniform within a bucket — exact enough for latency dashboards while
    keeping ``observe`` O(log buckets) and memory O(buckets).
    """

    def __init__(self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self.name = name
        self.help = help
        self.bounds = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.bounds) + 1)  # +Inf overflow
        self._sum = 0.0
        self._count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Interpolated ``q``-quantile (``q`` in [0, 1]); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be within [0, 1]")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for idx, n in enumerate(counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = 0.0 if idx == 0 else self.bounds[idx - 1]
                hi = self.bounds[idx] if idx < len(self.bounds) else lo
                fraction = (rank - cumulative) / n
                return lo + (hi - lo) * fraction
            cumulative += n
        return self.bounds[-1]

    def summary(self) -> dict[str, float]:
        """The dashboard quartet: count, p50, p95, p99."""
        return {
            "count": float(self.count),
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named metric factory + text renderer for the ``/metrics`` endpoint.

    ``counter``/``gauge``/``histogram`` are idempotent get-or-create calls,
    so any component can grab its instruments by name without coordinating
    registration order.
    """

    def __init__(self):
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind, **kwargs):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = kind(name, **kwargs)
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(f"metric {name!r} already registered as {type(metric).__name__}")
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(name, Counter, help=help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, Gauge, help=help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, help=help, buckets=buckets)

    def snapshot(self) -> dict[str, object]:
        """JSON-friendly dump of every metric (benchmarks persist this)."""
        out: dict[str, object] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.summary() | {"sum": metric.sum}
            else:
                out[name] = metric.value
        return out

    def render_text(self) -> str:
        """Prometheus-style exposition (counters, gauges, bucket counts)."""
        lines: list[str] = []
        for name, metric in sorted(self._metrics.items()):
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name} {metric.value:g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name} {metric.value:g}")
            else:
                lines.append(f"# TYPE {name} histogram")
                cumulative = 0
                with metric._lock:
                    counts = list(metric._counts)
                    total, total_sum = metric._count, metric._sum
                for bound, n in zip(metric.bounds, counts):
                    cumulative += n
                    lines.append(f'{name}_bucket{{le="{bound:g}"}} {cumulative}')
                lines.append(f'{name}_bucket{{le="+Inf"}} {total}')
                lines.append(f"{name}_sum {total_sum:g}")
                lines.append(f"{name}_count {total}")
                for q in (0.50, 0.95, 0.99):
                    lines.append(f'{name}_quantile{{q="{q:g}"}} {metric.percentile(q):g}')
        return "\n".join(lines) + "\n"
