"""Online serving: incremental session tracking and live recommendations.

The training stack works on complete sessions; a production recommender
sees *events* — "user U did operation O on item V" — and must answer
"top-K next items for U?" at any moment. :class:`RecommenderService` keeps
per-session state (with the same merge-successive semantics as training,
Sec. II-B), maps raw item ids through the training vocabulary, and scores
sessions in batches against any fitted :class:`~repro.eval.Recommender`.

Example
-------
>>> service = RecommenderService(recommender, dataset.vocab, num_ops=10)
>>> service.record("u1", item=1042, operation=3)
>>> service.record("u1", item=1042, operation=8)
>>> service.top_k("u1", k=5)
[...five raw item ids...]
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .data.dataset import collate
from .data.preprocess import ItemVocab
from .data.schema import MacroSession
from .eval.recommender import Recommender
from .eval.topk import top_k_indices

__all__ = ["LiveSession", "RecommenderService"]


@dataclass
class LiveSession:
    """Mutable per-user session state (dense ids, merged macro steps)."""

    macro_items: list[int] = field(default_factory=list)
    op_sequences: list[list[int]] = field(default_factory=list)
    last_event_at: float = 0.0
    dropped_events: int = 0  # events whose item was unknown to the vocab

    def record(self, dense_item: int, operation: int, at: float) -> None:
        if self.macro_items and self.macro_items[-1] == dense_item:
            self.op_sequences[-1].append(operation)
        else:
            self.macro_items.append(dense_item)
            self.op_sequences.append([operation])
        self.last_event_at = at

    @property
    def num_macro_steps(self) -> int:
        return len(self.macro_items)

    def window(self, max_macro_len: int) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
        """The (items, op-sequences) slice the model actually scores.

        Truncation to the most recent ``max_macro_len`` macro steps matches
        training-time preprocessing; both :meth:`to_example` and everything
        that must agree with scoring semantics (seen-item masking, cache
        fingerprints) derive from this one helper.
        """
        items = tuple(self.macro_items[-max_macro_len:])
        ops = tuple(tuple(o) for o in self.op_sequences[-max_macro_len:])
        return items, ops

    def fingerprint(self, max_macro_len: int) -> tuple:
        """Hashable identity of the scoreable state (for score caches)."""
        return self.window(max_macro_len)

    def to_example(self, max_macro_len: int) -> MacroSession:
        """Snapshot as a scoreable example (target is a placeholder)."""
        items, ops = self.window(max_macro_len)
        return MacroSession(list(items), [list(o) for o in ops], target=1)


class RecommenderService:
    """Serve top-K recommendations over live micro-behavior streams.

    Parameters
    ----------
    recommender:
        Any fitted :class:`Recommender` (EMBSR, a baseline, ...).
    vocab:
        The training :class:`ItemVocab`; raw event item ids are mapped
        through it and unknown items are counted but ignored (cold items
        have no embedding — the paper's closed-set setting).
    num_ops:
        Size of the operation vocabulary; out-of-range operations raise.
    max_macro_len:
        Sessions are truncated to their most recent steps, matching
        training-time preprocessing.
    session_ttl:
        Seconds of inactivity after which :meth:`sweep_expired` evicts a
        session (session segmentation by inactivity gap).
    """

    def __init__(
        self,
        recommender: Recommender,
        vocab: ItemVocab,
        num_ops: int,
        max_macro_len: int = 20,
        session_ttl: float = 1800.0,
        clock=time.monotonic,
        event_buffer=None,
    ):
        self.recommender = recommender
        self.vocab = vocab
        self.num_ops = num_ops
        self.max_macro_len = max_macro_len
        self.session_ttl = session_ttl
        self._clock = clock
        self._sessions: dict[str, LiveSession] = {}
        self.vocab_misses = 0  # unknown-item events from visitors with no session
        self.retrieval = None  # optional RetrievalPipeline (ANN candidate path)
        self.event_buffer = event_buffer  # optional EventRingBuffer (online training)
        self.deployment = None  # optional DeploymentManager (hot-swap/canary)
        self.compute = "native"  # or float32/float16/int8 (QuantizedScorer)
        self._quantized = None  # QuantizedScorer when compute != "native"

    @classmethod
    def from_artifact(cls, artifact, retrieval: str = "exact", nprobe: int | None = None, **kwargs) -> "RecommenderService":
        """Boot a service from a model artifact — no dataset required.

        ``artifact`` is a :class:`~repro.artifacts.ModelArtifact` or a path
        to one; the bundle carries the recommender, the vocabulary, and the
        operation count, so this is the whole serving bootstrap.

        ``retrieval`` selects the scoring path: ``"exact"`` (full-catalogue
        scoring, the default), ``"ivf"`` / ``"ivfpq"`` (ANN candidate
        generation + exact re-rank), or ``"auto"`` (ANN from
        :data:`~repro.retrieval.AUTO_ANN_THRESHOLD` items up). The index is
        rebuilt deterministically from the artifact's stored
        :class:`~repro.retrieval.IndexSpec` when one exists.
        """
        from .artifacts import ModelArtifact, load_artifact

        bundle = artifact if isinstance(artifact, ModelArtifact) else load_artifact(artifact)
        service = cls(bundle.build(), bundle.vocab(), num_ops=bundle.spec.num_ops, **kwargs)
        service.enable_retrieval(retrieval, spec=bundle.retrieval_spec(), nprobe=nprobe)
        return service

    # ------------------------------------------------------------------
    def enable_retrieval(self, mode: str, spec=None, nprobe: int | None = None) -> str:
        """Resolve ``mode`` against the catalogue and attach the ANN path.

        Returns the concrete mode that ended up active ("exact" when the
        catalogue is below the auto threshold, or when ``mode="exact"``).
        """
        from .retrieval import IndexSpec, RetrievalPipeline, resolve_retrieval_kind

        kind = resolve_retrieval_kind(mode, len(self.vocab))
        if kind == "exact":
            self.retrieval = None
            return "exact"
        if spec is None:
            spec = IndexSpec(kind=kind)
        elif spec.kind != kind:
            from dataclasses import replace

            spec = replace(spec, kind=kind)
        self.retrieval = RetrievalPipeline.for_recommender(
            self.recommender, spec=spec, nprobe=nprobe
        )
        return kind

    @property
    def retrieval_mode(self) -> str:
        """"exact", "ivf", or "ivfpq" — whatever scores requests right now."""
        return "exact" if self.retrieval is None else self.retrieval.kind

    def enable_compute(self, mode: str, rerank_top: int = 128) -> str:
        """Select the inference precision of the exact scoring path.

        ``"native"`` scores through the recommender at the model's training
        dtype (the default). ``"float32"``, ``"float16"`` and ``"int8"``
        snapshot the item matrix into a
        :class:`~repro.compile.quantize.QuantizedScorer`; the quantized
        modes finish with an exact float32 re-rank of the top candidates
        (docs/performance.md, "Quantized inference"). Raises ``ValueError``
        when the model lacks the ``encode_sessions`` factorization seam or
        when an ANN retrieval path is active (it owns candidate scoring).
        """
        from .compile.quantize import COMPUTE_MODES

        if mode not in COMPUTE_MODES:
            raise ValueError(f"compute must be one of {COMPUTE_MODES}, got {mode!r}")
        if mode == "native":
            self.compute, self._quantized = "native", None
            return mode
        if self.retrieval is not None:
            raise ValueError(
                "--compute requires exact retrieval; the ANN path already "
                "re-ranks its own candidate set"
            )
        self._quantized = self._build_quantized(mode, rerank_top)
        self.compute = mode
        return mode

    def _build_quantized(self, mode: str, rerank_top: int = 128):
        from .compile.quantize import QuantizedScorer
        from .retrieval.factorize import factorize

        dtype = getattr(getattr(self.recommender, "train_config", None), "dtype", "float64")
        fact = factorize(self.recommender.model, dtype=dtype)
        if fact is None:
            raise ValueError(
                f"{getattr(self.recommender, 'name', type(self.recommender).__name__)} "
                "does not expose encode_sessions(); quantized scoring needs the "
                "factorized head"
            )
        return QuantizedScorer(fact, compute=mode, rerank_top=rerank_top)

    def retrieval_scope(self):
        """Cache-key component for the active scoring configuration."""
        base = None if self.retrieval is None else self.retrieval.scope()
        if self.compute == "native":
            return base
        # Reduced-precision scores must never be served to (or from) a
        # cache entry produced under a different precision.
        return ("compute", self.compute, base)

    # ------------------------------------------------------------------
    def attach_deployment(self, manager) -> None:
        """Wire a :class:`~repro.deploy.DeploymentManager` into scoring."""
        self.deployment = manager

    def adopt_recommender(self, recommender: Recommender) -> None:
        """Replace the serving recommender (a promotion's final step).

        The ANN index, if any, belongs to the *old* model's embeddings, so
        it is rebuilt from the new one under the same spec; if the new
        model cannot be factorized, scoring degrades to exact rather than
        serving stale candidates.
        """
        self.recommender = recommender
        if self.retrieval is not None:
            from .retrieval import RetrievalPipeline

            old = self.retrieval
            try:
                self.retrieval = RetrievalPipeline.for_recommender(
                    recommender, spec=old.index.spec, nprobe=old.nprobe, observer=old.observer
                )
            except Exception:  # noqa: BLE001 — exact scoring is always correct
                self.retrieval = None
        if self._quantized is not None:
            # The snapshot belongs to the old weights; requantize the new
            # ones (or degrade to native if the new model can't factorize).
            try:
                self._quantized = self._build_quantized(
                    self.compute, self._quantized.rerank_top
                )
            except Exception:  # noqa: BLE001 — native scoring is always correct
                self.compute, self._quantized = "native", None

    def score_scope(self, session_id: str):
        """Cache-key component for *this session's* scoring configuration.

        Includes the serving generation (and canary arm) when a deployment
        manager is attached, so entries scored by a generation that was
        later demoted or superseded can never be served again — the scope
        no longer matches.
        """
        if self.deployment is None:
            return self.retrieval_scope()
        return self.deployment.scope_for(session_id, self.retrieval_scope())

    # ------------------------------------------------------------------
    def record(self, session_id: str, item: int, operation: int) -> bool:
        """Ingest one micro-behavior event.

        Returns ``True`` if the event was applied; ``False`` if the item is
        outside the training vocabulary. Unknown items never *create* a
        session — a crawler (or a flood of cold-item visitors) must not grow
        the session table — they only bump ``vocab_misses``, or the dropped
        count of an already-live session.
        """
        if not 0 <= operation < self.num_ops:
            raise ValueError(f"operation {operation} outside 0..{self.num_ops - 1}")
        now = self._clock()
        if item not in self.vocab:
            session = self._sessions.get(session_id)
            if session is None:
                self.vocab_misses += 1
            else:
                session.dropped_events += 1
                session.last_event_at = now
            return False
        session = self._sessions.setdefault(session_id, LiveSession())
        dense = self.vocab.encode(item)
        session.record(dense, operation, now)
        if self.event_buffer is not None:
            from .deploy.buffer import Event

            self.event_buffer.append(Event(session_id, dense, operation, now))
        return True

    def session(self, session_id: str) -> LiveSession | None:
        return self._sessions.get(session_id)

    def end_session(self, session_id: str) -> None:
        self._sessions.pop(session_id, None)

    def sweep_expired(self) -> int:
        """Evict sessions idle beyond the TTL; returns how many."""
        now = self._clock()
        expired = [
            sid
            for sid, s in self._sessions.items()
            if now - s.last_event_at > self.session_ttl
        ]
        for sid in expired:
            del self._sessions[sid]
        return len(expired)

    # ------------------------------------------------------------------
    def top_k(self, session_id: str, k: int = 10, exclude_seen: bool = False) -> list[int]:
        """Top-K raw item ids for one session (best first)."""
        return self.top_k_batch([session_id], k=k, exclude_seen=exclude_seen)[session_id]

    def top_k_batch(
        self,
        session_ids: list[str],
        k: int = 10,
        exclude_seen: bool = False,
    ) -> dict[str, list[int]]:
        """Score many sessions in one model call.

        Sessions with no scoreable events yield an empty list rather than
        an error — a brand-new visitor simply has no personalized ranking
        yet.

        With a deployment manager attached and a candidate live, sessions
        are partitioned by canary arm and each group scores against its
        own generation (the candidate always via the exact path). A
        candidate scoring *error* falls that group back to the incumbent
        and feeds the candidate breaker — callers never see it.
        """
        scoreable: list[str] = []
        examples: list[MacroSession] = []
        results: dict[str, list[int]] = {}
        for sid in session_ids:
            session = self._sessions.get(sid)
            if session is None or session.num_macro_steps == 0:
                results[sid] = []
                continue
            scoreable.append(sid)
            examples.append(session.to_example(self.max_macro_len))
        if not examples:
            return results

        deployment = self.deployment
        if deployment is None or deployment.candidate is None:
            results.update(
                self._score_group(self.recommender, self.retrieval, scoreable, examples, k, exclude_seen)
            )
            return results

        inc_ids: list[str] = []
        inc_examples: list[MacroSession] = []
        cand_ids: list[str] = []
        cand_examples: list[MacroSession] = []
        for sid, example in zip(scoreable, examples):
            arm = deployment.arm_for(sid)
            if arm is deployment.candidate:
                cand_ids.append(sid)
                cand_examples.append(example)
            else:
                inc_ids.append(sid)
                inc_examples.append(example)
        if inc_ids:
            results.update(
                self._score_group(self.recommender, self.retrieval, inc_ids, inc_examples, k, exclude_seen)
            )
        if cand_ids:
            candidate = deployment.candidate  # may have been demoted mid-batch
            try:
                if candidate is None:
                    raise LookupError("candidate demoted before scoring")
                results.update(
                    self._score_group(candidate.recommender, None, cand_ids, cand_examples, k, exclude_seen)
                )
            except Exception as error:  # noqa: BLE001 — incumbent always answers
                deployment.candidate_failure(error)
                results.update(
                    self._score_group(self.recommender, self.retrieval, cand_ids, cand_examples, k, exclude_seen)
                )
        return results

    def _score_group(
        self,
        recommender: Recommender,
        retrieval,
        scoreable: list[str],
        examples: list[MacroSession],
        k: int,
        exclude_seen: bool,
    ) -> dict[str, list[int]]:
        """Score one group of sessions against one generation's model."""
        results: dict[str, list[int]] = {}
        batch = collate(examples)
        if retrieval is not None:
            # ANN path: probe the index, exact re-rank the candidates. The
            # seen mask is applied inside the candidate scores (same -inf
            # semantics as the full path below).
            seen_classes = None
            if exclude_seen:
                seen_classes = []
                for sid in scoreable:
                    window_items, _ = self._sessions[sid].window(self.max_macro_len)
                    seen = sorted(
                        i - 1
                        for i in set(window_items)
                        if i - 1 < retrieval.index.n_items
                    )
                    seen_classes.append(np.asarray(seen, dtype=np.int64))
            ranked = retrieval.top_k_classes(batch, k, seen_classes=seen_classes)
            for row, sid in enumerate(scoreable):
                results[sid] = [self.vocab.decode(int(i) + 1) for i in ranked[row]]
            return results

        if self._quantized is not None and recommender is self.recommender:
            # Reduced-precision exact path (canary candidates above always
            # score native: their generation owns no quantized snapshot).
            scores = np.array(self._quantized.score_batch(batch), dtype=float)
        else:
            scores = np.array(recommender.score_batch(batch), dtype=float)
        for row, sid in enumerate(scoreable):
            if exclude_seen:
                # Mask only what the model actually scored: dense ids inside
                # the truncated window (items that scrolled out of a long
                # session are legitimately recommendable again), clipped to
                # the recommender's score width.
                window_items, _ = self._sessions[sid].window(self.max_macro_len)
                seen = [i - 1 for i in set(window_items) if i - 1 < scores.shape[1]]
                scores[row, seen] = -np.inf
        order = top_k_indices(scores, k)
        for row, sid in enumerate(scoreable):
            results[sid] = [self.vocab.decode(int(i) + 1) for i in order[row]]
        return results

    # ------------------------------------------------------------------
    @property
    def active_sessions(self) -> int:
        return len(self._sessions)
