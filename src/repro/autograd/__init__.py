"""Reverse-mode autodiff engine over NumPy (PyTorch substitute).

Public surface:

- :class:`Tensor` — array with gradient tracking
- :func:`no_grad` — disable graph construction
- :func:`concat`, :func:`stack`, :func:`where`, :func:`maximum` — multi-input ops
- :func:`check_gradients` — finite-difference verification
- :func:`set_default_dtype` / :func:`default_dtype` — float32/float64 policy
"""

from .gradcheck import check_gradients, numerical_gradient
from .tensor import (
    Tensor,
    concat,
    default_dtype,
    get_default_dtype,
    is_grad_enabled,
    maximum,
    no_grad,
    set_default_dtype,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
    "check_gradients",
    "numerical_gradient",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]
