"""Reverse-mode autodiff engine over NumPy (PyTorch substitute).

Public surface:

- :class:`Tensor` — array with gradient tracking
- :func:`no_grad` — disable graph construction
- :func:`concat`, :func:`stack`, :func:`where`, :func:`maximum` — multi-input ops
- :func:`check_gradients` — finite-difference verification
"""

from .gradcheck import check_gradients, numerical_gradient
from .tensor import (
    Tensor,
    concat,
    is_grad_enabled,
    maximum,
    no_grad,
    stack,
    where,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
    "check_gradients",
    "numerical_gradient",
]
