"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate for every neural model in the
repository (the paper's reference implementation uses PyTorch; this engine
replaces it — see DESIGN.md, section 2).

The design follows the classic tape-free approach: each :class:`Tensor`
records its parents and a closure that accumulates gradients into them.
Calling :meth:`Tensor.backward` runs a topological sort and replays the
closures in reverse order.

Performance notes (docs/performance.md):

- Every operation checks the grad mode *before* constructing its backward
  closure, so inference under :func:`no_grad` allocates zero graph state.
- Gradient accumulation is in place: the first contribution is borrowed
  (never mutated), the second allocates a buffer this tensor owns, and all
  later ones are ``+=`` into it. Ownership tracking makes this safe when a
  tensor feeds multiple consumers that hand down the same gradient array.
- The element dtype is configurable (:func:`set_default_dtype`); float32
  halves memory traffic for training runs that do not need float64.
- ``softmax`` / ``log_softmax`` are single fused nodes with hand-written
  backward rules rather than compositions of five primitive ops.

Only the operations the models need are implemented, but each supports full
NumPy broadcasting, and every backward rule is verified against central
finite differences in ``tests/autograd`` (and the fused kernels in
``tests/perf``).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
    "get_default_dtype",
    "set_default_dtype",
    "default_dtype",
]

_GRAD_ENABLED = True
_DEFAULT_DTYPE = np.dtype(np.float64)

# Active profiler (repro.perf.profiler.OpProfiler) or None; assigned via
# _set_profiler so the hot path pays a single global load when disabled.
_PROFILER = None

# Active trace tape (repro.compile.tape.Tape) or None. While a tape is
# active, every op registers an in-place *replay* closure alongside its
# backward closure, so one recorded step can be re-executed as a flat loop
# over the same buffers with zero graph construction (docs/performance.md,
# "Compiled step"). The hot path pays one global None-check per op.
_TAPE = None


def _set_profiler(profiler) -> None:
    global _PROFILER
    _PROFILER = profiler


def _set_tape(tape) -> None:
    global _TAPE
    _TAPE = tape


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for differentiation."""
    return _GRAD_ENABLED


def get_default_dtype() -> np.dtype:
    """Element dtype used for new tensors (float64 unless reconfigured)."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> np.dtype:
    """Set the element dtype for new tensors; returns the previous dtype.

    ``float32`` mode halves memory traffic and roughly doubles large-matmul
    throughput; ``float64`` is required for finite-difference gradchecks.
    """
    global _DEFAULT_DTYPE
    new = np.dtype(dtype)
    if new not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(f"default dtype must be float32 or float64, got {new}")
    previous = _DEFAULT_DTYPE
    _DEFAULT_DTYPE = new
    return previous


@contextlib.contextmanager
def default_dtype(dtype):
    """Scoped :func:`set_default_dtype` (restores the previous dtype on exit)."""
    previous = set_default_dtype(dtype)
    try:
        yield
    finally:
        set_default_dtype(previous)


def _as_array(value, dtype=None) -> np.ndarray:
    dtype = dtype or _DEFAULT_DTYPE
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _stable_sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function (shared with repro.perf.fused).

    ``e = exp(-|x|)`` never overflows; the result is ``1/(1+e)`` for
    ``x >= 0`` and ``e/(1+e)`` otherwise — element-for-element the same
    float ops (hence the same bits) as the textbook two-branch form, in
    six array passes instead of ten.
    """
    e = np.abs(x)
    np.negative(e, out=e)
    np.exp(e, out=e)
    numer = np.where(x >= 0, 1.0, e)
    np.divide(numer, e + 1.0, out=numer)
    return numer


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A NumPy array with an attached gradient and differentiation graph.

    Parameters
    ----------
    data:
        Array-like payload; converted to the default dtype
        (:func:`get_default_dtype`, float64 unless reconfigured).
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = (
        "data",
        "grad",
        "requires_grad",
        "_backward",
        "_parents",
        "_grad_owned",
        "_grad_buffer",
        "_topo_cache",
    )

    def __init__(self, data, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        # True once self.grad is a buffer only this tensor references, so
        # further contributions may be accumulated with an in-place `+=`.
        self._grad_owned: bool = False
        # Reusable scatter buffer for fused embedding backward (repro.perf):
        # avoids a fresh zeros(num_embeddings, dim) allocation every step.
        self._grad_buffer: np.ndarray | None = None
        self._topo_cache: list[Tensor] | None = None
        if _TAPE is not None:
            _TAPE._on_tensor(self)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None
        self._grad_owned = False

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[], None],
    ) -> "Tensor":
        """Create a result tensor wired into the graph.

        Callers are responsible for checking the grad mode first (every op
        early-exits with a plain ``Tensor`` when gradients are off), so a
        ``_make`` call always allocates a backward node.
        """
        out = Tensor(data)
        out.requires_grad = True
        out._parents = tuple(parents)
        out._backward = backward
        if _PROFILER is not None:
            _PROFILER._record_node(backward)
        if _TAPE is not None:
            _TAPE._on_node(out)
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        """Add a gradient contribution.

        The first contribution is *borrowed* (stored by reference, never
        written through) because backward rules routinely hand the same
        array to several parents. The second contribution allocates a
        buffer owned by this tensor; every later one is an in-place ``+=``
        into it — one allocation total no matter how many consumers.
        """
        if self.grad is None:
            self.grad = grad
            self._grad_owned = False
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

    def backward(self, grad: np.ndarray | None = None, retain_graph: bool = False) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        With ``retain_graph=True`` the graph (and the topological order,
        cached on this tensor) survives for repeated backward passes, e.g.
        gradient accumulation over micro-batches; by default the graph is
        freed node by node to keep memory bounded across training loops.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
            seed_owned = True
        else:
            grad = _as_array(grad)
            if grad.shape != self.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")
            seed_owned = False

        order = self._topo_cache
        if order is None:
            order = []
            seen: set[int] = set()
            stack: list[tuple[Tensor, bool]] = [(self, False)]
            while stack:
                node, processed = stack.pop()
                if processed:
                    order.append(node)
                    continue
                if id(node) in seen:
                    continue
                seen.add(id(node))
                stack.append((node, True))
                for parent in node._parents:
                    if parent.requires_grad and id(parent) not in seen:
                        stack.append((parent, False))
            if retain_graph:
                self._topo_cache = order

        if self.grad is None:
            self.grad = grad
            self._grad_owned = seed_owned
        elif self._grad_owned:
            self.grad += grad
        else:
            self.grad = self.grad + grad
            self._grad_owned = True

        profiler = _PROFILER
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                if profiler is not None:
                    profiler._run_backward(node._backward)
                else:
                    node._backward()
                if not retain_graph:
                    # Free intermediate graph state once consumed; keeps
                    # memory bounded across long training loops.
                    node._backward = None
                    node._parents = ()
                else:
                    # Clear interior grads so a later pass re-seeds them;
                    # leaves keep accumulating. This also prevents a later
                    # pass from mutating an owned buffer that a leaf still
                    # borrows from this pass.
                    node.grad = None
                    node._grad_owned = False

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data
        if not (_GRAD_ENABLED and (self.requires_grad or other.requires_grad)):
            return Tensor(out_data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            # Record against out.data, not the raw ufunc result: for 0-d
            # operands (composite scalar losses) NumPy hands back a scalar,
            # which is not a legal ``out=`` buffer on replay.
            dst = out.data
            _TAPE._record(out, lambda: np.add(self.data, other.data, out=dst))
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(-self.data)

        def backward() -> None:
            self._accumulate(-out.grad)

        out = Tensor._make(-self.data, (self,), backward)
        if _TAPE is not None:
            dst = out.data
            _TAPE._record(out, lambda: np.negative(self.data, out=dst))
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data
        if not (_GRAD_ENABLED and (self.requires_grad or other.requires_grad)):
            return Tensor(out_data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-out.grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            dst = out.data  # ndarray even for 0-d results (see __add__)
            _TAPE._record(out, lambda: np.subtract(self.data, other.data, out=dst))
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data
        if not (_GRAD_ENABLED and (self.requires_grad or other.requires_grad)):
            return Tensor(out_data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            dst = out.data  # ndarray even for 0-d results (see __add__)
            _TAPE._record(out, lambda: np.multiply(self.data, other.data, out=dst))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data
        if not (_GRAD_ENABLED and (self.requires_grad or other.requires_grad)):
            return Tensor(out_data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                grad = -out.grad * self.data / (other.data**2)
                other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            dst = out.data  # ndarray even for 0-d results (see __add__)
            _TAPE._record(out, lambda: np.divide(self.data, other.data, out=dst))
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            # ``**`` has value-specific fast paths (square, sqrt); replaying
            # the same expression keeps the replay bitwise-identical.
            dst = out.data  # ndarray even for 0-d results (see __add__)
            _TAPE._record(out, lambda: np.copyto(dst, self.data**exponent))
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.exp(self.data, out=out_data))
        return out

    def log(self) -> "Tensor":
        out_data = np.log(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad / self.data)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.log(self.data, out=out_data))
        return out

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * 0.5 / out_data)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.sqrt(self.data, out=out_data))
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * (1.0 - out_data**2))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.tanh(self.data, out=out_data))
        return out

    def sigmoid(self) -> "Tensor":
        out_data = _stable_sigmoid(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.copyto(out_data, _stable_sigmoid(self.data)))
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(out.grad * mask)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:

            def replay() -> None:
                # ``mask`` is captured by the backward closure: refresh it
                # in place so both forward and backward see current values.
                np.greater(self.data, 0, out=mask)
                np.multiply(self.data, mask, out=out_data)

            _TAPE._record(out, replay)
        return out

    def abs(self) -> "Tensor":
        out_data = np.abs(self.data)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)
        sign = np.sign(self.data)

        def backward() -> None:
            self._accumulate(out.grad * sign)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:

            def replay() -> None:
                np.sign(self.data, out=sign)
                np.absolute(self.data, out=out_data)

            _TAPE._record(out, replay)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = np.matmul(self.data, other.data)
        if not (_GRAD_ENABLED and (self.requires_grad or other.requires_grad)):
            return Tensor(out_data)

        def backward() -> None:
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a = grad[..., None] * b
                    grad_a = grad[..., None] * b
                elif a.ndim == 1:
                    # (n,) @ (n, m) -> (m,): grad_a = grad @ b.T
                    grad_a = np.matmul(grad, np.swapaxes(b, -1, -2))
                    grad_a = _unbroadcast(grad_a, a.shape)
                else:
                    grad_a = np.matmul(grad, np.swapaxes(b, -1, -2))
                    grad_a = _unbroadcast(grad_a, a.shape)
                self._accumulate(grad_a)
            if other.requires_grad:
                if b.ndim == 1:
                    # grad_b = sum over batch of a^T grad
                    grad_b = (a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                elif a.ndim == 1:
                    grad_b = np.outer(a, grad)
                else:
                    grad_b = np.matmul(np.swapaxes(a, -1, -2), grad)
                    grad_b = _unbroadcast(grad_b, b.shape)
                other._accumulate(grad_b)

        out = Tensor._make(out_data, (self, other), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.matmul(self.data, other.data, out=out_data))
        return out

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            grad = out.grad
            if axis is None:
                grad = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                grad = np.broadcast_to(grad, self.shape)
            self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(
                out, lambda: np.sum(self.data, axis=axis, keepdims=keepdims, out=out_data)
            )
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split gradient evenly among ties, matching finite differences.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask / counts)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(
                out, lambda: np.max(self.data, axis=axis, keepdims=keepdims, out=out_data)
            )
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)
        original = self.shape

        def backward() -> None:
            self._accumulate(out.grad.reshape(original))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            # View op: rebind to a fresh view each replay (handles both the
            # view and the copy-on-non-contiguous case); backward only reads
            # ``out.grad``, so rebinding is safe.
            def replay() -> None:
                out.data = self.data.reshape(shape)

            _TAPE._record(out, replay)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out_data = self.data.transpose(axes)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)
        inverse = np.argsort(axes)

        def backward() -> None:
            self._accumulate(out.grad.transpose(inverse))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:

            def replay() -> None:
                out.data = self.data.transpose(axes)

            _TAPE._record(out, replay)
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def unsqueeze(self, axis: int) -> "Tensor":
        out_data = np.expand_dims(self.data, axis)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(np.squeeze(out.grad, axis=axis))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:

            def replay() -> None:
                out.data = np.expand_dims(self.data, axis)

            _TAPE._record(out, replay)
        return out

    def squeeze(self, axis: int) -> "Tensor":
        out_data = np.squeeze(self.data, axis=axis)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            self._accumulate(np.expand_dims(out.grad, axis))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:

            def replay() -> None:
                out.data = np.squeeze(self.data, axis=axis)

            _TAPE._record(out, replay)
        return out

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        out_data = np.broadcast_to(self.data, shape).copy()
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)
        original = self.shape

        def backward() -> None:
            self._accumulate(_unbroadcast(out.grad, original))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(out, lambda: np.copyto(out_data, self.data))
        return out

    # ------------------------------------------------------------------
    # Indexing (slicing and integer-array gather)
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        out_data = np.array(self.data[index], copy=True)
        if not (_GRAD_ENABLED and self.requires_grad):
            out = Tensor(out_data)
            if _TAPE is not None:
                _TAPE._record_const(
                    out,
                    "getitem",
                    lambda: np.copyto(out_data, self.data[index]),
                    operands=index if isinstance(index, tuple) else (index,),
                )
            return out

        def backward() -> None:
            grad = np.zeros_like(self.data)
            np.add.at(grad, index, out.grad)
            self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(
                out,
                lambda: np.copyto(out_data, self.data[index]),
                operands=index if isinstance(index, tuple) else (index,),
            )
        return out

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Gather along ``axis`` (used for embedding lookups when axis=0)."""
        indices = np.asarray(indices)
        out_data = np.take(self.data, indices, axis=axis)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            grad = np.zeros_like(self.data)
            if axis == 0:
                np.add.at(grad, indices, out.grad)
            else:
                moved = np.moveaxis(grad, axis, 0)
                np.add.at(moved, indices, np.moveaxis(out.grad, axis, 0))
            self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            _TAPE._record(
                out,
                lambda: np.copyto(out_data, np.take(self.data, indices, axis=axis)),
                operands=(indices,),
            )
        return out

    # ------------------------------------------------------------------
    # Fused composite ops (single node, hand-written backward)
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        """Softmax along ``axis`` as one graph node.

        Backward uses the Jacobian-vector product
        ``p * (g - sum(g * p))`` instead of replaying the exp/sum/div
        composition (five nodes and three temporaries in the old form).
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        e = np.exp(shifted)
        out_data = e / e.sum(axis=axis, keepdims=True)
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            g = out.grad
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            self._accumulate(out_data * (g - dot))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            tmp = np.empty_like(out_data)

            def replay() -> None:
                x = self.data
                np.subtract(x, x.max(axis=axis, keepdims=True), out=tmp)
                np.exp(tmp, out=tmp)
                np.divide(tmp, tmp.sum(axis=axis, keepdims=True), out=out_data)

            _TAPE._record(out, replay)
        return out

    def log_softmax(self, axis: int = -1) -> "Tensor":
        """Log-softmax along ``axis`` as one graph node.

        Backward is ``g - softmax * sum(g)`` — the softmax is recovered by
        exponentiating the (already max-shifted) output, so no extra
        stabilization pass is needed.
        """
        shifted = self.data - self.data.max(axis=axis, keepdims=True)
        lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        out_data = shifted - lse
        if not (_GRAD_ENABLED and self.requires_grad):
            return Tensor(out_data)

        def backward() -> None:
            g = out.grad
            self._accumulate(g - np.exp(out_data) * g.sum(axis=axis, keepdims=True))

        out = Tensor._make(out_data, (self,), backward)
        if _TAPE is not None:
            tmp = np.empty_like(out_data)

            def replay() -> None:
                x = self.data
                np.subtract(x, x.max(axis=axis, keepdims=True), out=tmp)
                lse = np.log(np.exp(tmp).sum(axis=axis, keepdims=True))
                np.subtract(tmp, lse, out=out_data)

            _TAPE._record(out, replay)
        return out

    def l2_normalize(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        norm = ((self * self).sum(axis=axis, keepdims=True) + eps).sqrt()
        return self / norm


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    if not (_GRAD_ENABLED and any(t.requires_grad for t in tensors)):
        return Tensor(out_data)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * out_data.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(slicer)])

    out = Tensor._make(out_data, tensors, backward)
    if _TAPE is not None:
        _TAPE._record(
            out, lambda: np.concatenate([t.data for t in tensors], axis=axis, out=out_data)
        )
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)
    if not (_GRAD_ENABLED and any(t.requires_grad for t in tensors)):
        return Tensor(out_data)

    def backward() -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(out.grad, i, axis=axis))

    out = Tensor._make(out_data, tensors, backward)
    if _TAPE is not None:
        dst_rows = np.moveaxis(out_data, axis, 0)

        def replay() -> None:
            for i, t in enumerate(tensors):
                np.copyto(dst_rows[i], t.data)

        _TAPE._record(out, replay)
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a constant boolean array."""
    cond_src = condition
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)
    if not (_GRAD_ENABLED and (a.requires_grad or b.requires_grad)):
        return Tensor(out_data)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * ~condition, b.shape))

    out = Tensor._make(out_data, (a, b), backward)
    if _TAPE is not None:

        def replay() -> None:
            if cond_src is not condition:
                np.not_equal(cond_src, 0, out=condition)
            np.copyto(out_data, b.data)
            np.copyto(out_data, a.data, where=condition)

        _TAPE._record(out, replay, operands=(cond_src,))
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient split evenly on ties)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.maximum(a.data, b.data)
    if not (_GRAD_ENABLED and (a.requires_grad or b.requires_grad)):
        return Tensor(out_data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    b_wins = ~a_wins & ~tie

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * (a_wins + 0.5 * tie), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (b_wins + 0.5 * tie), b.shape))

    out = Tensor._make(out_data, (a, b), backward)
    if _TAPE is not None:

        def replay() -> None:
            np.greater(a.data, b.data, out=a_wins)
            np.equal(a.data, b.data, out=tie)
            np.logical_or(a_wins, tie, out=b_wins)
            np.logical_not(b_wins, out=b_wins)
            np.maximum(a.data, b.data, out=out_data)

        _TAPE._record(out, replay)
    return out
