"""Reverse-mode automatic differentiation over NumPy arrays.

This module is the computational substrate for every neural model in the
repository (the paper's reference implementation uses PyTorch; this engine
replaces it — see DESIGN.md, section 2).

The design follows the classic tape-free approach: each :class:`Tensor`
records its parents and a closure that accumulates gradients into them.
Calling :meth:`Tensor.backward` runs a topological sort and replays the
closures in reverse order.

Only the operations the models need are implemented, but each supports full
NumPy broadcasting, and every backward rule is verified against central
finite differences in ``tests/autograd``.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "concat",
    "stack",
    "where",
    "maximum",
]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph construction (like torch.no_grad)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded for differentiation."""
    return _GRAD_ENABLED


def _as_array(value, dtype=np.float64) -> np.ndarray:
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` undoing NumPy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad


class Tensor:
    """A NumPy array with an attached gradient and differentiation graph.

    Parameters
    ----------
    data:
        Array-like payload; converted to ``float64``.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        self.data: np.ndarray = _as_array(data)
        self.grad: np.ndarray | None = None
        self.requires_grad: bool = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] | None = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[["Tensor"], None] | None,
    ) -> "Tensor":
        """Create a result tensor, wiring the graph only when grads are on."""
        out = Tensor(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None or grad is self.data else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 for scalar outputs (the usual loss case).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad)
            if grad.shape != self.shape:
                raise ValueError(f"gradient shape {grad.shape} != tensor shape {self.shape}")

        order: list[Tensor] = []
        seen: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in seen:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward()
                # Free intermediate graph state once consumed; keeps memory
                # bounded across long training loops.
                node._backward = None
                node._parents = ()

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data + other.data

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward() -> None:
            if self.requires_grad:
                self._accumulate(-out.grad)

        out = Tensor._make(-self.data, (self,), backward)
        return out

    def __sub__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data - other.data

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(-out.grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    def __rsub__(self, other) -> "Tensor":
        return Tensor(other) - self

    def __mul__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data * other.data

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = self.data / other.data

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
            if other.requires_grad:
                grad = -out.grad * self.data / (other.data**2)
                other._accumulate(_unbroadcast(grad, other.shape))

        out = Tensor._make(out_data, (self, other), backward)
        return out

    def __rtruediv__(self, other) -> "Tensor":
        return Tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out = Tensor._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def log(self) -> "Tensor":
        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad / self.data)

        out = Tensor._make(np.log(self.data), (self,), backward)
        return out

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * 0.5 / out_data)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * (1.0 - out_data**2))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def sigmoid(self) -> "Tensor":
        # Numerically stable logistic function.
        out_data = np.where(
            self.data >= 0,
            1.0 / (1.0 + np.exp(-np.clip(self.data, -500, None))),
            np.exp(np.clip(self.data, None, 500))
            / (1.0 + np.exp(np.clip(self.data, None, 500))),
        )

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * out_data * (1.0 - out_data))

        out = Tensor._make(out_data, (self,), backward)
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * mask)

        out = Tensor._make(self.data * mask, (self,), backward)
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * sign)

        out = Tensor._make(np.abs(self.data), (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other: "Tensor") -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out_data = np.matmul(self.data, other.data)

        def backward() -> None:
            grad = out.grad
            a, b = self.data, other.data
            if self.requires_grad:
                if b.ndim == 1:
                    # (..., n) @ (n,) -> (...,): grad_a = grad[..., None] * b
                    grad_a = grad[..., None] * b
                elif a.ndim == 1:
                    # (n,) @ (n, m) -> (m,): grad_a = grad @ b.T
                    grad_a = np.matmul(grad, np.swapaxes(b, -1, -2))
                    grad_a = _unbroadcast(grad_a, a.shape)
                else:
                    grad_a = np.matmul(grad, np.swapaxes(b, -1, -2))
                    grad_a = _unbroadcast(grad_a, a.shape)
                self._accumulate(grad_a)
            if other.requires_grad:
                if b.ndim == 1:
                    # grad_b = sum over batch of a^T grad
                    grad_b = (a * grad[..., None]).reshape(-1, a.shape[-1]).sum(axis=0)
                elif a.ndim == 1:
                    grad_b = np.outer(a, grad)
                else:
                    grad_b = np.matmul(np.swapaxes(a, -1, -2), grad)
                    grad_b = _unbroadcast(grad_b, b.shape)
                other._accumulate(grad_b)

        out = Tensor._make(out_data, (self, other), backward)
        return out

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is None:
                grad = np.broadcast_to(grad, self.shape)
            else:
                if not keepdims:
                    grad = np.expand_dims(grad, axis)
                grad = np.broadcast_to(grad, self.shape)
            self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            expanded = out_data
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis)
                expanded = np.expand_dims(out_data, axis)
            mask = self.data == expanded
            # Split gradient evenly among ties, matching finite differences.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask / counts)

        out = Tensor._make(out_data, (self,), backward)
        return out

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.shape

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(original))

        out = Tensor._make(self.data.reshape(shape), (self,), backward)
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.transpose(inverse))

        out = Tensor._make(self.data.transpose(axes), (self,), backward)
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def unsqueeze(self, axis: int) -> "Tensor":
        def backward() -> None:
            if self.requires_grad:
                self._accumulate(np.squeeze(out.grad, axis=axis))

        out = Tensor._make(np.expand_dims(self.data, axis), (self,), backward)
        return out

    def squeeze(self, axis: int) -> "Tensor":
        def backward() -> None:
            if self.requires_grad:
                self._accumulate(np.expand_dims(out.grad, axis))

        out = Tensor._make(np.squeeze(self.data, axis=axis), (self,), backward)
        return out

    def broadcast_to(self, shape: tuple[int, ...]) -> "Tensor":
        original = self.shape

        def backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, original))

        out = Tensor._make(np.broadcast_to(self.data, shape).copy(), (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Indexing (slicing and integer-array gather)
    # ------------------------------------------------------------------
    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)

        out = Tensor._make(np.array(out_data, copy=True), (self,), backward)
        return out

    def take(self, indices: np.ndarray, axis: int = 0) -> "Tensor":
        """Gather along ``axis`` (used for embedding lookups when axis=0)."""
        indices = np.asarray(indices)
        out_data = np.take(self.data, indices, axis=axis)

        def backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                if axis == 0:
                    np.add.at(grad, indices, out.grad)
                else:
                    moved = np.moveaxis(grad, axis, 0)
                    np.add.at(moved, indices, np.moveaxis(out.grad, axis, 0))
                self._accumulate(grad)

        out = Tensor._make(out_data, (self,), backward)
        return out

    # ------------------------------------------------------------------
    # Composite helpers
    # ------------------------------------------------------------------
    def softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        exp = shifted.exp()
        return exp / exp.sum(axis=axis, keepdims=True)

    def log_softmax(self, axis: int = -1) -> "Tensor":
        shifted = self - Tensor(self.data.max(axis=axis, keepdims=True))
        return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()

    def l2_normalize(self, axis: int = -1, eps: float = 1e-12) -> "Tensor":
        norm = ((self * self).sum(axis=axis, keepdims=True) + eps).sqrt()
        return self / norm


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward() -> None:
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * out_data.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(out.grad[tuple(slicer)])

    out = Tensor._make(out_data, tensors, backward)
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward() -> None:
        for i, t in enumerate(tensors):
            if t.requires_grad:
                t._accumulate(np.take(out.grad, i, axis=axis))

    out = Tensor._make(out_data, tensors, backward)
    return out


def where(condition: np.ndarray, a: Tensor, b: Tensor) -> Tensor:
    """Differentiable selection; ``condition`` is a constant boolean array."""
    condition = np.asarray(condition, dtype=bool)
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.where(condition, a.data, b.data)

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * condition, a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * ~condition, b.shape))

    out = Tensor._make(out_data, (a, b), backward)
    return out


def maximum(a: Tensor, b: Tensor) -> Tensor:
    """Differentiable elementwise maximum (gradient split evenly on ties)."""
    a = a if isinstance(a, Tensor) else Tensor(a)
    b = b if isinstance(b, Tensor) else Tensor(b)
    out_data = np.maximum(a.data, b.data)
    a_wins = a.data > b.data
    tie = a.data == b.data

    b_wins = ~a_wins & ~tie

    def backward() -> None:
        if a.requires_grad:
            a._accumulate(_unbroadcast(out.grad * (a_wins + 0.5 * tie), a.shape))
        if b.requires_grad:
            b._accumulate(_unbroadcast(out.grad * (b_wins + 0.5 * tie), b.shape))

    out = Tensor._make(out_data, (a, b), backward)
    return out
