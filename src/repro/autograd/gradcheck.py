"""Finite-difference gradient verification for the autograd engine.

Used by the test suite to certify every backward rule; also exported so
downstream users can check custom compositions.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from .tensor import Tensor

__all__ = ["numerical_gradient", "check_gradients"]


def numerical_gradient(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    wrt: int,
    eps: float = 1e-6,
) -> np.ndarray:
    """Central-difference gradient of ``sum(fn(*inputs))`` w.r.t. one input."""
    target = inputs[wrt]
    grad = np.zeros_like(target.data)
    flat = target.data.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = float(fn(*inputs).data.sum())
        flat[i] = original - eps
        minus = float(fn(*inputs).data.sum())
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradients(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    atol: float = 1e-5,
    rtol: float = 1e-4,
    eps: float = 1e-6,
) -> None:
    """Assert analytic gradients of ``sum(fn(*inputs))`` match finite diffs.

    Raises ``AssertionError`` naming the offending input on mismatch.
    """
    for t in inputs:
        t.zero_grad()
    out = fn(*inputs)
    out.sum().backward()
    for i, t in enumerate(inputs):
        if not t.requires_grad:
            continue
        expected = numerical_gradient(fn, inputs, i, eps=eps)
        actual = t.grad if t.grad is not None else np.zeros_like(t.data)
        np.testing.assert_allclose(
            actual,
            expected,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for input #{i}",
        )
