"""Command-line interface.

Usage (after ``python setup.py develop``):

.. code-block:: bash

    repro generate --config jd-appliances --sessions 2000 --out sessions.jsonl
    repro prepare  --config jd-appliances --input sessions.jsonl --out dataset.json
    repro data pack dataset.json dataset.rpk
    repro data pack sessions.jsonl dataset.rpk --config jd-appliances
    repro data inspect dataset.rpk
    repro models
    repro train    --dataset dataset.json --model EMBSR --epochs 8 --artifact embsr.npz
    repro train    --dataset dataset.json --model EMBSR --resume embsr.npz.state.npz
    repro evaluate --dataset dataset.json --artifact embsr.npz
    repro compare  --dataset dataset.json --models EMBSR SGNN-HN MKM-SR --artifact-dir out/
    repro profile  --dataset dataset.json --model EMBSR --steps 5
    repro serve    --artifact embsr.npz --port 8080
    repro serve    --artifact embsr.npz --deploy-dir deploy/ --online-interval 30
    repro deploy   --url http://127.0.0.1:8080 --artifact embsr_v2.npz --canary-pct 10
    repro deploy   --url http://127.0.0.1:8080 --promote

(Also runnable as ``python -m repro.cli ...`` without installing.)

``models`` lists every name the registry resolves. The ``compare`` command
reproduces a slice of the paper's Table III for any subset of the twelve
systems. ``profile`` runs a few training steps under the op-level profiler
(``repro.perf.OpProfiler``) and prints where forward and backward time goes
(see ``docs/performance.md``). ``serve`` exposes a model through the
micro-batching HTTP gateway (``repro.serving``): ``POST /events``,
``GET /recommend``, ``GET /healthz``, ``GET /metrics`` — from a
self-describing ``--artifact`` bundle (no dataset needed, see
``docs/registry.md``) or by training on synthetic data first.
"""

from __future__ import annotations

import argparse
import sys

from .data import (
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    load_prepared_dataset,
    load_sessions_jsonl,
    prepare_dataset,
    save_prepared_dataset,
    save_sessions_jsonl,
    trivago_config,
)
from .eval import ExperimentConfig, ExperimentRunner, improvement_table
from .utils import render_table

__all__ = ["main"]

_CONFIGS = {
    "jd-appliances": (jd_appliances_config, 3),
    "jd-computers": (jd_computers_config, 3),
    "trivago": (trivago_config, 2),
}

_METRICS = ("H@5", "H@10", "H@20", "M@5", "M@10", "M@20")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate synthetic micro-behavior sessions")
    p.add_argument("--config", choices=sorted(_CONFIGS), required=True)
    p.add_argument("--sessions", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output JSONL path")


def _add_prepare(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("prepare", help="preprocess raw sessions into train/val/test")
    p.add_argument("--config", choices=sorted(_CONFIGS), required=True)
    p.add_argument("--input", required=True, help="sessions JSONL path")
    p.add_argument("--out", required=True, help="prepared dataset JSON path")
    p.add_argument("--min-support", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)


def _add_models(sub: argparse._SubParsersAction) -> None:
    sub.add_parser("models", help="list every model name the registry resolves")


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    """Data-parallel knobs shared by training-style subcommands."""
    p.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="forked data-parallel training workers (1 = in-process; "
        "results are bit-identical for any N under the same --grad-shards)",
    )
    p.add_argument(
        "--grad-shards",
        type=int,
        default=0,
        metavar="G",
        help="gradient summation-tree grid; 0 = auto (follows --workers), "
        "1 = the classic whole-batch path (docs/performance.md, Parallelism)",
    )
    p.add_argument(
        "--compile",
        action="store_true",
        help="trace/validate/replay the training step per padded shape; "
        "bitwise-identical to eager (docs/performance.md, Compiled step)",
    )
    p.add_argument(
        "--bucket-lengths",
        action="store_true",
        help="quantize padded batch dims to a bucket ladder so compiled "
        "shape keys repeat (changes padding, hence the numeric trajectory)",
    )
    p.add_argument(
        "--packed",
        action="store_true",
        help="train from columnar packed storage with the zero-loop "
        "vectorized collate; batches are bit-identical (docs/data.md)",
    )
    p.add_argument(
        "--prefetch",
        action="store_true",
        help="collate the next batch on a background thread while the "
        "current step runs (double-buffered; bit-identical)",
    )


def _add_objective_args(p: argparse.ArgumentParser) -> None:
    """Training-objective knobs shared by train/compare (docs/objectives.md)."""
    p.add_argument(
        "--objective",
        choices=["ce", "infonce", "ssl", "op-aux"],
        default=None,
        help="training objective; default defers to the model's registry entry "
        "(EMBSR-SSL pins ssl, MKM-SR-OP pins op-aux, everything else ce)",
    )
    p.add_argument(
        "--cl-weight",
        type=float,
        default=None,
        metavar="W",
        help="weight of the auxiliary term in composite objectives "
        "(ssl: InfoNCE, op-aux: next-operation loss); default from the registry entry",
    )


def _add_train(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("train", help="train one system and save a checkpoint")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    p.add_argument("--checkpoint", default=None, help="save bare parameters here (.npz)")
    p.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="save a self-describing artifact bundle (spec + vocab + weights); "
        "serveable with no dataset via `repro serve --artifact`",
    )
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="also write the full training state every N batches (enables kill -9 safe runs)",
    )
    p.add_argument(
        "--train-state",
        default=None,
        metavar="PATH",
        help="training-state file (default: <checkpoint>.state.npz, or train_state.npz)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="STATE",
        help="continue an interrupted run from this training-state file",
    )
    _add_parallel_args(p)
    _add_objective_args(p)


def _add_evaluate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("evaluate", help="evaluate a trained checkpoint or artifact")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    group = p.add_mutually_exclusive_group(required=True)
    group.add_argument("--checkpoint", default=None, help="bare parameter .npz (needs --model/--dim)")
    group.add_argument(
        "--artifact", default=None, help="self-describing bundle; model/dim come from it"
    )


def _add_compare(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("compare", help="train several systems, print a Table-III slice")
    p.add_argument("--dataset", required=True)
    p.add_argument("--models", nargs="+", default=["SGNN-HN", "MKM-SR", "EMBSR"])
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    p.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help="save an artifact bundle per trained (neural) model into this directory",
    )
    _add_parallel_args(p)
    _add_objective_args(p)
    p.add_argument(
        "--cell-workers",
        type=int,
        default=1,
        metavar="N",
        help="fan independent model cells across N processes "
        "(repro.parallel.run_experiment_cells; merge order is deterministic)",
    )


def _add_profile(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("profile", help="profile a few training steps op by op")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.003)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    p.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="profile the model from this artifact (spec + weights) instead of building fresh",
    )
    p.add_argument("--no-fusion", action="store_true", help="profile the unfused composed ops")
    p.add_argument(
        "--compiled",
        action="store_true",
        help="run the steps through the trace/replay engine (repro.compile); "
        "per-slot replay timings appear in their own profile section",
    )
    p.add_argument("--json", default=None, metavar="PATH", help="also dump the profile as JSON")
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="also dump a chrome://tracing / Perfetto timeline JSON",
    )


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="serve a model over HTTP (artifact, checkpoint, or fresh-trained)")
    p.add_argument(
        "--artifact",
        default=None,
        metavar="PATH",
        help="boot the gateway from this artifact bundle — no dataset is generated or loaded",
    )
    p.add_argument("--config", choices=sorted(_CONFIGS), default="jd-appliances")
    p.add_argument("--sessions", type=int, default=1000, help="synthetic sessions to train on")
    p.add_argument("--model", default="STAMP")
    p.add_argument("--dim", type=int, default=16)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="load this .npz instead of training")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--max-batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=5.0)
    p.add_argument("--deadline-ms", type=float, default=250.0)
    p.add_argument("--duration", type=float, default=0.0, help="seconds to serve (0 = until Ctrl-C)")
    p.add_argument(
        "--retrieval",
        choices=["auto", "exact", "ivf", "ivfpq"],
        default="auto",
        help="scoring path: exact full scoring, ANN candidate generation, or auto by catalogue size",
    )
    p.add_argument("--nprobe", type=int, default=None, help="ANN cells probed per query (default: index spec)")
    p.add_argument(
        "--compute",
        choices=["native", "float32", "float16", "int8"],
        default="native",
        help="inference precision of the exact scoring path; quantized modes "
        "finish with an exact float32 re-rank (docs/performance.md)",
    )
    p.add_argument(
        "--deploy-dir",
        default=None,
        metavar="DIR",
        help="enable the hot-swap control plane (/deploy) with version lineage in DIR; "
        "boots from DIR's last promoted generation when one exists (docs/deployment.md)",
    )
    p.add_argument(
        "--canary-pct",
        type=float,
        default=10.0,
        help="percent of sessions routed to a staged candidate (sticky per session id)",
    )
    p.add_argument(
        "--shadow-sample",
        type=float,
        default=25.0,
        help="percent of ingested events shadow-scored by both generations",
    )
    p.add_argument(
        "--online-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="snapshot an incrementally trained candidate every N seconds and "
        "auto-stage it (0 = online training off; requires --deploy-dir)",
    )


def _add_deploy(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser(
        "deploy", help="drive the hot-swap control plane of a running gateway"
    )
    p.add_argument("--url", default="http://127.0.0.1:8080", help="gateway base URL")
    action = p.add_mutually_exclusive_group(required=True)
    action.add_argument("--artifact", default=None, metavar="PATH", help="stage this artifact as a canary")
    action.add_argument("--status", action="store_true", help="print the deployment status")
    action.add_argument("--promote", action="store_true", help="promote the live candidate")
    action.add_argument("--rollback", action="store_true", help="demote the live candidate")
    p.add_argument("--canary-pct", type=float, default=None, help="override the gateway's canary split")
    p.add_argument("--shadow-sample", type=float, default=None, help="override the shadow sampling rate")
    p.add_argument("--no-wait", action="store_true", help="return before the swap thread finishes")
    p.add_argument("--reason", default="manual", help="recorded in the deployment timeline")


def _add_index(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("index", help="build or inspect the ANN retrieval index of a model artifact")
    action = p.add_subparsers(dest="index_command", required=True)

    b = action.add_parser("build", help="build an index, report recall vs. exact, optionally save the recipe")
    b.add_argument("artifact", help="model artifact (.npz) whose item embeddings to index")
    b.add_argument("--kind", choices=["ivf", "ivfpq"], default="ivf")
    b.add_argument("--cells", type=int, default=0, help="coarse clusters (0 = ~sqrt(n_items))")
    b.add_argument("--nprobe", type=int, default=0, help="cells probed per query (0 = cells/8)")
    b.add_argument("--pq-m", type=int, default=0, help="PQ subspaces (ivfpq; 0 = dim/4)")
    b.add_argument("--pq-bits", type=int, default=8, help="bits per PQ code (ivfpq)")
    b.add_argument("--rerank", type=int, default=512, help="exact re-rank shortlist size (ivfpq)")
    b.add_argument("--seed", type=int, default=0)
    b.add_argument("--queries", type=int, default=200, help="sampled query vectors for the recall check")
    b.add_argument("--save", action="store_true", help="store the build recipe in the artifact metadata")
    b.add_argument(
        "--min-recall",
        type=float,
        default=None,
        metavar="R",
        help="exit non-zero unless recall@20 >= R (CI gate)",
    )

    i = action.add_parser("inspect", help="print an artifact's stored index recipe and rebuild stats")
    i.add_argument("artifact")


def _add_data(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("data", help="packed columnar dataset tools (docs/data.md)")
    action = p.add_subparsers(dest="data_command", required=True)

    pk = action.add_parser(
        "pack",
        help="convert a prepared dataset (.json) or raw sessions (.jsonl) to the packed format",
    )
    pk.add_argument("input", help="prepared dataset .json, or raw sessions .jsonl")
    pk.add_argument("out", help="output packed file (written atomically)")
    pk.add_argument(
        "--jsonl",
        action="store_true",
        help="force raw-JSONL ingest (otherwise inferred from the .jsonl suffix); "
        "streams the file twice in bounded memory",
    )
    pk.add_argument(
        "--config",
        choices=sorted(_CONFIGS),
        default=None,
        help="operation vocabulary + default min-support for raw JSONL ingest",
    )
    pk.add_argument("--min-support", type=int, default=None)
    pk.add_argument("--seed", type=int, default=0)
    pk.add_argument("--name", default=None, help="dataset name recorded in the header")
    pk.add_argument(
        "--no-fingerprint",
        action="store_true",
        help="skip the content digest (one full pass saved on huge corpora)",
    )

    ins = action.add_parser("inspect", help="print a packed file's header and sizes")
    ins.add_argument("input")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_prepare(sub)
    _add_data(sub)
    _add_models(sub)
    _add_train(sub)
    _add_evaluate(sub)
    _add_compare(sub)
    _add_profile(sub)
    _add_serve(sub)
    _add_index(sub)
    _add_deploy(sub)
    return parser


def _cmd_generate(args) -> int:
    config_fn, _ = _CONFIGS[args.config]
    sessions = generate_dataset(config_fn(), args.sessions, seed=args.seed)
    save_sessions_jsonl(sessions, args.out)
    print(f"wrote {len(sessions)} sessions to {args.out}")
    return 0


def _cmd_prepare(args) -> int:
    config_fn, default_support = _CONFIGS[args.config]
    cfg = config_fn()
    sessions = load_sessions_jsonl(args.input)
    dataset = prepare_dataset(
        sessions,
        cfg.operations,
        name=args.config,
        min_support=args.min_support or default_support,
        seed=args.seed,
    )
    save_prepared_dataset(dataset, args.out)
    print(
        f"prepared {dataset.name}: {len(dataset.train)} train / "
        f"{len(dataset.validation)} val / {len(dataset.test)} test, "
        f"{dataset.num_items} items -> {args.out}"
    )
    return 0


def _load_dataset(path):
    """Load ``path`` as packed (magic-sniffed) or prepared-JSON dataset."""
    from .data.packed import is_packed_file, load_packed

    if is_packed_file(path):
        return load_packed(path)
    return load_prepared_dataset(path)


def _runner(args, epochs: int | None = None) -> ExperimentRunner:
    dataset = _load_dataset(args.dataset)
    config = ExperimentConfig(
        dim=args.dim,
        epochs=epochs if epochs is not None else getattr(args, "epochs", 10),
        lr=getattr(args, "lr", 0.005),
        seed=args.seed,
        dtype=getattr(args, "dtype", "float64"),
        checkpoint_path=getattr(args, "train_state_path", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        resume_from=getattr(args, "resume", None),
        workers=getattr(args, "workers", 1),
        grad_shards=getattr(args, "grad_shards", 0),
        compile=getattr(args, "compile", False),
        bucket_lengths=getattr(args, "bucket_lengths", False),
        packed=getattr(args, "packed", False),
        prefetch=getattr(args, "prefetch", False),
        objective=getattr(args, "objective", None),
        cl_weight=getattr(args, "cl_weight", None),
    )
    return ExperimentRunner(dataset, config)


def _cmd_data(args) -> int:
    import pathlib

    from .data.packed import (
        load_packed,
        pack_dataset,
        pack_sessions_jsonl,
        read_packed_header,
    )

    if args.data_command == "inspect":
        try:
            header = read_packed_header(args.input)
        except (OSError, ValueError) as error:
            print(f"cannot inspect {args.input}: {error}", file=sys.stderr)
            return 1
        size = pathlib.Path(args.input).stat().st_size
        print(f"{args.input}: packed dataset format v{header['format_version']}")
        print(f"  name         {header['name']}")
        print(f"  fingerprint  {header['fingerprint'] or '(none)'}")
        print(f"  items        {header['num_items']}")
        print(f"  operations   {', '.join(header['operations'])}")
        for split, counts in header["splits"].items():
            print(
                f"  {split:12s} {counts['sessions']} sessions, "
                f"{counts['macro_steps']} macro steps, {counts['micro_ops']} micro ops"
            )
        print(f"  file bytes   {size}")
        return 0

    if args.jsonl or str(args.input).endswith(".jsonl"):
        if args.config is None:
            print("packing raw JSONL needs --config for the operation vocabulary", file=sys.stderr)
            return 1
        config_fn, default_support = _CONFIGS[args.config]
        cfg = config_fn()
        packed = pack_sessions_jsonl(
            args.input,
            cfg.operations,
            name=args.name or args.config,
            min_support=args.min_support or default_support,
            seed=args.seed,
            fingerprint=not args.no_fingerprint,
        )
    else:
        packed = pack_dataset(load_prepared_dataset(args.input))
        if args.name:
            packed.name = args.name
    path = packed.save(args.out)
    sizes = {name: len(split) for name, split in packed.splits().items()}
    print(
        f"packed {packed.name}: {sizes['train']} train / {sizes['validation']} val / "
        f"{sizes['test']} test, {packed.num_items} items "
        f"({packed.nbytes()} array bytes) -> {path}"
    )
    # A load sanity-check is nearly free (memmap: header + page table only).
    load_packed(path)
    return 0


def _cmd_models(args) -> int:
    from .registry import FIXED_BETA_PREFIX, FIXED_CL_PREFIX, registered_models

    rows = [
        [entry.name, entry.kind, entry.family, ", ".join(entry.param_fields) or "-", entry.description]
        for entry in registered_models()
    ]
    print(render_table(["name", "kind", "family", "params", "description"], rows))
    print(f"\npattern: {FIXED_BETA_PREFIX}<float>  (Fig. 6 constant fusion weight)")
    print(f"pattern: {FIXED_CL_PREFIX}<float>  (contrastive-weight sweep, docs/objectives.md)")
    return 0


def _cmd_train(args) -> int:
    import pathlib

    from .eval.trainer import NeuralRecommender
    from .nn import save_checkpoint

    # Crash safety: state writes are on unless explicitly disabled — they go
    # next to the parameter checkpoint (or train_state.npz) atomically.
    if args.checkpoint_every or args.resume or args.train_state or args.checkpoint:
        state = args.train_state or args.resume or (
            f"{args.checkpoint}.state.npz" if args.checkpoint else "train_state.npz"
        )
        args.train_state_path = str(pathlib.Path(state).resolve())
    runner = _runner(args)
    result = runner.run(args.model, verbose=True)
    pretty = ", ".join(f"{k}={v:.2f}" for k, v in result.metrics.items())
    print(f"{args.model} test metrics: {pretty}")
    if getattr(args, "train_state_path", None):
        print(f"training state saved to {args.train_state_path}")
    if args.checkpoint or args.artifact:
        recommender = result.recommender
        if not isinstance(recommender, NeuralRecommender):
            print(f"{args.model} has no parameters to persist", file=sys.stderr)
            return 1
        if args.checkpoint:
            saved = save_checkpoint(recommender.model, args.checkpoint)
            print(f"checkpoint saved to {pathlib.Path(saved).resolve()}")
        if args.artifact:
            recommender.save(args.artifact, metrics=result.metrics)
            print(f"artifact saved to {pathlib.Path(args.artifact).resolve()}")
    return 0


def _cmd_evaluate(args) -> int:
    from .eval.metrics import evaluate_scores
    from .eval.trainer import NeuralRecommender

    if args.artifact:
        # The bundle carries model name, dims, and weights; the dataset only
        # supplies the test examples to score.
        dataset = load_prepared_dataset(args.dataset)
        recommender = NeuralRecommender.from_artifact(args.artifact)
        print(f"loaded {recommender.name} from {args.artifact}")
    else:
        runner = _runner(args, epochs=0)
        dataset = runner.dataset
        recommender = runner.build(args.model)
        if not isinstance(recommender, NeuralRecommender):
            print(f"{args.model} is not a neural model", file=sys.stderr)
            return 1
        recommender.load(dataset, args.checkpoint)
    scores, targets = recommender.trainer.predict(dataset.test)
    metrics = evaluate_scores(scores, targets)
    print(render_table(["metric", "value (%)"], sorted(metrics.items())))
    return 0


def _cmd_compare(args) -> int:
    import pathlib

    from .eval.trainer import NeuralRecommender

    from .parallel import run_experiment_cells

    runner = _runner(args)
    run_experiment_cells(runner, args.models, workers=args.cell_workers, verbose=True)
    measured = {name: runner.results[name].metrics for name in args.models}
    rows = [[name] + [measured[name][m] for m in _METRICS] for name in args.models]
    print(render_table(["model"] + list(_METRICS), rows))
    if "EMBSR" in measured and len(measured) > 1:
        imp = improvement_table(measured, "EMBSR")
        print("\nEMBSR improvement over best competitor (%):")
        print(render_table(["metric", "Imp."], sorted(imp.items())))
    if args.artifact_dir:
        out = pathlib.Path(args.artifact_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name in args.models:
            recommender = runner.results[name].recommender
            if not isinstance(recommender, NeuralRecommender):
                print(f"{name}: non-parametric, no artifact written")
                continue
            path = out / f"{name.replace('=', '_')}.npz"
            recommender.save(path, metrics=measured[name])
            print(f"{name}: artifact saved to {path}")
    return 0


def _cmd_profile(args) -> int:
    import time

    from .autograd import default_dtype
    from .data.dataset import DataLoader
    from .eval.trainer import NeuralRecommender
    from .nn import Adam, clip_grad_norm
    from .objectives import StepContext, build_objective
    from .perf import OpProfiler, fusion

    runner = _runner(args, epochs=0)
    if args.artifact:
        recommender = NeuralRecommender.from_artifact(args.artifact)
        args.model = recommender.name
        args.dtype = recommender.spec.dtype
    else:
        recommender = runner.build(args.model)
        if not isinstance(recommender, NeuralRecommender):
            print(f"{args.model} is not a neural model", file=sys.stderr)
            return 1
    # The profiled steps optimize exactly what training would: the spec's
    # portable objective (EMBSR-SSL profiles its contrastive term too).
    spec = recommender.spec
    train_defaults = dict(spec.train or {})
    objective = build_objective(
        train_defaults.get("objective", "ce"),
        cl_weight=float(train_defaults.get("cl_weight", 0.1)),
        num_ops=spec.num_ops,
    )
    with default_dtype(args.dtype), fusion(not args.no_fusion):
        model = recommender.model if args.artifact else recommender.build_model()
        optimizer = Adam(model.parameters(), lr=args.lr)
        loader = DataLoader(
            runner.dataset.train,
            batch_size=args.batch_size,
            shuffle=True,
            seed=args.seed,
            # Compiled profiling needs repeating shape keys to reach replays.
            bucket_lengths=args.compiled,
        )
        batches = list(loader)
        model.train()
        engine = None
        if args.compiled:
            from .compile.step import CompileEngine

            engine = CompileEngine(model, objective=objective)
        profiler = OpProfiler()
        components: dict[str, float] = {}
        start = time.perf_counter()
        with profiler:
            for step in range(args.steps):
                batch = batches[step % len(batches)]
                optimizer.zero_grad()
                ctx = StepContext(seed=args.seed, epoch=0, batch_index=step)
                if engine is not None:
                    engine.step(batch, ctx=ctx)
                    components = dict(engine.last_components)
                else:
                    objective.begin_step(ctx)
                    parts = objective.compute(model, batch)
                    parts.loss.backward()
                    components = parts.component_values()
                clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
        elapsed = time.perf_counter() - start
    mode = "unfused" if args.no_fusion else "fused"
    if engine is not None:
        mode += ", compiled"
    print(
        f"{args.model} ({mode}, {args.dtype}): {args.steps} steps in {elapsed:.3f}s "
        f"({args.steps / elapsed:.2f} steps/s), "
        f"{profiler.backward_nodes} backward nodes"
    )
    if components:
        pretty = ", ".join(f"{k}={v:.4f}" for k, v in components.items())
        print(f"objective {objective.name} (last step): {pretty}")
    if engine is not None:
        st = engine.stats
        print(
            f"compile: {st.traces} traces, {st.validations} validations, "
            f"{st.replays} replays, {st.eager_steps} eager fallbacks"
        )
    print()
    print(profiler.table())
    if args.json:
        path = profiler.dump_json(args.json)
        print(f"\nprofile written to {path}")
    if args.trace:
        path = profiler.dump_trace(args.trace)
        print(f"trace written to {path} (open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_serve(args) -> int:
    import time

    from .serve import RecommenderService
    from .serving import GatewayConfig, PopularityFallback, ServingGateway

    gateway_config = GatewayConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.max_batch_size,
        max_wait_ms=args.max_wait_ms,
        deadline_ms=args.deadline_ms,
    )
    if args.artifact:
        # Self-describing bundle: model, vocabulary, and popularity fallback
        # all come from the one file — no dataset is generated or loaded.
        try:
            if args.deploy_dir:
                gateway = _deployed_gateway(args, gateway_config)
            else:
                gateway = ServingGateway.from_artifact(
                    args.artifact,
                    config=gateway_config,
                    retrieval=args.retrieval,
                    nprobe=args.nprobe,
                )
        except FileNotFoundError:
            print(f"artifact not found: {args.artifact}", file=sys.stderr)
            return 1
        except ValueError as error:
            print(f"cannot serve {args.artifact}: {error}", file=sys.stderr)
            return 1
        model_name = gateway.service.recommender.name
        if not _apply_compute(gateway.service, args.compute):
            return 1
        print(f"retrieval mode: {gateway.service.retrieval_mode}")
        return _serve_loop(args, gateway, model_name)
    if args.deploy_dir:
        print("--deploy-dir requires --artifact (lineage needs an on-disk generation)", file=sys.stderr)
        return 1

    config_fn, min_support = _CONFIGS[args.config]
    cfg = config_fn()
    sessions = generate_dataset(cfg, args.sessions, seed=args.seed)
    dataset = prepare_dataset(
        sessions, cfg.operations, name=args.config, min_support=min_support, seed=args.seed
    )
    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=args.dim, epochs=args.epochs, lr=args.lr, seed=args.seed)
    )
    if args.checkpoint:
        try:
            recommender = runner.build(args.model).load(dataset, args.checkpoint)
        except FileNotFoundError:
            print(f"checkpoint not found: {args.checkpoint}", file=sys.stderr)
            return 1
        except (KeyError, ValueError) as error:
            print(
                f"checkpoint {args.checkpoint} does not match {args.model} "
                f"(dim={args.dim}) on this dataset: {error}",
                file=sys.stderr,
            )
            return 1
        print(f"loaded {args.model} checkpoint from {args.checkpoint}")
    else:
        recommender = runner.run(args.model, verbose=True).recommender
    service = RecommenderService(recommender, dataset.vocab, num_ops=dataset.num_operations)
    try:
        service.enable_retrieval(args.retrieval, nprobe=args.nprobe)
    except ValueError as error:
        print(f"retrieval unavailable for {args.model}: {error}", file=sys.stderr)
        return 1
    if not _apply_compute(service, args.compute):
        return 1
    gateway = ServingGateway(service, gateway_config, fallback=PopularityFallback(dataset))
    print(f"retrieval mode: {service.retrieval_mode}")
    return _serve_loop(args, gateway, args.model)


def _apply_compute(service, mode: str) -> bool:
    """Select the serving precision; False (with stderr detail) on failure."""
    if mode == "native":
        return True
    try:
        service.enable_compute(mode)
    except ValueError as error:
        print(f"--compute {mode} unavailable: {error}", file=sys.stderr)
        return False
    info = service._quantized.describe()
    print(
        f"compute mode: {mode} (item matrix {info['storage_nbytes'] / 1024:.0f} KiB, "
        f"exact re-rank top {info['rerank_top']})"
    )
    return True


def _deployed_gateway(args, gateway_config):
    """Build the serving stack with the hot-swap control plane attached.

    When the deploy dir already records a promoted generation, that
    generation boots (crash recovery); otherwise ``--artifact`` becomes
    generation 1. With ``--online-interval``, ingested events feed an
    :class:`~repro.deploy.OnlineTrainer` whose snapshots auto-stage as
    canaries.
    """
    from .artifacts import load_artifact
    from .deploy import (
        DeploymentConfig,
        DeploymentError,
        DeploymentManager,
        DeploymentStore,
        EventRingBuffer,
        OnlineTrainer,
    )
    from .serve import RecommenderService
    from .serving import PopularityFallback, ServingGateway

    store = DeploymentStore(args.deploy_dir)
    deploy_config = DeploymentConfig(
        canary_pct=args.canary_pct, shadow_sample_pct=args.shadow_sample, seed=args.seed
    )
    promoted = store.latest_promoted()
    if promoted is not None:
        print(f"recovering generation v{promoted['version']} from {args.deploy_dir}")
        manager = DeploymentManager.recover(
            store, config=deploy_config, retrieval=args.retrieval, nprobe=args.nprobe
        )
        service = manager.service
        bundle = load_artifact(promoted["path"])
    else:
        bundle = load_artifact(args.artifact)
        service = RecommenderService.from_artifact(
            bundle, retrieval=args.retrieval, nprobe=args.nprobe
        )
        manager = DeploymentManager(
            service, store=store, config=deploy_config, incumbent_path=args.artifact
        )
    ranked = bundle.metadata.get("popularity") or []
    fallback = PopularityFallback.from_ranked(ranked) if ranked else None

    if args.online_interval > 0:
        service.event_buffer = EventRingBuffer()
        trainer = OnlineTrainer(
            service.recommender,
            service.event_buffer,
            store,
            base_version=manager.incumbent.version,
            seed=args.seed,
        )

        def auto_stage(path) -> None:
            try:
                manager.stage(path, wait=False)
            except DeploymentError:
                pass  # a canary is already live; next snapshot gets its turn

        trainer.start_loop(args.online_interval, on_snapshot=auto_stage)
        print(f"online trainer: snapshot every {args.online_interval:.0f}s -> {args.deploy_dir}")

    gateway = ServingGateway(
        service, gateway_config, fallback=fallback, deployment=manager
    )
    print(f"deployment control plane: POST /deploy (lineage in {args.deploy_dir})")
    return gateway


def _cmd_deploy(args) -> int:
    import json as json_mod
    import urllib.error
    import urllib.request

    base = args.url.rstrip("/")

    def call(method: str, path: str, payload: dict | None = None) -> tuple[int, dict]:
        request = urllib.request.Request(
            base + path,
            method=method,
            data=json_mod.dumps(payload).encode() if payload is not None else None,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=300.0) as response:
                return response.status, json_mod.loads(response.read() or b"{}")
        except urllib.error.HTTPError as error:
            return error.code, json_mod.loads(error.read() or b"{}")
        except urllib.error.URLError as error:
            print(f"cannot reach gateway at {base}: {error.reason}", file=sys.stderr)
            raise SystemExit(1)

    if args.status:
        status, body = call("GET", "/deploy")
    elif args.promote:
        status, body = call("POST", "/deploy/promote", {"reason": args.reason})
    elif args.rollback:
        status, body = call("POST", "/deploy/rollback", {"reason": args.reason})
    else:
        import pathlib

        payload: dict = {
            "artifact": str(pathlib.Path(args.artifact).resolve()),
            "wait": not args.no_wait,
        }
        if args.canary_pct is not None:
            payload["canary_pct"] = args.canary_pct
        if args.shadow_sample is not None:
            payload["shadow_sample"] = args.shadow_sample
        status, body = call("POST", "/deploy", payload)
    print(json_mod.dumps(body, indent=2))
    return 0 if status < 400 else 1


def _index_factorization(path):
    """Load an artifact and factorize its model's scoring head."""
    from .artifacts import load_artifact
    from .retrieval import factorize

    bundle = load_artifact(path)
    recommender = bundle.build()
    fact = factorize(recommender.model, dtype=bundle.spec.dtype)
    if fact is None:
        raise ValueError(
            f"{bundle.spec.name} does not expose encode_sessions(); cannot index"
        )
    return bundle, fact


def _cmd_index(args) -> int:
    import numpy as np

    from .retrieval import IndexSpec, build_index, measure_recall, sample_queries

    try:
        bundle, fact = _index_factorization(args.artifact)
    except FileNotFoundError:
        print(f"artifact not found: {args.artifact}", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"cannot index {args.artifact}: {error}", file=sys.stderr)
        return 1
    items = fact.item_matrix()

    if args.index_command == "inspect":
        spec = bundle.retrieval_spec()
        if spec is None:
            print(f"{args.artifact}: no stored index recipe (run `repro index build ... --save`)")
            return 0
        index = build_index(items, spec)
        sizes = index.list_sizes()
        print(f"{args.artifact}: {spec.kind} index recipe")
        for key, value in spec.resolve(*items.shape).to_dict().items():
            print(f"  {key:12s} {value}")
        print(f"  items        {index.n_items}")
        print(f"  list sizes   min={sizes.min()} mean={sizes.mean():.1f} max={sizes.max()}")
        print(f"  index bytes  {index.memory_bytes()}")
        return 0

    spec = IndexSpec(
        kind=args.kind,
        cells=args.cells,
        nprobe=args.nprobe,
        seed=args.seed,
        pq_m=args.pq_m,
        pq_bits=args.pq_bits,
        rerank=args.rerank,
    ).resolve(*items.shape)
    print(f"building {spec.kind} index over {items.shape[0]} items (dim {items.shape[1]})")
    index = build_index(items, spec)
    for key, value in index.spec.to_dict().items():
        print(f"  {key:12s} {value}")

    queries = sample_queries(items, args.queries, seed=spec.seed)
    result = measure_recall(index, queries, ks=(10, 20))
    ann = np.array(result["ann_ms"])
    exact = np.array(result["exact_ms"])
    print(f"recall vs. exact over {len(queries)} sampled queries (nprobe={result['nprobe']}):")
    print(f"  recall@10    {result['recall'][10]:.4f}")
    print(f"  recall@20    {result['recall'][20]:.4f}")
    print(f"  candidates   {result['candidates']:.0f} / query (mean)")
    print(f"  ann p50/p95  {np.percentile(ann, 50):.3f} / {np.percentile(ann, 95):.3f} ms")
    print(f"  exact p50    {np.percentile(exact, 50):.3f} ms")

    if args.save:
        from .artifacts import store_retrieval_spec

        store_retrieval_spec(args.artifact, index.spec)
        print(f"recipe stored in {args.artifact} metadata")
    if args.min_recall is not None and result["recall"][20] < args.min_recall:
        print(
            f"FAIL: recall@20 {result['recall'][20]:.4f} < required {args.min_recall}",
            file=sys.stderr,
        )
        return 1
    return 0


def _serve_loop(args, gateway, model_name: str) -> int:
    import time

    gateway.start()
    print(f"serving {model_name} on {gateway.address}")
    print(f"  POST {gateway.address}/events      {{session_id, item, operation}}")
    print(f"  GET  {gateway.address}/recommend?session_id=...&k=10")
    print(f"  GET  {gateway.address}/healthz")
    print(f"  GET  {gateway.address}/metrics")
    if getattr(gateway, "deployment", None) is not None:
        print(f"  GET/POST {gateway.address}/deploy   (+ /deploy/promote, /deploy/rollback)")
    try:
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        gateway.stop()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "prepare": _cmd_prepare,
    "data": _cmd_data,
    "models": _cmd_models,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "index": _cmd_index,
    "deploy": _cmd_deploy,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (or sys.argv) and dispatch a subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
