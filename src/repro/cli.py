"""Command-line interface.

Usage (after ``python setup.py develop``):

.. code-block:: bash

    python -m repro.cli generate --config jd-appliances --sessions 2000 --out sessions.jsonl
    python -m repro.cli prepare  --config jd-appliances --input sessions.jsonl --out dataset.json
    python -m repro.cli train    --dataset dataset.json --model EMBSR --epochs 8 --checkpoint embsr.npz
    python -m repro.cli train    --dataset dataset.json --model EMBSR --resume embsr.npz.state.npz
    python -m repro.cli evaluate --dataset dataset.json --model EMBSR --checkpoint embsr.npz
    python -m repro.cli compare  --dataset dataset.json --models EMBSR SGNN-HN MKM-SR
    python -m repro.cli profile  --dataset dataset.json --model EMBSR --steps 5
    python -m repro.cli serve    --config jd-appliances --model STAMP --port 8080

The ``compare`` command reproduces a slice of the paper's Table III for any
subset of the twelve systems. ``profile`` runs a few training steps under
the op-level profiler (``repro.perf.OpProfiler``) and prints where forward
and backward time goes (see ``docs/performance.md``). ``serve`` trains (or loads) a model on a
synthetic dataset and exposes it through the micro-batching HTTP gateway
(``repro.serving``): ``POST /events``, ``GET /recommend``, ``GET /healthz``,
``GET /metrics``.
"""

from __future__ import annotations

import argparse
import sys

from .data import (
    generate_dataset,
    jd_appliances_config,
    jd_computers_config,
    load_prepared_dataset,
    load_sessions_jsonl,
    prepare_dataset,
    save_prepared_dataset,
    save_sessions_jsonl,
    trivago_config,
)
from .eval import ExperimentConfig, ExperimentRunner, improvement_table
from .utils import render_table

__all__ = ["main"]

_CONFIGS = {
    "jd-appliances": (jd_appliances_config, 3),
    "jd-computers": (jd_computers_config, 3),
    "trivago": (trivago_config, 2),
}

_METRICS = ("H@5", "H@10", "H@20", "M@5", "M@10", "M@20")


def _add_generate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("generate", help="generate synthetic micro-behavior sessions")
    p.add_argument("--config", choices=sorted(_CONFIGS), required=True)
    p.add_argument("--sessions", type=int, default=2000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", required=True, help="output JSONL path")


def _add_prepare(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("prepare", help="preprocess raw sessions into train/val/test")
    p.add_argument("--config", choices=sorted(_CONFIGS), required=True)
    p.add_argument("--input", required=True, help="sessions JSONL path")
    p.add_argument("--out", required=True, help="prepared dataset JSON path")
    p.add_argument("--min-support", type=int, default=None)
    p.add_argument("--seed", type=int, default=0)


def _add_train(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("train", help="train one system and save a checkpoint")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    p.add_argument("--checkpoint", default=None, help="save parameters here (.npz)")
    p.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="also write the full training state every N batches (enables kill -9 safe runs)",
    )
    p.add_argument(
        "--train-state",
        default=None,
        metavar="PATH",
        help="training-state file (default: <checkpoint>.state.npz, or train_state.npz)",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="STATE",
        help="continue an interrupted run from this training-state file",
    )


def _add_evaluate(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("evaluate", help="evaluate a trained checkpoint")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", required=True)


def _add_compare(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("compare", help="train several systems, print a Table-III slice")
    p.add_argument("--dataset", required=True)
    p.add_argument("--models", nargs="+", default=["SGNN-HN", "MKM-SR", "EMBSR"])
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--epochs", type=int, default=10)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")


def _add_profile(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("profile", help="profile a few training steps op by op")
    p.add_argument("--dataset", required=True)
    p.add_argument("--model", default="EMBSR")
    p.add_argument("--dim", type=int, default=32)
    p.add_argument("--steps", type=int, default=5)
    p.add_argument("--batch-size", type=int, default=64)
    p.add_argument("--lr", type=float, default=0.003)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--dtype", choices=["float32", "float64"], default="float64")
    p.add_argument("--no-fusion", action="store_true", help="profile the unfused composed ops")
    p.add_argument("--json", default=None, metavar="PATH", help="also dump the profile as JSON")


def _add_serve(sub: argparse._SubParsersAction) -> None:
    p = sub.add_parser("serve", help="train (or load) a model and serve it over HTTP")
    p.add_argument("--config", choices=sorted(_CONFIGS), default="jd-appliances")
    p.add_argument("--sessions", type=int, default=1000, help="synthetic sessions to train on")
    p.add_argument("--model", default="STAMP")
    p.add_argument("--dim", type=int, default=16)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--lr", type=float, default=0.005)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--checkpoint", default=None, help="load this .npz instead of training")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080)
    p.add_argument("--max-batch-size", type=int, default=32)
    p.add_argument("--max-wait-ms", type=float, default=5.0)
    p.add_argument("--deadline-ms", type=float, default=250.0)
    p.add_argument("--duration", type=float, default=0.0, help="seconds to serve (0 = until Ctrl-C)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_generate(sub)
    _add_prepare(sub)
    _add_train(sub)
    _add_evaluate(sub)
    _add_compare(sub)
    _add_profile(sub)
    _add_serve(sub)
    return parser


def _cmd_generate(args) -> int:
    config_fn, _ = _CONFIGS[args.config]
    sessions = generate_dataset(config_fn(), args.sessions, seed=args.seed)
    save_sessions_jsonl(sessions, args.out)
    print(f"wrote {len(sessions)} sessions to {args.out}")
    return 0


def _cmd_prepare(args) -> int:
    config_fn, default_support = _CONFIGS[args.config]
    cfg = config_fn()
    sessions = load_sessions_jsonl(args.input)
    dataset = prepare_dataset(
        sessions,
        cfg.operations,
        name=args.config,
        min_support=args.min_support or default_support,
        seed=args.seed,
    )
    save_prepared_dataset(dataset, args.out)
    print(
        f"prepared {dataset.name}: {len(dataset.train)} train / "
        f"{len(dataset.validation)} val / {len(dataset.test)} test, "
        f"{dataset.num_items} items -> {args.out}"
    )
    return 0


def _runner(args, epochs: int | None = None) -> ExperimentRunner:
    dataset = load_prepared_dataset(args.dataset)
    config = ExperimentConfig(
        dim=args.dim,
        epochs=epochs if epochs is not None else getattr(args, "epochs", 10),
        lr=getattr(args, "lr", 0.005),
        seed=args.seed,
        dtype=getattr(args, "dtype", "float64"),
        checkpoint_path=getattr(args, "train_state_path", None),
        checkpoint_every=getattr(args, "checkpoint_every", 0),
        resume_from=getattr(args, "resume", None),
    )
    return ExperimentRunner(dataset, config)


def _cmd_train(args) -> int:
    import pathlib

    from .eval.trainer import NeuralRecommender
    from .nn import save_checkpoint

    # Crash safety: state writes are on unless explicitly disabled — they go
    # next to the parameter checkpoint (or train_state.npz) atomically.
    if args.checkpoint_every or args.resume or args.train_state or args.checkpoint:
        state = args.train_state or args.resume or (
            f"{args.checkpoint}.state.npz" if args.checkpoint else "train_state.npz"
        )
        args.train_state_path = str(pathlib.Path(state).resolve())
    runner = _runner(args)
    result = runner.run(args.model, verbose=True)
    pretty = ", ".join(f"{k}={v:.2f}" for k, v in result.metrics.items())
    print(f"{args.model} test metrics: {pretty}")
    if getattr(args, "train_state_path", None):
        print(f"training state saved to {args.train_state_path}")
    if args.checkpoint:
        recommender = result.recommender
        if not isinstance(recommender, NeuralRecommender):
            print(f"{args.model} has no parameters to checkpoint", file=sys.stderr)
            return 1
        saved = save_checkpoint(recommender.model, args.checkpoint)
        print(f"checkpoint saved to {pathlib.Path(saved).resolve()}")
    return 0


def _cmd_evaluate(args) -> int:
    from .eval.metrics import evaluate_scores
    from .eval.trainer import NeuralRecommender
    from .nn import load_checkpoint

    runner = _runner(args, epochs=0)
    recommender = runner.build(args.model)
    if not isinstance(recommender, NeuralRecommender):
        print(f"{args.model} is not a neural model", file=sys.stderr)
        return 1
    # Build the architecture without training, then load the checkpoint.
    from .eval.trainer import Trainer

    model = recommender._factory(runner.dataset)
    load_checkpoint(model, args.checkpoint)
    trainer = Trainer(model, recommender.train_config)
    scores, targets = trainer.predict(runner.dataset.test)
    metrics = evaluate_scores(scores, targets)
    print(render_table(["metric", "value (%)"], sorted(metrics.items())))
    return 0


def _cmd_compare(args) -> int:
    runner = _runner(args)
    for name in args.models:
        runner.run(name, verbose=True)
    measured = {name: runner.results[name].metrics for name in args.models}
    rows = [[name] + [measured[name][m] for m in _METRICS] for name in args.models]
    print(render_table(["model"] + list(_METRICS), rows))
    if "EMBSR" in measured and len(measured) > 1:
        imp = improvement_table(measured, "EMBSR")
        print("\nEMBSR improvement over best competitor (%):")
        print(render_table(["metric", "Imp."], sorted(imp.items())))
    return 0


def _cmd_profile(args) -> int:
    import time

    from .autograd import default_dtype
    from .data.dataset import DataLoader
    from .eval.trainer import NeuralRecommender
    from .nn import Adam, clip_grad_norm, cross_entropy
    from .perf import OpProfiler, fusion

    runner = _runner(args, epochs=0)
    recommender = runner.build(args.model)
    if not isinstance(recommender, NeuralRecommender):
        print(f"{args.model} is not a neural model", file=sys.stderr)
        return 1
    with default_dtype(args.dtype), fusion(not args.no_fusion):
        model = recommender._factory(runner.dataset)
        optimizer = Adam(model.parameters(), lr=args.lr)
        loader = DataLoader(
            runner.dataset.train, batch_size=args.batch_size, shuffle=True, seed=args.seed
        )
        batches = list(loader)
        model.train()
        profiler = OpProfiler()
        start = time.perf_counter()
        with profiler:
            for step in range(args.steps):
                batch = batches[step % len(batches)]
                optimizer.zero_grad()
                loss = cross_entropy(model(batch), batch.target_classes)
                loss.backward()
                clip_grad_norm(model.parameters(), 5.0)
                optimizer.step()
        elapsed = time.perf_counter() - start
    mode = "unfused" if args.no_fusion else "fused"
    print(
        f"{args.model} ({mode}, {args.dtype}): {args.steps} steps in {elapsed:.3f}s "
        f"({args.steps / elapsed:.2f} steps/s), "
        f"{profiler.backward_nodes} backward nodes"
    )
    print()
    print(profiler.table())
    if args.json:
        path = profiler.dump_json(args.json)
        print(f"\nprofile written to {path}")
    return 0


def _cmd_serve(args) -> int:
    import time

    from .serve import RecommenderService
    from .serving import GatewayConfig, PopularityFallback, ServingGateway

    config_fn, min_support = _CONFIGS[args.config]
    cfg = config_fn()
    sessions = generate_dataset(cfg, args.sessions, seed=args.seed)
    dataset = prepare_dataset(
        sessions, cfg.operations, name=args.config, min_support=min_support, seed=args.seed
    )
    runner = ExperimentRunner(
        dataset, ExperimentConfig(dim=args.dim, epochs=args.epochs, lr=args.lr, seed=args.seed)
    )
    if args.checkpoint:
        try:
            recommender = runner.build(args.model).load(dataset, args.checkpoint)
        except FileNotFoundError:
            print(f"checkpoint not found: {args.checkpoint}", file=sys.stderr)
            return 1
        except (KeyError, ValueError) as error:
            print(
                f"checkpoint {args.checkpoint} does not match {args.model} "
                f"(dim={args.dim}) on this dataset: {error}",
                file=sys.stderr,
            )
            return 1
        print(f"loaded {args.model} checkpoint from {args.checkpoint}")
    else:
        recommender = runner.run(args.model, verbose=True).recommender
    service = RecommenderService(recommender, dataset.vocab, num_ops=dataset.num_operations)
    gateway = ServingGateway(
        service,
        GatewayConfig(
            host=args.host,
            port=args.port,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            deadline_ms=args.deadline_ms,
        ),
        fallback=PopularityFallback(dataset),
    )
    gateway.start()
    print(f"serving {args.model} on {gateway.address}")
    print(f"  POST {gateway.address}/events      {{session_id, item, operation}}")
    print(f"  GET  {gateway.address}/recommend?session_id=...&k=10")
    print(f"  GET  {gateway.address}/healthz")
    print(f"  GET  {gateway.address}/metrics")
    try:
        if args.duration > 0:
            time.sleep(args.duration)
        else:
            while True:
                time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        gateway.stop()
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "prepare": _cmd_prepare,
    "train": _cmd_train,
    "evaluate": _cmd_evaluate,
    "compare": _cmd_compare,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse ``argv`` (or sys.argv) and dispatch a subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
