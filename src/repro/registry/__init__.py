"""Model registry: declarative, serializable model construction.

Every system in the reproduction — EMBSR, its eleven Table III baselines,
and every ablation/analysis variant — registers here as a
:class:`RegisteredModel` that turns a name plus dataset dimensions into a
:class:`ModelSpec`, and a pure builder that turns that spec into a
recommender. Specs are frozen, JSON-serializable dataclasses, so a model's
identity can be written into an artifact, shipped across a process
boundary, and rebuilt bit-identically (``docs/registry.md``).

>>> from repro import registry
>>> spec = registry.spec_for("EMBSR", num_items=500, num_ops=10, dim=32)
>>> recommender = registry.build(spec)          # unfitted NeuralRecommender
>>> model = registry.build_module(spec)         # the bare nn.Module
"""

from .models import FIXED_BETA_PREFIX, FIXED_CL_PREFIX, TABLE3_MODELS
from .registry import (
    NEURAL,
    NONPARAMETRIC,
    REGISTRY,
    ModelRegistry,
    RegisteredModel,
    build,
    build_module,
    model_names,
    register_family,
    register_model,
    register_resolver,
    registered_models,
    resolve,
    spec_for,
)
from .spec import ModelSpec

__all__ = [
    "ModelSpec",
    "ModelRegistry",
    "RegisteredModel",
    "REGISTRY",
    "NEURAL",
    "NONPARAMETRIC",
    "TABLE3_MODELS",
    "FIXED_BETA_PREFIX",
    "FIXED_CL_PREFIX",
    "register_family",
    "register_model",
    "register_resolver",
    "resolve",
    "spec_for",
    "build",
    "build_module",
    "model_names",
    "registered_models",
]
