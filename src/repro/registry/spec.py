"""Declarative model specifications.

A :class:`ModelSpec` is the *complete* recipe for constructing one of the
repository's recommender systems: the registered model name, the family the
registry dispatches construction on, the dataset dimensions the
architecture is sized for, every hyper-parameter, and (for trainable
systems) the portable optimization knobs. It is a frozen dataclass built
from JSON scalars only, so it serializes losslessly to JSON, pickles, and
crosses process boundaries — the property every multi-worker serving and
training path relies on (see ``docs/registry.md``).
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["ModelSpec"]

# Spec fields that define *architecture identity*: two specs agreeing on
# these build bit-identical parameter shapes, so checkpoints transfer.
# ``train`` (optimization knobs) and ``dtype`` (storage precision; loads
# cast) are deliberately excluded.
_ARCHITECTURE_FIELDS = ("name", "family", "num_items", "num_ops", "params")


@dataclass(frozen=True)
class ModelSpec:
    """Self-contained, serializable recipe for building one recommender.

    Parameters
    ----------
    name:
        The registered model name (``"EMBSR"``, ``"SGNN-HN"``,
        ``"EMBSR-beta=0.4"``, ...).
    family:
        Registry dispatch key naming the architecture family
        (``"embsr"``, ``"stamp"``, ``"sknn"``, ...).
    num_items / num_ops:
        Dataset dimensions the embedding tables are sized for.
    params:
        Architecture hyper-parameters (``dim``, ``dropout``, ``seed``,
        variant switches, ...). JSON scalars only.
    train:
        Portable optimization knobs (``epochs``, ``lr``, ...). Runtime-only
        settings (checkpoint paths, verbosity) never belong here.
    dtype:
        Parameter storage dtype the model trains/serves under.
    """

    name: str
    family: str
    num_items: int
    num_ops: int
    params: dict[str, Any] = field(default_factory=dict)
    train: dict[str, Any] = field(default_factory=dict)
    dtype: str = "float64"

    def __post_init__(self):
        if self.num_items <= 0:
            raise ValueError(f"num_items must be positive, got {self.num_items}")
        if self.num_ops < 0:
            raise ValueError(f"num_ops must be non-negative, got {self.num_ops}")
        # Fail fast on anything that could not cross a process boundary.
        try:
            json.dumps({"params": self.params, "train": self.train})
        except TypeError as error:
            raise TypeError(f"spec for {self.name!r} is not JSON-serializable: {error}")

    # ------------------------------------------------------------- identity
    def architecture(self) -> dict[str, Any]:
        """The fields that determine parameter names and shapes."""
        return {f: getattr(self, f) for f in _ARCHITECTURE_FIELDS}

    def architecture_mismatch(self, other: "ModelSpec | dict") -> dict[str, tuple]:
        """Architecture fields on which ``self`` and ``other`` disagree."""
        theirs = other.architecture() if isinstance(other, ModelSpec) else {
            f: other.get(f) for f in _ARCHITECTURE_FIELDS
        }
        mine = self.architecture()
        return {f: (mine[f], theirs[f]) for f in _ARCHITECTURE_FIELDS if mine[f] != theirs[f]}

    # ----------------------------------------------------------- round trip
    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ModelSpec":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in known})

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ModelSpec":
        return cls.from_dict(json.loads(text))

    # -------------------------------------------------------------- helpers
    def train_config(self, **overrides):
        """Materialize a :class:`~repro.eval.trainer.TrainConfig`.

        Unknown keys in ``train`` are ignored (forward compatibility);
        ``overrides`` layer runtime-only knobs (checkpoint paths, verbose)
        on top of the portable record.
        """
        # Imported lazily: repro.eval imports the registry at package init.
        from ..eval.trainer import TrainConfig

        known = {f.name for f in dataclasses.fields(TrainConfig)}
        kwargs = {k: v for k, v in self.train.items() if k in known}
        kwargs.setdefault("dtype", self.dtype)
        kwargs.update(overrides)
        return TrainConfig(**kwargs)

    def describe(self) -> str:
        """One-line parameter summary for ``repro models``-style listings."""
        parts = [f"{k}={v}" for k, v in sorted(self.params.items())]
        return ", ".join(parts) if parts else "-"
