"""Built-in registrations: every system of Table III and every variant.

Each family's ``module_builder`` is a pure, module-level function of a
:class:`~repro.registry.spec.ModelSpec` — no closures over datasets or
configs — so specs written into artifacts rebuild identical architectures
in any process. Baseline and trainer imports happen inside the builders to
keep ``repro.registry`` importable from everywhere (the baselines import
``repro.eval.recommender`` themselves).
"""

from __future__ import annotations

from .registry import NEURAL, NONPARAMETRIC, REGISTRY, RegisteredModel
from .spec import ModelSpec

__all__ = ["TABLE3_MODELS", "FIXED_BETA_PREFIX", "FIXED_CL_PREFIX"]

# Table III row order: 8 macro baselines, 3 micro baselines, EMBSR last.
TABLE3_MODELS = (
    "S-POP",
    "SKNN",
    "NARM",
    "STAMP",
    "SR-GNN",
    "GC-SAN",
    "BERT4Rec",
    "SGNN-HN",
    "RIB",
    "HUP",
    "MKM-SR",
    "EMBSR",
)

FIXED_BETA_PREFIX = "EMBSR-beta="
FIXED_CL_PREFIX = "EMBSR-SSL-cl="

_MACRO_FIELDS = ("dim", "dropout", "seed")
_MICRO_FIELDS = ("dim", "dropout", "seed")
_EMBSR_FIELDS = ("dim", "dropout", "seed", "w_k")


def _arch(spec: ModelSpec, *names: str) -> dict:
    return {n: spec.params[n] for n in names if n in spec.params}


# ---------------------------------------------------------- module builders
def build_narm_module(spec: ModelSpec):
    from ..baselines import NARM

    return NARM(spec.num_items, **_arch(spec, "dim", "dropout", "seed"))


def build_stamp_module(spec: ModelSpec):
    from ..baselines import STAMP

    return STAMP(spec.num_items, **_arch(spec, "dim", "dropout", "seed"))


def build_srgnn_module(spec: ModelSpec):
    from ..baselines import SRGNN

    return SRGNN(spec.num_items, **_arch(spec, "dim", "num_layers", "dropout", "seed"))


def build_gcsan_module(spec: ModelSpec):
    from ..baselines import GCSAN

    return GCSAN(spec.num_items, **_arch(spec, "dim", "dropout", "seed"))


def build_bert4rec_module(spec: ModelSpec):
    from ..baselines import BERT4Rec

    return BERT4Rec(
        spec.num_items,
        **_arch(spec, "dim", "num_blocks", "num_heads", "max_len", "dropout", "seed"),
    )


def build_sgnn_hn_module(spec: ModelSpec):
    from ..baselines import SGNNHN

    return SGNNHN(spec.num_items, **_arch(spec, "dim", "w_k", "dropout", "seed"))


def build_rib_module(spec: ModelSpec):
    from ..baselines import RIB

    return RIB(spec.num_items, spec.num_ops, **_arch(spec, "dim", "dropout", "seed"))


def build_hup_module(spec: ModelSpec):
    from ..baselines import HUP

    return HUP(spec.num_items, spec.num_ops, **_arch(spec, "dim", "dropout", "seed"))


def build_mkm_sr_module(spec: ModelSpec):
    from ..baselines import MKMSR

    return MKMSR(spec.num_items, spec.num_ops, **_arch(spec, "dim", "dropout", "seed"))


# EMBSRConfig fields a spec may carry; anything absent keeps the dataclass
# default, so old specs stay buildable as the config grows.
_EMBSR_CONFIG_FIELDS = (
    "dim",
    "num_layers",
    "dropout",
    "w_k",
    "max_seq_len",
    "seed",
    "encoder",
    "use_op_gru",
    "attention",
    "attention_level",
    "fusion",
    "tie_op_embeddings",
)


def build_embsr_module(spec: ModelSpec):
    from ..core import EMBSR, EMBSRConfig

    return EMBSR(
        EMBSRConfig(
            num_items=spec.num_items,
            num_ops=spec.num_ops,
            **_arch(spec, *_EMBSR_CONFIG_FIELDS),
        )
    )


def build_embsr_weighted_module(spec: ModelSpec):
    from ..core import EMBSRConfig
    from ..core.extensions import build_embsr_weighted_ops

    return build_embsr_weighted_ops(
        EMBSRConfig(
            num_items=spec.num_items,
            num_ops=spec.num_ops,
            **_arch(spec, "dim", "dropout", "w_k", "seed"),
        )
    )


# ----------------------------------------------------- recommender builders
def build_spop(spec: ModelSpec):
    from ..baselines import SPop

    return SPop(**_arch(spec, "popularity_fallback"))


def build_sknn(spec: ModelSpec):
    from ..baselines import SKNN

    return SKNN(**_arch(spec, "k", "sample_size"))


# ------------------------------------------------------------ registrations
def _register_builtins() -> None:
    from ..core import VARIANT_SWITCHES

    REGISTRY.register_family("s-pop", recommender_builder=build_spop)
    REGISTRY.register_family("sknn", recommender_builder=build_sknn)
    for family, builder in (
        ("narm", build_narm_module),
        ("stamp", build_stamp_module),
        ("sr-gnn", build_srgnn_module),
        ("gc-san", build_gcsan_module),
        ("bert4rec", build_bert4rec_module),
        ("sgnn-hn", build_sgnn_hn_module),
        ("rib", build_rib_module),
        ("hup", build_hup_module),
        ("mkm-sr", build_mkm_sr_module),
        ("embsr", build_embsr_module),
        ("embsr-weighted", build_embsr_weighted_module),
    ):
        REGISTRY.register_family(family, module_builder=builder)

    REGISTRY.register_model(
        RegisteredModel("S-POP", "s-pop", NONPARAMETRIC, description="session popularity")
    )
    REGISTRY.register_model(
        RegisteredModel("SKNN", "sknn", NONPARAMETRIC, description="session k-NN (cosine)")
    )
    for name, family, fields, description in (
        ("NARM", "narm", _MACRO_FIELDS, "GRU + item-level attention"),
        ("STAMP", "stamp", _MACRO_FIELDS, "short-term attention/memory priority"),
        ("SR-GNN", "sr-gnn", _MACRO_FIELDS, "gated GNN over the session graph"),
        ("GC-SAN", "gc-san", _MACRO_FIELDS, "GNN + self-attention"),
        ("BERT4Rec", "bert4rec", _MACRO_FIELDS, "bidirectional transformer"),
        ("SGNN-HN", "sgnn-hn", ("dim", "dropout", "seed", "w_k"), "star GNN + highway"),
        ("RIB", "rib", _MICRO_FIELDS, "micro: GRU over item+op pairs"),
        ("HUP", "hup", _MICRO_FIELDS, "micro: hierarchical user preference"),
        ("MKM-SR", "mkm-sr", _MICRO_FIELDS, "micro: GNN items + GRU ops"),
    ):
        REGISTRY.register_model(
            RegisteredModel(name, family, NEURAL, param_fields=fields, description=description)
        )

    # EMBSR and every named ablation/analysis variant: one family, the
    # switch table from repro.core.variants frozen into each entry.
    descriptions = {
        "EMBSR": "full model (Sec. IV)",
        "EMBSR-NS": "no operation-aware self-attention (Table IV)",
        "EMBSR-NG": "no GNN layer (Table IV)",
        "EMBSR-NF": "concat+MLP instead of fusion gate (Table IV)",
        "SGNN-Self": "star GNN + plain attention, no micro info (Fig. 4)",
        "SGNN-Seq-Self": "+ sequential micro-op GRU in the GNN (Fig. 4)",
        "RNN-Self": "RNN over item+op embeddings + plain attention (Fig. 4)",
        "SGNN-Abs-Self": "absolute op embeddings in plain attention (Fig. 5)",
        "SGNN-Dyadic": "dyadic attention without the micro-op GRU (Fig. 5)",
    }
    for name, switches in VARIANT_SWITCHES.items():
        REGISTRY.register_model(
            RegisteredModel(
                name,
                "embsr",
                NEURAL,
                param_fields=_EMBSR_FIELDS,
                fixed=dict(switches),
                description=descriptions.get(name, "EMBSR variant"),
            )
        )

    REGISTRY.register_model(
        RegisteredModel(
            "EMBSR-W",
            "embsr-weighted",
            NEURAL,
            param_fields=_EMBSR_FIELDS,
            description="EMBSR + learned op-importance gate (extension)",
        )
    )

    # Objective variants: the same architectures trained under composite
    # objectives (docs/objectives.md) — no new module builders.
    REGISTRY.register_model(
        RegisteredModel(
            "EMBSR-SSL",
            "embsr",
            NEURAL,
            param_fields=_EMBSR_FIELDS,
            fixed=dict(VARIANT_SWITCHES["EMBSR"]),
            train={"objective": "ssl", "cl_weight": 0.1},
            description="EMBSR + InfoNCE over augmented session views",
        )
    )
    REGISTRY.register_model(
        RegisteredModel(
            "MKM-SR-OP",
            "mkm-sr",
            NEURAL,
            param_fields=_MICRO_FIELDS,
            train={"objective": "op-aux", "cl_weight": 0.2},
            description="MKM-SR + next-operation auxiliary loss (original paper)",
        )
    )

    REGISTRY.register_resolver(_resolve_fixed_beta)
    REGISTRY.register_resolver(_resolve_fixed_cl)


def _resolve_fixed_beta(name: str) -> RegisteredModel | None:
    """``EMBSR-beta=<x>``: the Fig. 6 constant-fusion-weight sweep."""
    if not name.startswith(FIXED_BETA_PREFIX):
        return None
    from ..core import VARIANT_SWITCHES

    try:
        beta = float(name[len(FIXED_BETA_PREFIX):])
    except ValueError:
        raise KeyError(f"bad fixed-beta model name {name!r}: expected EMBSR-beta=<float>")
    switches = dict(VARIANT_SWITCHES["EMBSR"])
    switches["fusion"] = f"fixed:{beta}"
    return RegisteredModel(
        name,
        "embsr",
        NEURAL,
        param_fields=_EMBSR_FIELDS,
        fixed=switches,
        description=f"EMBSR with constant fusion weight beta={beta} (Fig. 6)",
    )


def _resolve_fixed_cl(name: str) -> RegisteredModel | None:
    """``EMBSR-SSL-cl=<x>``: the contrastive-weight ablation sweep."""
    if not name.startswith(FIXED_CL_PREFIX):
        return None
    from ..core import VARIANT_SWITCHES

    try:
        cl_weight = float(name[len(FIXED_CL_PREFIX):])
    except ValueError:
        raise KeyError(f"bad SSL-weight model name {name!r}: expected EMBSR-SSL-cl=<float>")
    return RegisteredModel(
        name,
        "embsr",
        NEURAL,
        param_fields=_EMBSR_FIELDS,
        fixed=dict(VARIANT_SWITCHES["EMBSR"]),
        train={"objective": "ssl", "cl_weight": cl_weight},
        description=f"EMBSR-SSL with contrastive weight {cl_weight}",
    )


_register_builtins()
