"""The model registry: one declarative construction path for every system.

Three registration surfaces compose the registry:

* **Families** (:meth:`ModelRegistry.register_family`) — an architecture
  family maps to a *pure* builder. Neural families register a
  ``module_builder(spec) -> Module``; non-parametric families register a
  ``recommender_builder(spec) -> Recommender``.
* **Models** (:meth:`ModelRegistry.register_model`) — a concrete name
  (``"EMBSR-NS"``) binds a family to the experiment-config fields it
  consumes (``param_fields``) plus frozen architecture switches
  (``fixed``).
* **Resolvers** (:meth:`ModelRegistry.register_resolver`) — parameterized
  name patterns (``"EMBSR-beta=<x>"``) resolve to synthesized entries.

Everything downstream — :class:`~repro.eval.experiment.ExperimentRunner`,
the CLI, the serving gateway, artifact loading — constructs models
exclusively through :func:`spec_for` + :func:`build`, so a
:class:`~repro.registry.spec.ModelSpec` written to disk today rebuilds the
same network in any process tomorrow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Optional

from .spec import ModelSpec

__all__ = [
    "RegisteredModel",
    "ModelRegistry",
    "REGISTRY",
    "register_family",
    "register_model",
    "register_resolver",
    "resolve",
    "spec_for",
    "build",
    "build_module",
    "model_names",
    "registered_models",
]

NEURAL = "neural"
NONPARAMETRIC = "nonparametric"


@dataclass(frozen=True)
class RegisteredModel:
    """Registry entry: how one concrete model name becomes a spec."""

    name: str
    family: str
    kind: str  # NEURAL | NONPARAMETRIC
    param_fields: tuple[str, ...] = ()
    fixed: Mapping[str, Any] = field(default_factory=dict)
    # Default portable training settings this model carries (e.g. EMBSR-SSL
    # pins {"objective": "ssl", "cl_weight": 0.1}); spec_for merges caller
    # overrides on top, so the same architecture may train under several
    # objectives without separate module builders.
    train: Mapping[str, Any] = field(default_factory=dict)
    description: str = ""


class ModelRegistry:
    """Name -> spec -> recommender, with no construction logic elsewhere."""

    def __init__(self):
        self._models: dict[str, RegisteredModel] = {}
        self._module_builders: dict[str, Callable[[ModelSpec], Any]] = {}
        self._recommender_builders: dict[str, Callable[[ModelSpec], Any]] = {}
        self._resolvers: list[Callable[[str], Optional[RegisteredModel]]] = []

    # ------------------------------------------------------------ register
    def register_family(
        self,
        family: str,
        *,
        module_builder: Callable[[ModelSpec], Any] | None = None,
        recommender_builder: Callable[[ModelSpec], Any] | None = None,
    ) -> None:
        if (module_builder is None) == (recommender_builder is None):
            raise ValueError(
                f"family {family!r} must register exactly one of "
                "module_builder (neural) or recommender_builder (non-parametric)"
            )
        if family in self._module_builders or family in self._recommender_builders:
            raise ValueError(f"family {family!r} is already registered")
        if module_builder is not None:
            self._module_builders[family] = module_builder
        else:
            self._recommender_builders[family] = recommender_builder

    def register_model(self, entry: RegisteredModel) -> None:
        if entry.name in self._models:
            raise ValueError(f"model {entry.name!r} is already registered")
        if entry.family not in self._module_builders.keys() | self._recommender_builders.keys():
            raise ValueError(f"model {entry.name!r} names unregistered family {entry.family!r}")
        self._models[entry.name] = entry

    def register_resolver(self, resolver: Callable[[str], Optional[RegisteredModel]]) -> None:
        """Add a pattern resolver for parameterized names (tried in order)."""
        self._resolvers.append(resolver)

    # ------------------------------------------------------------- resolve
    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except KeyError:
            return False
        return True

    def resolve(self, name: str) -> RegisteredModel:
        """The entry registered under ``name`` (exact, then pattern)."""
        entry = self._models.get(name)
        if entry is not None:
            return entry
        for resolver in self._resolvers:
            entry = resolver(name)
            if entry is not None:
                return entry
        raise KeyError(
            f"unknown model name: {name!r} (registered: "
            f"{', '.join(sorted(self._models))}; run `repro models` for details)"
        )

    def model_names(self) -> list[str]:
        """Every concretely registered name, in registration order."""
        return list(self._models)

    def registered_models(self) -> list[RegisteredModel]:
        return list(self._models.values())

    # ---------------------------------------------------------------- spec
    def spec_for(
        self,
        name: str,
        *,
        num_items: int,
        num_ops: int,
        dim: int = 32,
        dropout: float = 0.1,
        seed: int = 0,
        w_k: float = 12.0,
        dtype: str = "float64",
        train: Mapping[str, Any] | None = None,
        **extra_params: Any,
    ) -> ModelSpec:
        """Build the :class:`ModelSpec` for ``name`` sized to a dataset.

        The entry's ``param_fields`` select which of the shared knobs
        (``dim``/``dropout``/``seed``/``w_k``) the family consumes; its
        ``fixed`` switches are merged on top, then any ``extra_params``.
        """
        entry = self.resolve(name)
        knobs: dict[str, Any] = {"dim": dim, "dropout": dropout, "seed": seed, "w_k": w_k}
        params = {f: knobs[f] for f in entry.param_fields}
        params.update(entry.fixed)
        params.update(extra_params)
        return ModelSpec(
            name=name,
            family=entry.family,
            num_items=num_items,
            num_ops=num_ops,
            params=params,
            train={**entry.train, **(train or {})},
            dtype=dtype,
        )

    # --------------------------------------------------------------- build
    def build(self, spec: ModelSpec, train=None):
        """Construct the (unfitted) recommender described by ``spec``.

        ``train`` optionally supplies a full runtime
        :class:`~repro.eval.trainer.TrainConfig` (checkpoint paths,
        verbosity); when omitted, neural systems derive one from
        ``spec.train``.
        """
        if spec.family in self._recommender_builders:
            return self._recommender_builders[spec.family](spec)
        if spec.family in self._module_builders:
            # Imported lazily: repro.eval.trainer imports back into eval.
            from ..eval.trainer import NeuralRecommender

            return NeuralRecommender(spec, train)
        raise KeyError(f"spec names unregistered family: {spec.family!r}")

    def build_module(self, spec: ModelSpec):
        """Construct the bare :class:`~repro.nn.Module` for a neural spec."""
        builder = self._module_builders.get(spec.family)
        if builder is None:
            if spec.family in self._recommender_builders:
                raise KeyError(
                    f"{spec.name} ({spec.family}) is non-parametric: it has no "
                    "neural module — build the recommender with registry.build()"
                )
            raise KeyError(f"spec names unregistered family: {spec.family!r}")
        return builder(spec)


# The process-wide registry every construction site resolves against.
REGISTRY = ModelRegistry()


def register_family(family, **kwargs) -> None:
    """Register a family builder on the global :data:`REGISTRY`."""
    REGISTRY.register_family(family, **kwargs)


def register_model(entry: RegisteredModel) -> None:
    """Register a model entry on the global :data:`REGISTRY`."""
    REGISTRY.register_model(entry)


def register_resolver(resolver) -> None:
    """Register a name-pattern resolver on the global :data:`REGISTRY`."""
    REGISTRY.register_resolver(resolver)


def resolve(name: str) -> RegisteredModel:
    """Resolve ``name`` to its :class:`RegisteredModel` entry."""
    return REGISTRY.resolve(name)


def spec_for(name: str, **kwargs) -> ModelSpec:
    """Build the :class:`ModelSpec` for ``name`` with the given dimensions/knobs."""
    return REGISTRY.spec_for(name, **kwargs)


def build(spec: ModelSpec, train=None):
    """Construct an unfitted recommender from ``spec``."""
    return REGISTRY.build(spec, train)


def build_module(spec: ModelSpec):
    """Construct the bare :class:`~repro.nn.Module` for a neural ``spec``."""
    return REGISTRY.build_module(spec)


def model_names() -> list[str]:
    """Every registered model name, in registration order."""
    return REGISTRY.model_names()


def registered_models() -> list[RegisteredModel]:
    """Every :class:`RegisteredModel` entry, in registration order."""
    return REGISTRY.registered_models()
