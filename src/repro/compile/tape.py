"""The tape: a passive recording of one training step's op schedule.

While a :class:`Tape` is installed (see :func:`recording`), the autograd
ops in ``repro.autograd.tensor`` and the fused kernels in ``repro.perf``
run exactly as they do eagerly — the step being traced is a *real* step —
but additionally append a replay closure per graph node. Replaying the
slots in order recomputes the step's forward pass in place:

* non-view ops write into the ``out.data`` array captured at trace time
  (``out=`` ufunc forms), so every alias the backward closures captured
  stays valid;
* view ops (reshape/transpose/...) rebind ``out.data`` to a fresh view —
  their backwards only read ``out.grad``, never ``out.data``;
* *host slots* (interleaved via :func:`host_array` / :func:`leaf` /
  :func:`session_graph`) refresh the raw-NumPy inputs the graph reads —
  batch-derived index arrays, dropout masks, session graphs — by
  re-running their builder and copying the result into the traced buffer.

Replay is only sound if every batch-dependent array the step reads is
refreshed each replay. :meth:`Tape.finalize` enforces that structurally:
each non-output tensor created during the trace, and each raw array
operand an op captured (gather indices, masks, relation ids), must either
be a scalar or share memory with a *registered* buffer (the staged batch,
a session graph, or a helper-managed buffer). Anything else means some
model wired un-refreshed batch data into the graph — the tape rejects
itself and the engine stays eager for that shape key. Unported models are
therefore automatically safe: they fail the audit instead of replaying
stale data.
"""

from __future__ import annotations

import contextlib
from typing import Callable

import numpy as np

from ..autograd import tensor as _tensor
from ..autograd.tensor import Tensor

__all__ = [
    "Tape",
    "TapeShapeMiss",
    "recording",
    "host_array",
    "leaf",
    "static_array",
    "static_leaf",
    "session_graph",
]


class TapeShapeMiss(RuntimeError):
    """A replay found content-driven shapes differing from the trace."""


def _op_name(backward: Callable) -> str:
    """Op label from a backward closure, matching the profiler's scheme."""
    qualname = getattr(backward, "__qualname__", "op")
    parts = qualname.split(".")
    return parts[-3] if len(parts) >= 3 else qualname


class Tape:
    """One step's op schedule: forward replay slots + audit bookkeeping.

    Slots are ``(kind, name, fn)`` with ``kind`` in ``{"op", "host"}``;
    executing every ``fn`` in order reproduces the traced forward pass
    against whatever content the registered buffers currently hold.
    """

    def __init__(self) -> None:
        self.slots: list[tuple[str, str, Callable[[], None]]] = []
        self.node_count = 0          # graph nodes created during the trace
        self.recorded = 0            # nodes that supplied a replay closure
        self.graph_dims: list[int] = []  # max_nodes of each session graph built
        self._created: list[Tensor] = []
        self._op_ids: set[int] = set()
        self._registered: list[np.ndarray] = []
        self._operands: list[np.ndarray] = []
        self._reject: str | None = None

    # -- hooks called from repro.autograd.tensor -----------------------
    def _on_tensor(self, t: Tensor) -> None:
        self._created.append(t)

    def _on_node(self, out: Tensor) -> None:
        self.node_count += 1
        self._op_ids.add(id(out))

    def _record(self, out: Tensor, replay: Callable[[], None], operands=()) -> None:
        """Attach the replay closure for the op that produced ``out``."""
        self.recorded += 1
        self.slots.append(("op", _op_name(out._backward), replay))
        for operand in operands:
            self._collect_operand(operand)

    def _record_const(
        self, out: Tensor, name: str, replay: Callable[[], None], operands=()
    ) -> None:
        """Attach a replay closure for a grad-free derived tensor.

        Ops short-circuit to a plain leaf when their input carries no
        gradient (e.g. slicing the zeros ``htilde`` in the no-op-GRU
        variants). The value still depends on traced state, so it gets a
        refresh slot and an audit exemption — but it is not a graph node,
        so the recorded/node_count balance is untouched.
        """
        self._op_ids.add(id(out))
        self.slots.append(("op", name, replay))
        for operand in operands:
            self._collect_operand(operand)

    def _collect_operand(self, operand) -> None:
        # ints, slices, and None index static positions; only arrays can
        # carry batch-dependent content that must survive the audit.
        if isinstance(operand, np.ndarray):
            self._operands.append(operand)
        elif isinstance(operand, (tuple, list)):
            for item in operand:
                self._collect_operand(item)

    # -- helper-side API ------------------------------------------------
    def add_host(self, name: str, fn: Callable[[], None]) -> None:
        """Append a host slot that refreshes non-graph state each replay."""
        self.slots.append(("host", name, fn))

    def register(self, array) -> None:
        """Declare an array as refreshed-per-replay (or truly static)."""
        if isinstance(array, np.ndarray):
            self._registered.append(array)

    def reject(self, reason: str) -> None:
        if self._reject is None:
            self._reject = reason

    # -- audit ----------------------------------------------------------
    def _is_backed(self, array: np.ndarray) -> bool:
        for buf in self._registered:
            if np.may_share_memory(array, buf):
                try:
                    if np.shares_memory(array, buf):
                        return True
                except Exception:  # exact overlap check too hard: bounds say maybe
                    return True
        return False

    def finalize(self) -> str | None:
        """Audit the trace; returns a rejection reason or None when replayable."""
        if self._reject is not None:
            return self._reject
        if self.recorded != self.node_count:
            return (
                f"{self.node_count - self.recorded} graph node(s) have no "
                "replay closure"
            )
        for t in self._created:
            if id(t) in self._op_ids:
                continue  # op output: its replay closure refreshes it
            if t.data.size <= 1:
                continue  # scalar constants (scale factors etc.)
            if not self._is_backed(t.data):
                return (
                    f"leaf tensor of shape {t.data.shape} is not backed by a "
                    "registered buffer (wrap it with repro.compile.leaf)"
                )
        for arr in self._operands:
            if arr.size <= 1:
                continue
            if not self._is_backed(arr):
                return (
                    f"raw operand of shape {arr.shape} is not backed by a "
                    "registered buffer (route it through repro.compile.host_array)"
                )
        return None


@contextlib.contextmanager
def recording(tape: Tape):
    """Install ``tape`` as the active recorder for the enclosed step."""
    if _tensor._TAPE is not None:
        raise RuntimeError("a tape is already recording in this process")
    _tensor._set_tape(tape)
    try:
        yield tape
    finally:
        _tensor._set_tape(None)


# ----------------------------------------------------------------------
# Wrap helpers used at the model side
# ----------------------------------------------------------------------
#
# Eager (no tape): each helper is a zero-cost pass-through. Under a tape it
# allocates a persistent buffer, registers it, and appends a host slot that
# re-runs the builder into that buffer on every replay. ``fn`` must be a
# pure function of the batch content (and RNG streams it reads at call
# time), since replays call it against refreshed batch buffers.


def host_array(fn: Callable[[], np.ndarray]) -> np.ndarray:
    """A raw batch-derived array, refreshed in place on every replay."""
    tape = _tensor._TAPE
    if tape is None:
        return fn()
    buf = np.asarray(fn())
    tape.register(buf)
    tape.add_host("host_array", lambda: np.copyto(buf, fn(), casting="unsafe"))
    return buf


def leaf(fn: Callable[[], np.ndarray]) -> Tensor:
    """A batch-derived constant Tensor, refreshed in place on every replay.

    The host computation keeps its natural dtype; the cast to the ambient
    tensor dtype happens only at the Tensor boundary (``copyto`` performs
    the same rounding ``Tensor(...)`` does), so float32 runs stay bitwise
    equal to their eager counterparts.
    """
    tape = _tensor._TAPE
    if tape is None:
        return Tensor(fn())
    out = Tensor(np.asarray(fn()))
    buf = out.data
    tape.register(buf)
    tape.add_host("leaf", lambda: np.copyto(buf, fn(), casting="unsafe"))
    return out


def static_array(fn: Callable[[], np.ndarray]) -> np.ndarray:
    """A shape-only array (e.g. ``arange(B)``): computed once, never refreshed."""
    tape = _tensor._TAPE
    arr = np.asarray(fn())
    if tape is not None:
        tape.register(arr)
    return arr


def static_leaf(fn: Callable[[], np.ndarray]) -> Tensor:
    """A shape-only constant Tensor: computed once, never refreshed."""
    tape = _tensor._TAPE
    out = Tensor(fn())
    if tape is not None:
        tape.register(out.data)
    return out


def session_graph(batch, collapse: bool = False):
    """Build a :class:`~repro.graphs.batch_graph.BatchGraph` tape-safely.

    Under a tape the graph's arrays are registered, and a host slot
    rebuilds the graph from the (refreshed) batch buffers each replay and
    copies the fresh arrays into the originals. The distinct-node count
    ``c`` is content-driven, so the engine keys graph tapes by the exact
    ``c`` — a mismatching rebuild raises :class:`TapeShapeMiss` as a
    defensive backstop.
    """
    from ..graphs.batch_graph import BatchGraph

    tape = _tensor._TAPE
    graph = BatchGraph.from_batch(batch)
    if collapse:
        graph = graph.collapse_parallel_edges()
    if tape is None:
        return graph

    names = (
        "node_items", "node_mask", "alias", "gather",
        "scatter_in", "scatter_out", "micro_gather", "trans_mask",
    )
    for name in names:
        tape.register(getattr(graph, name))
    tape.graph_dims.append(graph.max_nodes)

    def slot() -> None:
        fresh = BatchGraph.from_batch(batch)
        if collapse:
            fresh = fresh.collapse_parallel_edges()
        if fresh.node_items.shape != graph.node_items.shape:
            raise TapeShapeMiss(
                f"session graph grew from {graph.node_items.shape} to "
                f"{fresh.node_items.shape} under one tape key"
            )
        for name in names:
            np.copyto(getattr(graph, name), getattr(fresh, name))

    tape.add_host("session_graph", slot)
    return graph
