"""Trace-and-replay compilation of the training step (``docs/performance.md``).

``repro.perf`` made the big ops cheap, but every eager step still rebuilds
the Python autograd graph node by node — at the paper's batch sizes that
graph construction is the dominant fixed cost. Since the step graph is
identical across batches at a fixed padded shape, :class:`CompileEngine`
records one step's op schedule on a :class:`~repro.compile.tape.Tape` and
replays it as a flat loop over preallocated buffers: zero per-step graph
construction, zero per-step Python closure allocation after warm-up.

The contract is *bit-identical training*: a compiled run produces exactly
the parameters an eager run produces (the first two steps per shape key run
eagerly — once to trace, once to cross-validate the replay bitwise — and
any surprise falls back to eager permanently for that key).

``repro.compile.quantize`` holds the reduced-precision inference side:
float16 / int8 storage-quantized scoring with exact float32 re-rank,
selected via ``repro serve --compute``.
"""

from .quantize import QuantizedScorer
from .step import CompileEngine, CompileStats
from .tape import (
    Tape,
    TapeShapeMiss,
    host_array,
    leaf,
    recording,
    session_graph,
    static_array,
    static_leaf,
)

__all__ = [
    "CompileEngine",
    "CompileStats",
    "QuantizedScorer",
    "Tape",
    "TapeShapeMiss",
    "host_array",
    "leaf",
    "recording",
    "session_graph",
    "static_array",
    "static_leaf",
]
