"""Compiled training step: trace once per shape key, then replay flat.

:class:`CompileEngine` owns the lifecycle of one model's tapes:

1. **Trace** — the first batch of a new shape key runs as a normal eager
   step with a :class:`~repro.compile.tape.Tape` recording. The results
   (loss + gradients) are the real step's results, so tracing wastes no
   work; if the audit rejects the trace the key simply stays eager.
2. **Validate** — the second batch of the key runs twice: once through
   the replay, then (after restoring the RNG streams the replay consumed
   and zeroing the gradients it wrote) eagerly. Loss and every parameter
   gradient must match *bitwise*; the eager results are kept either way,
   so the training trajectory is exactly the eager trajectory no matter
   the outcome. A mismatch permanently falls the key back to eager.
3. **Replay** — every later batch of a validated key copies its arrays
   into the staged buffers and runs the flat slot loop: no graph
   construction, no closure allocation. Replays are transactional — any
   exception restores the RNG state, zeroes gradients, reruns the batch
   eagerly, and retires the key.

Shape keys are ``(B, n, k, t, loss divisor, dtype, training)``; models
that build session graphs get the content-driven distinct-node count
``c`` appended (learned from the first trace), because every array shape
downstream of the graph depends on it.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..autograd import tensor as _tensor
from ..data.dataset import SessionBatch
from ..parallel.sharding import collect_rng_modules
from .tape import Tape, recording

__all__ = ["CompileEngine", "CompileStats", "StagedBatch", "session_node_count"]

_BATCH_FIELDS = (
    "items", "item_mask", "ops", "op_mask",
    "micro_items", "micro_ops", "micro_mask", "last_op", "targets",
)


def session_node_count(batch: SessionBatch) -> int:
    """The distinct-node count ``c`` that ``BatchGraph.from_batch`` would use.

    Mirrors its per-row scan (break at the first masked position) without
    building any arrays — cheap enough to run per batch as a cache key.
    """
    items, mask = batch.items, batch.item_mask
    n = items.shape[1]
    prefix = np.cumprod(mask != 0, axis=1).astype(bool)
    same = (items[:, :, None] == items[:, None, :]) & prefix[:, :, None] & prefix[:, None, :]
    is_new = (same.argmax(axis=2) == np.arange(n)) & prefix
    return max(1, int(is_new.sum(axis=1).max()))


class StagedBatch:
    """Persistent copies of a batch's arrays that a traced step reads from.

    The copies keep the collate dtypes (int64 ids, float64 masks), so a
    step traced against the staged batch is bitwise the step on the
    original batch at any tensor dtype. ``target_classes`` is materialized
    once (the :class:`SessionBatch` property allocates fresh) and
    refreshed alongside the rest.
    """

    def __init__(self, batch: SessionBatch) -> None:
        self.batch = SessionBatch(
            **{name: np.array(getattr(batch, name)) for name in _BATCH_FIELDS}
        )
        self.target_classes = self.batch.targets - 1

    def copy_from(self, batch: SessionBatch) -> None:
        for name in _BATCH_FIELDS:
            np.copyto(getattr(self.batch, name), getattr(batch, name))
        np.subtract(self.batch.targets, 1, out=self.target_classes)

    def register_into(self, tape: Tape) -> None:
        for name in _BATCH_FIELDS:
            tape.register(getattr(self.batch, name))
        tape.register(self.target_classes)


class _CompiledStep:
    """One validated (or pending) tape plus its replay state."""

    __slots__ = ("tape", "staged", "loss", "components", "order", "seed", "validated")

    def __init__(self, tape: Tape, staged: StagedBatch, loss, components=None) -> None:
        self.tape = tape
        self.staged = staged
        self.loss = loss
        self.components = dict(components or {})  # name -> live graph Tensor
        self.order = loss._topo_cache  # cached by backward(retain_graph=True)
        self.seed = np.ones_like(loss.data)
        self.validated = False


@dataclass
class CompileStats:
    """Counters for observability and the benchmark/tests."""

    traces: int = 0
    validations: int = 0
    replays: int = 0
    eager_steps: int = 0
    fallbacks: dict = field(default_factory=dict)  # base key -> reason


class CompileEngine:
    """Trace/validate/replay executor for one model's training steps.

    ``step`` is a drop-in for the eager forward/backward pair: gradients
    land on ``p.grad`` and the loss float is returned. The caller remains
    responsible for ``optimizer.zero_grad()`` / clipping / ``step()``,
    exactly as on the eager path.
    """

    def __init__(self, model, max_tapes: int = 8, objective=None) -> None:
        if objective is None:
            from ..objectives import CrossEntropyObjective  # lazy: avoids cycle

            objective = CrossEntropyObjective()
        self.model = model
        self.objective = objective
        self.last_components: dict[str, float] = {}
        self.max_tapes = max_tapes
        self.stats = CompileStats()
        self._tapes: OrderedDict[tuple, _CompiledStep] = OrderedDict()
        self._meta: dict[tuple, str] = {}  # base key -> "flat" | "graph"
        self._fallback: set[tuple] = set()
        self._rng_modules = collect_rng_modules(model)
        self._params = list(model.parameters())

    # -- keys ------------------------------------------------------------
    def _base_key(self, batch: SessionBatch, total: int | None) -> tuple:
        return (
            batch.items.shape[0],
            batch.items.shape[1],
            batch.ops.shape[2],
            batch.micro_items.shape[1],
            total,
            _tensor._DEFAULT_DTYPE.str,
            bool(self.model.training),
        )

    # -- public entry ----------------------------------------------------
    def step(self, batch: SessionBatch, total: int | None = None, ctx=None) -> float:
        """One forward/backward for ``batch``; grads on ``p.grad``.

        ``ctx`` (a :class:`~repro.objectives.StepContext`) is installed on
        the objective *before* dispatch so replay host slots — which
        rebuild objective randomness such as augmented views — read the
        current step's coordinates, not the traced step's.
        """
        self.objective.begin_step(ctx)
        base = self._base_key(batch, total)
        if base in self._fallback:
            self.stats.eager_steps += 1
            return self._eager(batch, total)
        full = base
        if self._meta.get(base) == "graph":
            full = base + (session_node_count(batch),)
        entry = self._tapes.get(full)
        if entry is None:
            return self._trace(base, batch, total)
        self._tapes.move_to_end(full)
        if not entry.validated:
            return self._validate(base, full, entry, batch, total)
        return self._replay(base, full, entry, batch, total)

    # -- phases ----------------------------------------------------------
    def _eager(self, batch: SessionBatch, total: int | None) -> float:
        parts = self.objective.compute(self.model, batch, total=total)
        value = float(parts.loss.item())
        parts.loss.backward()
        self.last_components = parts.component_values()
        return value

    def _trace(self, base: tuple, batch: SessionBatch, total: int | None) -> float:
        staged = StagedBatch(batch)
        tape = Tape()
        staged.register_into(tape)
        # The trace IS a real step: recording is passive, so loss and
        # gradients below are valid even if the audit rejects the tape.
        with recording(tape):
            parts = self.objective.compute(self.model, staged.batch, total=total)
            loss = parts.loss
            value = float(loss.item())
            loss.backward(retain_graph=True)
        self.last_components = parts.component_values()
        reason = tape.finalize()
        if reason is not None:
            self._retire(base, reason)
        else:
            full = base
            if tape.graph_dims:
                self._meta[base] = "graph"
                full = base + (max(tape.graph_dims),)
            else:
                self._meta[base] = "flat"
            self._tapes[full] = _CompiledStep(tape, staged, loss, parts.components)
            while len(self._tapes) > self.max_tapes:
                self._tapes.popitem(last=False)
        self.stats.traces += 1
        return value

    def _validate(
        self, base: tuple, full: tuple, entry: _CompiledStep,
        batch: SessionBatch, total: int | None,
    ) -> float:
        """Second hit: replay, then rerun eagerly and require bitwise equality.

        The eager rerun's results are what the caller gets, so a run's
        trajectory is the eager trajectory whether or not the tape passes.
        """
        snapshot = self._rng_snapshot()
        try:
            replay_value = self._run_tape(entry, batch)
            replay_grads = [
                None if p.grad is None else np.array(p.grad) for p in self._params
            ]
        except Exception as exc:  # noqa: BLE001 - any replay fault means eager
            self._restore_rng(snapshot)
            self._zero_grads()
            self._retire(base, f"replay raised during validation: {exc!r}")
            self.stats.eager_steps += 1
            return self._eager(batch, total)
        self._restore_rng(snapshot)
        self._zero_grads()
        value = self._eager(batch, total)
        identical = _bits_equal(np.float64(value), np.float64(replay_value))
        if identical:
            for p, g in zip(self._params, replay_grads):
                if (p.grad is None) != (g is None):
                    identical = False
                    break
                if g is not None and not _bits_equal(p.grad, g):
                    identical = False
                    break
        if identical:
            entry.validated = True
            self.stats.validations += 1
        else:
            self._retire(base, "replay disagreed with the eager step bitwise")
        return value

    def _replay(
        self, base: tuple, full: tuple, entry: _CompiledStep,
        batch: SessionBatch, total: int | None,
    ) -> float:
        snapshot = self._rng_snapshot()
        try:
            value = self._run_tape(entry, batch)
        except Exception as exc:  # noqa: BLE001 - transactional recovery
            self._restore_rng(snapshot)
            self._zero_grads()
            self._retire(base, f"replay raised: {exc!r}")
            self.stats.eager_steps += 1
            return self._eager(batch, total)
        self.last_components = {
            name: float(t.data) for name, t in entry.components.items()
        }
        self.stats.replays += 1
        return value

    # -- replay machinery ------------------------------------------------
    def _run_tape(self, entry: _CompiledStep, batch: SessionBatch) -> float:
        entry.staged.copy_from(batch)
        profiler = _tensor._PROFILER
        if profiler is None:
            for _, _, fn in entry.tape.slots:
                fn()
        else:
            run_slot = profiler._run_replay_slot
            for _, name, fn in entry.tape.slots:
                run_slot(name, fn)
        value = float(entry.loss.data)
        loss = entry.loss
        loss.grad = entry.seed
        loss._grad_owned = True
        if profiler is None:
            for node in reversed(entry.order):
                if node._backward is not None and node.grad is not None:
                    node._backward()
                    node.grad = None
                    node._grad_owned = False
        else:
            for node in reversed(entry.order):
                if node._backward is not None and node.grad is not None:
                    profiler._run_backward(node._backward)
                    node.grad = None
                    node._grad_owned = False
        return value

    def _rng_snapshot(self):
        return [(m.rng, m.rng.bit_generator.state) for m in self._rng_modules]

    @staticmethod
    def _restore_rng(snapshot) -> None:
        for rng, state in snapshot:
            rng.bit_generator.state = state

    def _zero_grads(self) -> None:
        for p in self._params:
            p.zero_grad()

    def _retire(self, base: tuple, reason: str) -> None:
        """Permanently fall this base key back to eager execution."""
        self._fallback.add(base)
        self.stats.fallbacks[base] = reason
        for key in [k for k in self._tapes if k[: len(base)] == base]:
            del self._tapes[key]


def _bits_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Bitwise array equality (NaNs with equal payloads compare equal)."""
    a, b = np.asarray(a), np.asarray(b)
    if a.shape != b.shape or a.dtype != b.dtype:
        return False
    flat_a = np.ascontiguousarray(a).reshape(-1).view(np.uint8)
    flat_b = np.ascontiguousarray(b).reshape(-1).view(np.uint8)
    return bool(np.array_equal(flat_a, flat_b))
