"""Reduced-precision inference scoring (``repro serve --compute ...``).

Serving's hot loop is ``queries @ item_matrix.T`` over the full catalogue.
The native path inherits the model's training dtype (float64 for the
paper's configs), which doubles the memory traffic of the one matmul that
scales with the catalogue. :class:`QuantizedScorer` snapshots the scoring
factorization's item matrix once and re-scores in reduced precision:

``float32``
    The item matrix and queries are cast to float32 and scored directly.
    This is the *exact float32 reference* the quantized modes re-rank
    against — roughly half the memory bandwidth of the float64 path.

``float16``
    The item matrix is *stored* as float16 (half the float32 footprint)
    and dequantized chunk-by-chunk into a preallocated float32 buffer for
    the matmul. NumPy's float16 GEMM is orders of magnitude slower than
    float32 (no hardware half support on the CPU path), so all arithmetic
    stays in float32; float16 is a storage/bandwidth format here.

``int8``
    Symmetric per-row quantization: ``q[i] = round(row / scale[i])`` with
    ``scale[i] = max(|row|) / 127`` — a quarter of the float32 footprint,
    dequantized chunk-wise like float16.

Both quantized modes finish with an **exact float32 re-rank**: the top
``rerank_top`` candidates per query (by approximate score) are re-scored
against the full-precision item matrix cast to float32, and the exact
scores are spliced back in. Ranking metrics at the serving cutoffs are
therefore governed by the exact scores as long as the true top-k lands in
the candidate set (asserted at recall@20 >= 0.999 in
``tests/compile/test_quantize.py``).

Quantization is per-*scorer*, not per-model: the model keeps its full
precision weights and training is untouched.
"""

from __future__ import annotations

import numpy as np

__all__ = ["QuantizedScorer", "COMPUTE_MODES"]

# "native" (no QuantizedScorer, model-dtype scoring) plus the reduced modes.
COMPUTE_MODES = ("native", "float32", "float16", "int8")


class QuantizedScorer:
    """Score sessions against a quantized snapshot of the item matrix.

    Parameters
    ----------
    factorization:
        A :class:`~repro.retrieval.factorize.ScoringFactorization`. Its
        item matrix is snapshotted at construction, so the scorer must be
        rebuilt if the model's weights change (serving hot-swaps build a
        fresh scorer per adopted artifact).
    compute:
        ``"float32"``, ``"float16"`` or ``"int8"``.
    rerank_top:
        Candidates per query re-scored exactly in float32 (quantized
        modes only). Must comfortably exceed the serving cutoff.
    chunk:
        Item rows dequantized per matmul block in the quantized modes.
    """

    def __init__(
        self,
        factorization,
        compute: str = "float32",
        rerank_top: int = 128,
        chunk: int = 8192,
    ) -> None:
        if compute not in ("float32", "float16", "int8"):
            raise ValueError(
                f"compute must be one of float32/float16/int8, got {compute!r}"
            )
        self.factorization = factorization
        self.compute = compute
        table = np.asarray(factorization.item_matrix(), dtype=np.float64)
        self.num_items, self.dim = table.shape
        self.rerank_top = min(int(rerank_top), self.num_items)
        self._chunk = min(int(chunk), self.num_items)
        # Exact float32 matrix: the scoring matrix for "float32" and the
        # re-rank reference for the quantized modes.
        self._exact32 = np.ascontiguousarray(table, dtype=np.float32)
        self._scale: np.ndarray | None = None
        if compute == "float32":
            self._store: np.ndarray = self._exact32
            self._dequant_buf: np.ndarray | None = None
        elif compute == "float16":
            self._store = table.astype(np.float16)
            self._dequant_buf = np.empty((self._chunk, self.dim), dtype=np.float32)
        else:  # int8, symmetric per row
            scale = np.abs(table).max(axis=1) / 127.0
            scale[scale == 0.0] = 1.0
            self._scale = scale.astype(np.float32)[:, None]
            self._store = np.clip(np.rint(table / scale[:, None]), -127, 127).astype(
                np.int8
            )
            self._dequant_buf = np.empty((self._chunk, self.dim), dtype=np.float32)
        # Contiguous matmul destination for one chunk: GEMM into a strided
        # view of the [B, N] output forces slow paths, so chunks land here
        # and are copied out (grown on demand to the live batch size).
        self._out_buf = np.empty((0, self._chunk), dtype=np.float32)

    # ------------------------------------------------------------------
    def storage_nbytes(self) -> int:
        """Bytes held by the scoring-matrix storage (excludes re-rank ref)."""
        n = self._store.nbytes
        if self._scale is not None:
            n += self._scale.nbytes
        return n

    def describe(self) -> dict:
        return {
            "compute": self.compute,
            "num_items": self.num_items,
            "dim": self.dim,
            "rerank_top": self.rerank_top,
            "storage_nbytes": self.storage_nbytes(),
        }

    # ------------------------------------------------------------------
    def scores(self, queries: np.ndarray) -> np.ndarray:
        """``[B, num_items]`` float32 scores for ``[B, d]`` query vectors."""
        q = np.ascontiguousarray(queries, dtype=np.float32)
        out = self._approx_scores(q)
        if self.compute != "float32":
            self._rerank(q, out)
        return out

    def score_batch(self, batch) -> np.ndarray:
        """Score one collated batch (column ``c`` = item class ``c``)."""
        return self.scores(self.factorization.query_matrix(batch))

    def top_k(self, queries: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
        """Top-``k`` item indices and exact-float32 scores, best first.

        The serving hot path is score-then-select; fusing them lets the
        quantized modes skip the full-matrix selection entirely — the
        ``rerank_top`` candidates picked from the approximate scores double
        as the selection pool, so only ``[B, rerank_top]`` exact scores are
        sorted. Tie order matches :func:`~repro.eval.topk.top_k_indices`
        (equal scores in ascending index order) whenever the tied items all
        land in the candidate set.
        """
        from ..eval.topk import top_k_indices

        q = np.ascontiguousarray(queries, dtype=np.float32)
        k = min(int(k), self.num_items)
        if self.compute == "float32" or k > self.rerank_top:
            out = self.scores(q)
            idx = top_k_indices(out, k)
            return idx, np.take_along_axis(out, idx, axis=1)
        out = self._approx_scores(q)
        top = self._top_candidates(out)
        top.sort(axis=1)  # ascending index => stable tie order below
        exact = np.matmul(self._exact32[top], q[:, :, None])[:, :, 0]
        order = np.argsort(-exact, axis=1, kind="stable")[:, :k]
        return (
            np.take_along_axis(top, order, axis=1),
            np.take_along_axis(exact, order, axis=1).astype(np.float32, copy=False),
        )

    # ------------------------------------------------------------------
    def _approx_scores(self, q: np.ndarray) -> np.ndarray:
        """Chunked ``[B, num_items]`` matmul against the stored matrix."""
        out = np.empty((q.shape[0], self.num_items), dtype=np.float32)
        if self.compute == "float32":
            np.matmul(q, self._store.T, out=out)
            return out
        buf = self._dequant_buf
        if self._out_buf.shape[0] < q.shape[0]:
            self._out_buf = np.empty((q.shape[0], self._chunk), dtype=np.float32)
        for lo in range(0, self.num_items, self._chunk):
            hi = min(lo + self._chunk, self.num_items)
            block = buf[: hi - lo]
            if self.compute == "float16":
                np.copyto(block, self._store[lo:hi], casting="unsafe")
            else:
                np.copyto(block, self._store[lo:hi], casting="unsafe")
                np.multiply(block, self._scale[lo:hi], out=block)
            chunk_out = self._out_buf[: q.shape[0], : hi - lo]
            np.matmul(q, block.T, out=chunk_out)
            out[:, lo:hi] = chunk_out
        return out

    def _top_candidates(self, out: np.ndarray) -> np.ndarray:
        """``[B, rerank_top]`` candidate indices by approximate score.

        Row-at-a-time ``argpartition`` over a contiguous 1-D slice is
        measurably faster here than the axis-1 call on the whole matrix
        (which partitions through a strided layout).
        """
        m = self.rerank_top
        top = np.empty((out.shape[0], m), dtype=np.int64)
        split = self.num_items - m
        for row in range(out.shape[0]):
            top[row] = np.argpartition(out[row], split)[split:]
        return top

    def _rerank(self, q: np.ndarray, out: np.ndarray) -> None:
        """Splice exact float32 scores over each query's top candidates."""
        m = self.rerank_top
        if m >= self.num_items:
            np.matmul(q, self._exact32.T, out=out)
            return
        top = self._top_candidates(out)
        cand = self._exact32[top]  # [B, m, d]
        exact = np.matmul(cand, q[:, :, None])[:, :, 0]
        np.put_along_axis(out, top, exact, axis=1)
