"""Shared building blocks for the GNN-based baselines.

``SessionGGNN`` is the gated graph neural network of SR-GNN (Wu et al.,
2019): a *simple* directed session graph with degree-normalized in/out
adjacency — unlike EMBSR's multigraph, parallel transitions collapse and no
edge features exist. ``SoftAttentionReadout`` is the standard session
readout used by SR-GNN, GC-SAN, SGNN-HN, and MKM-SR.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..compile.tape import host_array, leaf, static_array
from ..graphs import BatchGraph
from ..nn import Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter

__all__ = ["SessionGGNN", "SoftAttentionReadout", "normalized_adjacency"]


def normalized_adjacency(graph: BatchGraph) -> tuple[np.ndarray, np.ndarray]:
    """Degree-normalized in/out adjacency matrices [B, c, c] (SR-GNN's A).

    ``A_out[b, i, j]`` is the normalized weight of edge ``i -> j``.
    """
    B, c, n_trans = graph.scatter_in.shape
    # scatter_out[b, i, p] = 1 iff transition p leaves node i;
    # scatter_in[b, j, p] = 1 iff transition p enters node j.
    counts = np.einsum("bip,bjp->bij", graph.scatter_out, graph.scatter_in)
    out_deg = counts.sum(axis=2, keepdims=True)
    in_deg = counts.sum(axis=1, keepdims=True)
    a_out = counts / np.maximum(out_deg, 1.0)
    a_in = np.transpose(counts, (0, 2, 1)) / np.maximum(np.transpose(in_deg, (0, 2, 1)), 1.0)
    return a_in, a_out


class SessionGGNN(Module):
    """Gated GNN over the simple session graph (SR-GNN Eqs. 1-5)."""

    def __init__(self, dim: int, num_layers: int = 1, *, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.num_layers = num_layers
        self.w_in = Linear(dim, dim, rng=rng)
        self.w_out = Linear(dim, dim, rng=rng)
        self.w_z = Linear(2 * dim, dim, bias=False, rng=rng)
        self.w_r = Linear(2 * dim, dim, bias=False, rng=rng)
        self.w_h = Linear(2 * dim, dim, bias=False, rng=rng)
        self.u_z = Linear(dim, dim, bias=False, rng=rng)
        self.u_r = Linear(dim, dim, bias=False, rng=rng)
        self.u_h = Linear(dim, dim, bias=False, rng=rng)

    def forward(self, nodes: Tensor, graph: BatchGraph) -> Tensor:
        # One [2, B, c, c] buffer so the adjacency is built once per step
        # (and once per compiled replay) rather than once per matrix.
        adj = host_array(lambda: np.stack(normalized_adjacency(graph)))
        a_in, a_out = leaf(lambda: adj[0]), leaf(lambda: adj[1])
        mask = leaf(lambda: graph.node_mask[..., None])
        h = nodes * mask
        for _ in range(self.num_layers):
            agg = concat([a_in @ self.w_in(h), a_out @ self.w_out(h)], axis=2)
            z = (self.w_z(agg) + self.u_z(h)).sigmoid()
            r = (self.w_r(agg) + self.u_r(h)).sigmoid()
            candidate = (self.w_h(agg) + self.u_h(r * h)).tanh()
            h = ((1.0 - z) * h + z * candidate) * mask
        return h


class SoftAttentionReadout(Module):
    """SR-GNN-style session readout.

    ``alpha_i = q^T sigmoid(W1 v_last + W2 v_i + c)``;
    ``s_global = sum_i alpha_i v_i``; returns ``W3 [s_global ; v_last]``
    (set ``concat_last=False`` to return just the attention pool).
    """

    def __init__(self, dim: int, concat_last: bool = True, *, rng: np.random.Generator):
        super().__init__()
        self.w1 = Linear(dim, dim, rng=rng)
        self.w2 = Linear(dim, dim, bias=False, rng=rng)
        self.q = Parameter(scaled_uniform(rng, (dim,), dim))
        self.concat_last = concat_last
        self.w3 = Linear(2 * dim, dim, bias=False, rng=rng) if concat_last else None

    def forward(self, seq: Tensor, last: Tensor, mask: np.ndarray) -> Tensor:
        """``seq`` [B, n, d], ``last`` [B, d], ``mask`` [B, n] -> [B, d]."""
        energy = (self.w1(last).unsqueeze(1) + self.w2(seq)).sigmoid() @ self.q  # [B, n]
        weights = energy * leaf(lambda: mask)
        pooled = (weights.unsqueeze(2) * seq).sum(axis=1)
        if not self.concat_last:
            return pooled
        return self.w3(concat([pooled, last], axis=1))


def last_position_rep(seq: Tensor, mask: np.ndarray) -> Tensor:
    """Gather each session's representation at its final valid position."""
    index = host_array(lambda: np.maximum(mask.sum(axis=1).astype(np.int64) - 1, 0))
    batch = static_array(lambda: np.arange(seq.shape[0]))
    return seq[batch, index, :]
