"""MKM-SR (Meng et al., 2020), knowledge-free variant.

Items go through a gated GNN over the session graph; the flat operation
sequence goes through a GRU; the session representation concatenates the
GNN soft-attention readout with the operation-GRU state. This is exactly
the variant the paper compares against (the knowledge-graph auxiliary task
is dropped there too, Sec. V-A2).

The model's documented limitation — ops and items are encoded *separately*
and only fused at the end — is what EMBSR's multigraph propagation fixes.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..data.dataset import SessionBatch
from ..graphs import BatchGraph
from ..nn import GRU, Dropout, Embedding, Linear, Module
from .common import SessionGGNN, SoftAttentionReadout, last_position_rep

__all__ = ["MKMSR"]


class MKMSR(Module):
    """Micro-behavior baseline: GGNN for items + GRU for operations."""

    def __init__(self, num_items: int, num_ops: int, dim: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.op_embedding = Embedding(num_ops + 1, dim, rng=rng, padding_idx=0)
        self.ggnn = SessionGGNN(dim, rng=rng)
        self.op_gru = GRU(dim, dim, rng=rng)
        self.readout = SoftAttentionReadout(dim, concat_last=True, rng=rng)
        self.combine = Linear(2 * dim, dim, bias=False, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        graph = graph or BatchGraph.from_batch(batch)
        nodes = self.dropout(self.item_embedding(graph.node_items))
        h = self.ggnn(nodes, graph)
        seq = Tensor(graph.gather) @ h
        last = last_position_rep(seq, batch.item_mask)
        item_rep = self.readout(seq, last, batch.item_mask)

        ops = self.dropout(self.op_embedding(batch.micro_ops))
        _, op_rep = self.op_gru(ops, mask=batch.micro_mask)

        return self.combine(concat([item_rep, op_rep], axis=1))

    def operation_logits(self, batch: SessionBatch) -> Tensor:
        """[B*T, num_ops] next-operation scores from the operation GRU.

        Row ``b * T + t`` scores the operation at micro position ``t + 1``
        of session ``b`` from the GRU state after position ``t``, against
        the tied (transposed) operation embedding table. Feeds the
        ``op-aux`` objective (MKM-SR's original auxiliary task).
        """
        ops = self.dropout(self.op_embedding(batch.micro_ops))
        states, _ = self.op_gru(ops, mask=batch.micro_mask)
        batch_size, steps, dim = states.shape
        flat = states.reshape(batch_size * steps, dim)
        return flat @ self.op_embedding.weight[1:].T

    def forward(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        session = self.encode_sessions(batch, graph)
        return session @ self.item_embedding.weight[1:].T
