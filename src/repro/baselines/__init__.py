"""All eleven baselines from the paper's Table III.

Macro-behavior models (item sequence only): S-POP, SKNN, NARM, STAMP,
SR-GNN, GC-SAN, BERT4Rec, SGNN-HN. Micro-behavior models (items +
operations): RIB, HUP, MKM-SR.
"""

from .bert4rec import BERT4Rec
from .common import SessionGGNN, SoftAttentionReadout, last_position_rep
from .gcsan import GCSAN
from .hup import HUP
from .mkm_sr import MKMSR
from .narm import NARM
from .rib import RIB
from .sgnn_hn import SGNNHN
from .sknn import SKNN
from .spop import SPop
from .srgnn import SRGNN
from .stamp import STAMP

__all__ = [
    "SPop",
    "SKNN",
    "NARM",
    "STAMP",
    "SRGNN",
    "GCSAN",
    "BERT4Rec",
    "SGNNHN",
    "RIB",
    "HUP",
    "MKMSR",
    "SessionGGNN",
    "SoftAttentionReadout",
    "last_position_rep",
]
