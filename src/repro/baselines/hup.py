"""HUP: Hierarchical User Profiling (Gu et al., 2020), session-level variant.

A two-level "behavior pyramid": a micro-level GRU encodes each macro item's
operation sequence; its summary is fused with the item embedding and fed to
an item-level GRU. Attention over item-level states (query = last state)
produces the session representation. (The original paper also models
dwell time and long-term profiles, which do not exist in the session-only
setting — the paper we reproduce uses it as a session baseline in the same
way.)
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..data.dataset import SessionBatch
from ..nn import GRU, Dropout, Embedding, Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter

__all__ = ["HUP"]


class HUP(Module):
    """Micro-behavior baseline: hierarchical GRUs (operation -> item)."""

    def __init__(self, num_items: int, num_ops: int, dim: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.op_embedding = Embedding(num_ops + 1, dim, rng=rng, padding_idx=0)
        self.micro_gru = GRU(dim, dim, rng=rng)
        self.fuse = Linear(2 * dim, dim, rng=rng)
        self.item_gru = GRU(dim, dim, rng=rng)
        self.a1 = Linear(dim, dim, bias=False, rng=rng)
        self.a2 = Linear(dim, dim, bias=False, rng=rng)
        self.v = Parameter(scaled_uniform(rng, (dim,), dim))
        self.dropout = Dropout(dropout, rng=rng)
        self.dim = dim
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        B, n, k = batch.ops.shape
        # Micro level: encode each macro step's operation sequence.
        ops = self.op_embedding(batch.ops.reshape(B * n, k))
        _, op_summary = self.micro_gru(ops, mask=batch.op_mask.reshape(B * n, k))
        op_summary = op_summary.reshape(B, n, self.dim)

        items = self.dropout(self.item_embedding(batch.items))
        fused = self.fuse(concat([items, op_summary], axis=2)).tanh()

        # Item level: GRU + attention readout.
        outputs, h_t = self.item_gru(fused, mask=batch.item_mask)
        energy = (self.a1(h_t).unsqueeze(1) + self.a2(outputs)).sigmoid() @ self.v
        alpha = energy * Tensor(batch.item_mask)
        pooled = (alpha.unsqueeze(2) * outputs).sum(axis=1)
        return pooled + h_t

    def forward(self, batch: SessionBatch) -> Tensor:
        session = self.encode_sessions(batch)
        return session @ self.item_embedding.weight[1:].T
