"""SR-GNN (Wu et al., 2019): gated GNN over the simple session graph.

Node states from the GGNN are read out with soft attention against the last
item and decoded by dot product with item embeddings.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..compile.tape import leaf, session_graph
from ..data.dataset import SessionBatch
from ..graphs import BatchGraph
from ..nn import Dropout, Embedding, Module
from .common import SessionGGNN, SoftAttentionReadout, last_position_rep

__all__ = ["SRGNN"]


class SRGNN(Module):
    """Macro-behavior baseline: the first GNN model for SR."""

    def __init__(self, num_items: int, dim: int = 32, num_layers: int = 1, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.ggnn = SessionGGNN(dim, num_layers=num_layers, rng=rng)
        self.readout = SoftAttentionReadout(dim, concat_last=True, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        graph = graph or session_graph(batch)
        nodes = self.dropout(self.item_embedding(graph.node_items))
        h = self.ggnn(nodes, graph)
        seq = leaf(lambda: graph.gather) @ h  # node states at macro positions
        last = last_position_rep(seq, batch.item_mask)
        return self.readout(seq, last, batch.item_mask)

    def forward(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        session = self.encode_sessions(batch, graph)
        return session @ self.item_embedding.weight[1:].T
