"""SGNN-HN (Pan et al., 2020): star graph neural network + highway network.

The strongest macro-behavior baseline in the paper. Reuses EMBSR's
:class:`StarMultigraphGNN` with the micro-operation input zeroed (which
recovers plain SGNN propagation), a soft-attention readout with the star
state, and NISER-style normalized scoring.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..core.fusion import ScorePredictor
from ..core.gnn import StarMultigraphGNN
from ..data.dataset import SessionBatch
from ..graphs import BatchGraph
from ..nn import Dropout, Embedding, Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter
from .common import last_position_rep

__all__ = ["SGNNHN"]


class SGNNHN(Module):
    """Macro-behavior baseline: star GNN with highway networks."""

    def __init__(
        self,
        num_items: int,
        dim: int = 32,
        num_layers: int = 1,
        w_k: float = 12.0,
        dropout: float = 0.1,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.gnn = StarMultigraphGNN(dim, num_layers=num_layers, rng=rng)
        self.w1 = Linear(dim, dim, rng=rng)
        self.w2 = Linear(dim, dim, bias=False, rng=rng)
        self.w3 = Linear(dim, dim, bias=False, rng=rng)
        self.q = Parameter(scaled_uniform(rng, (dim,), dim))
        self.w4 = Linear(2 * dim, dim, bias=False, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.predictor = ScorePredictor(w_k=w_k)
        self.dim = dim
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        graph = graph or BatchGraph.from_batch(batch)
        nodes0 = self.dropout(self.item_embedding(graph.node_items))
        mask = Tensor(graph.node_mask[..., None])
        counts = Tensor(np.maximum(graph.node_mask.sum(axis=1, keepdims=True), 1.0))
        star0 = (nodes0 * mask).sum(axis=1) / counts
        zeros = Tensor(np.zeros((batch.batch_size, batch.max_macro_len, self.dim)))
        h_f, star = self.gnn(nodes0, star0, zeros, graph)

        seq = Tensor(graph.gather) @ h_f
        last = last_position_rep(seq, batch.item_mask)
        energy = (
            self.w1(last).unsqueeze(1) + self.w2(seq) + self.w3(star).unsqueeze(1)
        ).sigmoid() @ self.q
        alpha = energy * Tensor(batch.item_mask)
        pooled = (alpha.unsqueeze(2) * seq).sum(axis=1)
        return self.w4(concat([pooled, last], axis=1))

    def forward(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        session = self.encode_sessions(batch, graph)
        return self.predictor(session, self.item_embedding.weight)
