"""S-POP: session popularity baseline (Hidasi et al., 2016 variant).

Recommends the most frequent items of the *current* session, breaking ties
(and filling the tail) with global training popularity. The paper highlights
that S-POP scores exactly zero on trivago because the ground truth there is
(almost) never part of the session — our trivago-like generator reproduces
this.
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from ..data.dataset import SessionBatch
from ..data.preprocess import PreparedDataset
from ..eval.recommender import Recommender

__all__ = ["SPop"]


class SPop(Recommender):
    """Session popularity, optionally backfilled with global popularity.

    With ``popularity_fallback=False`` (the default, matching the paper's
    observed behaviour) items outside the session all score zero, so the
    pessimistic rank of any unseen ground truth falls beyond K and S-POP
    scores exactly 0 on exploration-only data such as trivago.
    """

    name = "S-POP"

    def __init__(self, popularity_fallback: bool = False):
        self.popularity_fallback = popularity_fallback
        self.num_items = 0
        self._global_pop: np.ndarray | None = None

    def fit(self, dataset: PreparedDataset) -> "SPop":
        self.num_items = dataset.num_items
        counts = Counter()
        for example in dataset.train:
            counts.update(example.macro_items)
            counts[example.target] += 1
        pop = np.zeros(self.num_items)
        for item, n in counts.items():
            pop[item - 1] = n
        # Squash to (0, 1) so global popularity only ever breaks ties between
        # items with equal in-session frequency.
        self._global_pop = pop / (pop.max() + 1.0)
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        if self._global_pop is None:
            raise RuntimeError("S-POP must be fitted before scoring")
        if self.popularity_fallback:
            scores = np.tile(self._global_pop, (batch.batch_size, 1))
        else:
            scores = np.zeros((batch.batch_size, self.num_items))
        for b in range(batch.batch_size):
            items = batch.items[b][batch.item_mask[b] > 0]
            values, counts = np.unique(items, return_counts=True)
            scores[b, values - 1] += counts
        return scores
