"""GC-SAN (Xu et al., 2019): graph-contextualized self-attention.

A GGNN produces local node states; stacked self-attention blocks capture
global dependencies; the session embedding interpolates the last position's
attention output with its GGNN state (weight ``omega``).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data.dataset import SessionBatch
from ..graphs import BatchGraph
from ..nn import Dropout, Embedding, Module, ModuleList, TransformerBlock
from .common import SessionGGNN, last_position_rep

__all__ = ["GCSAN"]


class GCSAN(Module):
    """Macro-behavior baseline: GGNN + self-attention stack."""

    def __init__(
        self,
        num_items: int,
        dim: int = 32,
        num_blocks: int = 1,
        num_heads: int = 2,
        omega: float = 0.5,
        dropout: float = 0.1,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.ggnn = SessionGGNN(dim, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, dropout, rng=rng) for _ in range(num_blocks)]
        )
        self.omega = omega
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        graph = graph or BatchGraph.from_batch(batch)
        nodes = self.dropout(self.item_embedding(graph.node_items))
        h = self.ggnn(nodes, graph)
        seq = Tensor(graph.gather) @ h
        attended = seq
        for block in self.blocks:
            attended = block(attended, mask=batch.item_mask)
        e_last = last_position_rep(attended, batch.item_mask)
        h_last = last_position_rep(seq, batch.item_mask)
        return e_last * self.omega + h_last * (1.0 - self.omega)

    def forward(self, batch: SessionBatch, graph: BatchGraph | None = None) -> Tensor:
        session = self.encode_sessions(batch, graph)
        return session @ self.item_embedding.weight[1:].T
