"""STAMP: Short-Term Attention/Memory Priority model (Liu et al., 2018).

Attention over item embeddings conditioned on both the last click and the
session mean; two MLP "cells" produce the general-interest and
current-interest vectors whose element-wise product scores candidates via
a trilinear composition.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data.dataset import SessionBatch
from ..nn import Dropout, Embedding, Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter
from .common import last_position_rep

__all__ = ["STAMP"]


class STAMP(Module):
    """Macro-behavior baseline: attention with last-click priority."""

    def __init__(self, num_items: int, dim: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.w1 = Linear(dim, dim, bias=False, rng=rng)
        self.w2 = Linear(dim, dim, bias=False, rng=rng)
        self.w3 = Linear(dim, dim, bias=False, rng=rng)
        self.b_a = Parameter(np.zeros(dim))
        self.w0 = Parameter(scaled_uniform(rng, (dim,), dim))
        self.mlp_s = Linear(dim, dim, rng=rng)
        self.mlp_t = Linear(dim, dim, rng=rng)
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        x = self.dropout(self.item_embedding(batch.items))  # [B, n, d]
        mask = Tensor(batch.item_mask[..., None])
        counts = Tensor(np.maximum(batch.item_mask.sum(axis=1, keepdims=True), 1.0))
        m_s = (x * mask).sum(axis=1) / counts  # session mean memory
        x_t = last_position_rep(x, batch.item_mask)  # last click

        energy = (
            self.w1(x) + self.w2(x_t).unsqueeze(1) + self.w3(m_s).unsqueeze(1) + self.b_a
        ).sigmoid() @ self.w0  # [B, n]
        alpha = energy * Tensor(batch.item_mask)
        m_a = (alpha.unsqueeze(2) * x).sum(axis=1)

        h_s = self.mlp_s(m_a).tanh()
        h_t = self.mlp_t(x_t).tanh()
        return h_s * h_t  # trilinear composition

    def forward(self, batch: SessionBatch) -> Tensor:
        session = self.encode_sessions(batch)
        return session @ self.item_embedding.weight[1:].T
