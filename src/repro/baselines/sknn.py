"""SKNN: session-based k-nearest neighbours (Jannach & Ludewig, 2017).

Each session is a binary vector over items; the score of a candidate item
is the summed cosine similarity of the ``k`` most similar training sessions
that contain it. Implemented with a sparse inverted index (scipy) so the
whole training corpus can serve as the neighbour pool.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..data.dataset import SessionBatch
from ..data.preprocess import PreparedDataset
from ..eval.recommender import Recommender

__all__ = ["SKNN"]


class SKNN(Recommender):
    """Cosine session-KNN over binary item incidence vectors."""

    name = "SKNN"

    def __init__(self, k: int = 100, sample_size: int | None = 1000):
        self.k = k
        self.sample_size = sample_size
        self.num_items = 0
        self._matrix: sparse.csr_matrix | None = None  # [num_sessions, num_items]
        self._norms: np.ndarray | None = None

    def fit(self, dataset: PreparedDataset) -> "SKNN":
        self.num_items = dataset.num_items
        sessions = dataset.train
        if self.sample_size is not None and len(sessions) > self.sample_size:
            # Most-recent subsample, as in the reference implementation.
            sessions = sessions[-self.sample_size :]
        rows, cols = [], []
        for r, example in enumerate(sessions):
            for item in set(example.macro_items) | {example.target}:
                rows.append(r)
                cols.append(item - 1)
        data = np.ones(len(rows))
        self._matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(sessions), self.num_items)
        )
        self._norms = np.sqrt(self._matrix.multiply(self._matrix).sum(axis=1)).A.ravel()
        return self

    def score_batch(self, batch: SessionBatch) -> np.ndarray:
        if self._matrix is None or self._norms is None:
            raise RuntimeError("SKNN must be fitted before scoring")
        scores = np.zeros((batch.batch_size, self.num_items))
        for b in range(batch.batch_size):
            items = np.unique(batch.items[b][batch.item_mask[b] > 0])
            query = np.zeros(self.num_items)
            query[items - 1] = 1.0
            sims = self._matrix.dot(query)
            denom = self._norms * np.sqrt(len(items))
            with np.errstate(divide="ignore", invalid="ignore"):
                sims = np.where(denom > 0, sims / denom, 0.0)
            if self.k < len(sims):
                top = np.argpartition(-sims, self.k)[: self.k]
            else:
                top = np.arange(len(sims))
            neighbours = self._matrix[top]
            weights = sims[top]
            scores[b] = neighbours.T.dot(weights)
        return scores
