"""BERT4Rec (Sun et al., 2019), next-item inference form.

A bidirectional transformer over item + position embeddings. For the SR
task we append a [MASK] token after the session and predict the item at
that position — the same inference procedure the original uses, trained
here directly on the next-item objective (the paper's evaluation protocol
also trains all baselines on last-item prediction for fairness).
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..data.dataset import SessionBatch
from ..nn import Dropout, Embedding, LayerNorm, Module, ModuleList, TransformerBlock

__all__ = ["BERT4Rec"]


class BERT4Rec(Module):
    """Macro-behavior baseline: bidirectional self-attention."""

    def __init__(
        self,
        num_items: int,
        dim: int = 32,
        num_blocks: int = 2,
        num_heads: int = 2,
        max_len: int = 64,
        dropout: float = 0.1,
        seed: int = 0,
    ):
        super().__init__()
        rng = np.random.default_rng(seed)
        # Item table has an extra row at the end for the [MASK] token.
        self.item_embedding = Embedding(num_items + 2, dim, rng=rng, padding_idx=0)
        self.positions = Embedding(max_len, dim, rng=rng)
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, dropout, rng=rng) for _ in range(num_blocks)]
        )
        self.norm = LayerNorm(dim)
        self.dropout = Dropout(dropout, rng=rng)
        self.mask_id = num_items + 1
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        B, n = batch.items.shape
        lengths = batch.macro_lengths()
        # Insert the [MASK] token right after each session's last item.
        items = np.concatenate([batch.items, np.zeros((B, 1), dtype=np.int64)], axis=1)
        mask = np.concatenate([batch.item_mask, np.zeros((B, 1))], axis=1)
        items[np.arange(B), lengths] = self.mask_id
        mask[np.arange(B), lengths] = 1.0

        x = self.item_embedding(items) + self.positions(
            np.broadcast_to(np.arange(n + 1), (B, n + 1))
        )
        x = self.dropout(self.norm(x))
        for block in self.blocks:
            x = block(x, mask=mask)
        return x[np.arange(B), lengths, :]  # output at the [MASK] slot

    def forward(self, batch: SessionBatch) -> Tensor:
        session = self.encode_sessions(batch)
        return session @ self.item_embedding.weight[1 : self.num_items + 1].T
