"""NARM: Neural Attentive Recommendation Machine (Li et al., 2017).

A GRU encoder over the macro-item sequence with two readouts: the final
hidden state (global encoder) and an attention-pooled state (local encoder,
query = last hidden). Their concatenation is decoded with a bilinear map
against item embeddings.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor, concat
from ..compile.tape import leaf
from ..data.dataset import SessionBatch
from ..nn import GRU, Dropout, Embedding, Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter
from .common import last_position_rep

__all__ = ["NARM"]


class NARM(Module):
    """Macro-behavior baseline: RNN + attention, bilinear decoder."""

    def __init__(self, num_items: int, dim: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.gru = GRU(dim, dim, rng=rng)
        self.a1 = Linear(dim, dim, bias=False, rng=rng)
        self.a2 = Linear(dim, dim, bias=False, rng=rng)
        self.v = Parameter(scaled_uniform(rng, (dim,), dim))
        self.b = Linear(2 * dim, dim, bias=False, rng=rng)  # bilinear decoder
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        x = self.dropout(self.item_embedding(batch.items))
        outputs, h_t = self.gru(x, mask=batch.item_mask)
        # Local encoder: attention over hidden states with h_t as query.
        energy = (self.a1(h_t).unsqueeze(1) + self.a2(outputs)).sigmoid() @ self.v
        alpha = energy * leaf(lambda: batch.item_mask)
        c_local = (alpha.unsqueeze(2) * outputs).sum(axis=1)
        c = self.dropout(concat([h_t, c_local], axis=1))
        return self.b(c)

    def forward(self, batch: SessionBatch) -> Tensor:
        session = self.encode_sessions(batch)
        return session @ self.item_embedding.weight[1:].T
