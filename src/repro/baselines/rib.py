"""RIB (Zhou et al., 2018): the first micro-behavior SR model.

Embeds each micro-behavior as item-embedding + operation-embedding, runs a
GRU over the flat micro sequence, and pools the hidden states with a simple
attention layer.
"""

from __future__ import annotations

import numpy as np

from ..autograd import Tensor
from ..data.dataset import SessionBatch
from ..nn import GRU, Dropout, Embedding, Linear, Module
from ..nn.init import scaled_uniform
from ..nn.module import Parameter

__all__ = ["RIB"]


class RIB(Module):
    """Micro-behavior baseline: GRU + attention over (item, op) tuples."""

    def __init__(self, num_items: int, num_ops: int, dim: int = 32, dropout: float = 0.1, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.item_embedding = Embedding(num_items + 1, dim, rng=rng, padding_idx=0)
        self.op_embedding = Embedding(num_ops + 1, dim, rng=rng, padding_idx=0)
        self.gru = GRU(dim, dim, rng=rng)
        self.att = Linear(dim, dim, rng=rng)
        self.q = Parameter(scaled_uniform(rng, (dim,), dim))
        self.dropout = Dropout(dropout, rng=rng)
        self.num_items = num_items

    def encode_sessions(self, batch: SessionBatch) -> Tensor:
        """[B, d] session representations (the scoring-head queries)."""
        x = self.item_embedding(batch.micro_items) + self.op_embedding(batch.micro_ops)
        x = self.dropout(x)
        outputs, _ = self.gru(x, mask=batch.micro_mask)
        energy = self.att(outputs).tanh() @ self.q  # [B, t]
        bias = Tensor(np.where(batch.micro_mask > 0, 0.0, -1e9))
        alpha = (energy + bias).softmax(axis=1)
        return (alpha.unsqueeze(2) * outputs).sum(axis=1)

    def forward(self, batch: SessionBatch) -> Tensor:
        session = self.encode_sessions(batch)
        return session @ self.item_embedding.weight[1:].T
