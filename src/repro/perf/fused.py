"""Fused autograd kernels: single graph nodes with hand-written backwards.

The generic ops in ``repro.autograd.tensor`` compose beautifully but pay
per-op Python overhead (closure allocation, Tensor wrapping, temporary
arrays) that dominates training wall-clock at the batch sizes the paper
uses. Each kernel here replaces a whole composition with ONE graph node:

======================  ====================================================
``addmm``               ``x @ W + b`` (3 nodes -> 1)
``gru_cell``            one GRU timestep incl. mask update (~20 nodes -> 1)
``gru_sequence``        a whole [B, T] GRU unroll (~20*T nodes -> 1)
``embedding_lookup``    gather with scatter-add backward into a buffer the
                        parameter reuses across steps (no fresh
                        ``zeros(num_embeddings, dim)`` per step)
``relation_scores``     dyadic-attention score term ``q_i . e_{r_ij}``
                        without materializing [B, T, T, d]
``relation_values``     dyadic-attention value term
                        ``sum_j alpha_ij e_{r_ij}``, same trick
``log_softmax_nll``     log-softmax + NLL loss (softmax cross-entropy)
======================  ====================================================

Every kernel is verified two ways in ``tests/perf``: against central
finite differences (``repro.autograd.gradcheck``) and against the unfused
composition, in float32 and float64, batched and length-1.

Fusion is globally toggleable (:func:`set_fusion`) so benchmarks can
measure honest before/after numbers and parity tests can compare both
paths; the ``nn`` layers consult :func:`fusion_enabled` on every forward.
"""

from __future__ import annotations

import contextlib

import numpy as np

from ..autograd import tensor as _tensor
from ..autograd.tensor import Tensor, _stable_sigmoid

__all__ = [
    "fusion_enabled",
    "set_fusion",
    "fusion",
    "addmm",
    "gru_cell",
    "gru_sequence",
    "embedding_lookup",
    "relation_scores",
    "relation_values",
    "log_softmax_nll",
]

_FUSION_ENABLED = True


def fusion_enabled() -> bool:
    """Whether the ``nn`` layers should route through the fused kernels."""
    return _FUSION_ENABLED


def set_fusion(enabled: bool) -> bool:
    """Globally enable/disable the fused fast path; returns the old value."""
    global _FUSION_ENABLED
    previous = _FUSION_ENABLED
    _FUSION_ENABLED = bool(enabled)
    return previous


@contextlib.contextmanager
def fusion(enabled: bool):
    """Scoped :func:`set_fusion` (restores the previous setting on exit)."""
    previous = set_fusion(enabled)
    try:
        yield
    finally:
        set_fusion(previous)


def _tracking(*tensors: Tensor) -> bool:
    if not _tensor._GRAD_ENABLED:
        return False
    return any(t is not None and t.requires_grad for t in tensors)


# ----------------------------------------------------------------------
# addmm
# ----------------------------------------------------------------------
def addmm(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight + bias`` as a single node.

    ``x`` is [..., in], ``weight`` is [in, out], ``bias`` is [out] or None.
    The weight gradient is one GEMM over the flattened leading dims instead
    of a matmul-backward plus an unbroadcast reduction for the bias.
    """
    out_data = np.matmul(x.data, weight.data)
    if bias is not None:
        out_data += bias.data
    if not _tracking(x, weight, bias):
        return Tensor(out_data)

    def backward() -> None:
        # Read .data at call time: optimizers rebind parameter arrays, and a
        # replayed tape runs this closure across many steps.
        g = out.grad
        if x.requires_grad:
            x._accumulate(np.matmul(g, weight.data.T))
        if weight.requires_grad or (bias is not None and bias.requires_grad):
            g2 = g.reshape(-1, g.shape[-1])
            if weight.requires_grad:
                x2 = x.data.reshape(-1, x.data.shape[-1])
                weight._accumulate(x2.T @ g2)
            if bias is not None and bias.requires_grad:
                bias._accumulate(g2.sum(axis=0))

    parents = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor._make(out_data, parents, backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            np.matmul(x.data, weight.data, out=out_data)
            if bias is not None:
                np.add(out_data, bias.data, out=out_data)

        _tensor._TAPE._record(out, replay)
    return out


# ----------------------------------------------------------------------
# GRU
# ----------------------------------------------------------------------
def _gru_forward_step(x_t, h_prev, w_ih, w_hh, b_ih, b_hh, d):
    """One raw-NumPy GRU step; returns (h_new, z, r, n, gh_n).

    Matches the unfused composition bit for bit: same gate layout
    [update | reset | candidate], same stable sigmoid, same update order.
    """
    gi = np.matmul(x_t, w_ih) + b_ih
    gh = np.matmul(h_prev, w_hh) + b_hh
    z = _stable_sigmoid(gi[:, :d] + gh[:, :d])
    r = _stable_sigmoid(gi[:, d : 2 * d] + gh[:, d : 2 * d])
    gh_n = gh[:, 2 * d :]
    n = np.tanh(gi[:, 2 * d :] + r * gh_n)
    h_new = (1.0 - z) * n + z * h_prev
    return h_new, z, r, n, gh_n


def _gru_backward_step(g, h_prev, x_t, z, r, n, gh_n, w_ih, w_hh, mask_col):
    """Backprop one step; returns (dgi, dgh, dh_prev_partial).

    ``g`` is the gradient into the (possibly mask-updated) output state;
    ``dh_prev_partial`` excludes the ``dgh @ w_hh.T`` term, which the
    caller adds (it needs ``dgh`` anyway for the weight gradients).
    """
    if mask_col is not None:
        g_new = g * mask_col
        dh_prev = g * (1.0 - mask_col)
    else:
        g_new = g
        dh_prev = 0.0
    dz = g_new * (h_prev - n)
    dn = g_new * (1.0 - z)
    dh_prev = dh_prev + g_new * z
    dn_pre = dn * (1.0 - n * n)
    dr = dn_pre * gh_n
    dgh_n = dn_pre * r
    dz_pre = dz * z * (1.0 - z)
    dr_pre = dr * r * (1.0 - r)
    dgi = np.concatenate([dz_pre, dr_pre, dn_pre], axis=1)
    dgh = np.concatenate([dz_pre, dr_pre, dgh_n], axis=1)
    return dgi, dgh, dh_prev


def gru_cell(
    x: Tensor,
    h: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    b_ih: Tensor,
    b_hh: Tensor,
    mask_col: np.ndarray | None = None,
) -> Tensor:
    """One GRU timestep as a single node (Cho et al., 2014).

    ``x`` is [B, in], ``h`` is [B, d]; gates are fused
    [update | reset | candidate] exactly like :class:`repro.nn.GRUCell`.
    ``mask_col`` ([B, 1], constant) folds the padded-step state carry
    ``m * h_new + (1 - m) * h`` into the same node.
    """
    d = h.data.shape[-1]
    h_new, z, r, n, gh_n = _gru_forward_step(
        x.data, h.data, w_ih.data, w_hh.data, b_ih.data, b_hh.data, d
    )
    out_data = mask_col * h_new + (1.0 - mask_col) * h.data if mask_col is not None else h_new
    if not _tracking(x, h, w_ih, w_hh, b_ih, b_hh):
        return Tensor(out_data)

    def backward() -> None:
        x_data, h_data = x.data, h.data
        dgi, dgh, dh_prev = _gru_backward_step(
            out.grad, h_data, x_data, z, r, n, gh_n, w_ih.data, w_hh.data, mask_col
        )
        if x.requires_grad:
            x._accumulate(np.matmul(dgi, w_ih.data.T))
        if h.requires_grad:
            h._accumulate(dh_prev + np.matmul(dgh, w_hh.data.T))
        if w_ih.requires_grad:
            w_ih._accumulate(x_data.T @ dgi)
        if w_hh.requires_grad:
            w_hh._accumulate(h_data.T @ dgh)
        if b_ih.requires_grad:
            b_ih._accumulate(dgi.sum(axis=0))
        if b_hh.requires_grad:
            b_hh._accumulate(dgh.sum(axis=0))

    out = Tensor._make(out_data, (x, h, w_ih, w_hh, b_ih, b_hh), backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            # Refresh the gate activations captured by the backward closure.
            h_new2, z2, r2, n2, gh_n2 = _gru_forward_step(
                x.data, h.data, w_ih.data, w_hh.data, b_ih.data, b_hh.data, d
            )
            np.copyto(z, z2)
            np.copyto(r, r2)
            np.copyto(n, n2)
            np.copyto(gh_n, gh_n2)
            if mask_col is not None:
                np.multiply(mask_col, h_new2, out=out_data)
                np.add(out_data, (1.0 - mask_col) * h.data, out=out_data)
            else:
                np.copyto(out_data, h_new2)

        operands = () if mask_col is None else (mask_col,)
        _tensor._TAPE._record(out, replay, operands=operands)
    return out


def gru_sequence(
    x: Tensor,
    w_ih: Tensor,
    w_hh: Tensor,
    b_ih: Tensor,
    b_hh: Tensor,
    mask: np.ndarray | None = None,
    h0: Tensor | None = None,
) -> Tensor:
    """A full masked GRU unroll over [B, T, in] as ONE graph node.

    Returns the per-step hidden states [B, T, d]; because padded steps
    carry the state unchanged, ``outputs[:, -1]`` is the final state (this
    is what :class:`repro.nn.GRU` returns as ``final_state``).

    The backward pass replays the T steps in reverse, accumulating the
    weight gradients in place into four preallocated buffers — the
    allocation count is O(1) in T instead of O(T * ops_per_step).
    """
    B, T, _ = x.data.shape
    d = w_hh.data.shape[0]
    x_data = x.data
    w_ih_d, w_hh_d, b_ih_d, b_hh_d = w_ih.data, w_hh.data, b_ih.data, b_hh.data
    h_prev = h0.data if h0 is not None else np.zeros((B, d), dtype=x_data.dtype)
    h0_data = h_prev

    out_data = np.empty((B, T, d), dtype=x_data.dtype)
    zs = np.empty((T, B, d), dtype=x_data.dtype)
    rs = np.empty_like(zs)
    ns = np.empty_like(zs)
    gh_ns = np.empty_like(zs)
    m_cols = None
    if mask is not None:
        m_cols = mask.astype(x_data.dtype)[..., None]  # [B, T, 1]

    for t in range(T):
        h_new, z, r, n, gh_n = _gru_forward_step(
            x_data[:, t, :], h_prev, w_ih_d, w_hh_d, b_ih_d, b_hh_d, d
        )
        if m_cols is not None:
            m = m_cols[:, t, :]
            h_prev = m * h_new + (1.0 - m) * h_prev
        else:
            h_prev = h_new
        out_data[:, t, :] = h_prev
        zs[t], rs[t], ns[t], gh_ns[t] = z, r, n, gh_n

    if not _tracking(x, h0, w_ih, w_hh, b_ih, b_hh):
        return Tensor(out_data)

    def backward() -> None:
        # Re-read parameter/input arrays at call time — optimizers rebind
        # ``p.data``, and a replayed tape reuses this closure across steps.
        x_data = x.data
        w_ih_d, w_hh_d = w_ih.data, w_hh.data
        h_first = h0.data if h0 is not None else h0_data
        g_out = out.grad  # [B, T, d]
        need_w = w_ih.requires_grad or w_hh.requires_grad
        need_b = b_ih.requires_grad or b_hh.requires_grad
        d_w_ih = np.zeros_like(w_ih_d) if w_ih.requires_grad else None
        d_w_hh = np.zeros_like(w_hh_d) if w_hh.requires_grad else None
        d_b_ih = np.zeros_like(b_ih.data) if b_ih.requires_grad else None
        d_b_hh = np.zeros_like(b_hh.data) if b_hh.requires_grad else None
        d_x = np.empty_like(x_data) if x.requires_grad else None
        dh = np.zeros((B, d), dtype=x_data.dtype)
        for t in range(T - 1, -1, -1):
            g = g_out[:, t, :] + dh
            h_before = out_data[:, t - 1, :] if t > 0 else h_first
            m = m_cols[:, t, :] if m_cols is not None else None
            dgi, dgh, dh = _gru_backward_step(
                g, h_before, x_data[:, t, :], zs[t], rs[t], ns[t], gh_ns[t], w_ih_d, w_hh_d, m
            )
            dh = dh + np.matmul(dgh, w_hh_d.T)
            if d_x is not None:
                d_x[:, t, :] = np.matmul(dgi, w_ih_d.T)
            if need_w:
                x_t = x_data[:, t, :]
                if d_w_ih is not None:
                    d_w_ih += x_t.T @ dgi
                if d_w_hh is not None:
                    d_w_hh += h_before.T @ dgh
            if need_b:
                if d_b_ih is not None:
                    d_b_ih += dgi.sum(axis=0)
                if d_b_hh is not None:
                    d_b_hh += dgh.sum(axis=0)
        if d_x is not None:
            x._accumulate(d_x)
        if h0 is not None and h0.requires_grad:
            h0._accumulate(dh)
        if d_w_ih is not None:
            w_ih._accumulate(d_w_ih)
        if d_w_hh is not None:
            w_hh._accumulate(d_w_hh)
        if d_b_ih is not None:
            b_ih._accumulate(d_b_ih)
        if d_b_hh is not None:
            b_hh._accumulate(d_b_hh)

    parents = [x, w_ih, w_hh, b_ih, b_hh]
    if h0 is not None:
        parents.append(h0)
    out = Tensor._make(out_data, tuple(parents), backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            xd = x.data
            wi, wh, bi, bh = w_ih.data, w_hh.data, b_ih.data, b_hh.data
            if m_cols is not None:
                np.copyto(m_cols[..., 0], mask)  # refresh mask snapshot
            h_prev = h0.data if h0 is not None else h0_data
            for t in range(T):
                h_new, z, r, n, gh_n = _gru_forward_step(xd[:, t, :], h_prev, wi, wh, bi, bh, d)
                if m_cols is not None:
                    m = m_cols[:, t, :]
                    h_prev = m * h_new + (1.0 - m) * h_prev
                else:
                    h_prev = h_new
                out_data[:, t, :] = h_prev
                # copy into the buffers the backward closure captured
                np.copyto(zs[t], z)
                np.copyto(rs[t], r)
                np.copyto(ns[t], n)
                np.copyto(gh_ns[t], gh_n)

        operands = () if mask is None else (mask,)
        _tensor._TAPE._record(out, replay, operands=operands)
    return out


# ----------------------------------------------------------------------
# Embedding
# ----------------------------------------------------------------------
def _scatter_add_rows(buf: np.ndarray, indices: np.ndarray, g: np.ndarray) -> None:
    """``buf[indices] += g`` over rows, via one flattened ``bincount``.

    ``np.add.at`` takes the slow buffered-ufunc path; a single bincount
    over ``index * d + col`` keys is an order of magnitude faster. Both
    scan contributions in occurrence order, so the accumulation is
    deterministic; bincount sums in float64, hence the dtype gate.
    """
    if buf.dtype != np.float64:
        np.add.at(buf, indices, g)
        return
    rows, d = buf.shape
    flat_keys = (indices.reshape(-1)[:, None] * d + np.arange(d)).ravel()
    sums = np.bincount(flat_keys, weights=g.reshape(-1), minlength=rows * d)
    buf += sums.reshape(rows, d)


def embedding_lookup(weight: Tensor, indices: np.ndarray) -> Tensor:
    """Row gather with a vectorized ``np.add.at`` scatter backward.

    Unlike the generic ``Tensor.take`` backward (which allocates a fresh
    ``zeros(num_embeddings, dim)`` per lookup per step), the scatter target
    is a buffer cached on the parameter (``weight._grad_buffer``) and
    reused across steps — embedding tables are the largest tensors in
    every model here, so this is the single biggest allocation saved.
    """
    idx_src = indices
    indices = np.asarray(indices, dtype=np.int64)
    out_data = np.take(weight.data, indices, axis=0)
    if not _tracking(weight):
        return Tensor(out_data)

    def backward() -> None:
        g = out.grad
        if weight.grad is None:
            buffer = weight._grad_buffer
            if (
                buffer is None
                or buffer.shape != weight.data.shape
                or buffer.dtype != weight.data.dtype
            ):
                buffer = np.zeros_like(weight.data)
                weight._grad_buffer = buffer
            else:
                buffer.fill(0.0)
            weight.grad = buffer
            weight._grad_owned = True
        elif not weight._grad_owned:
            weight.grad = weight.grad.copy()
            weight._grad_owned = True
        _scatter_add_rows(weight.grad, indices, g)

    out = Tensor._make(out_data, (weight,), backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            if idx_src is not indices:
                # the int64 cast copied; refresh it from the live source
                np.copyto(indices, idx_src, casting="unsafe")
            np.take(weight.data, indices, axis=0, out=out_data)

        _tensor._TAPE._record(out, replay, operands=(idx_src,))
    return out


# ----------------------------------------------------------------------
# Dyadic relation attention (Shaw-style gather-free rewrite)
# ----------------------------------------------------------------------
def _scatter_relations(values: np.ndarray, rel_ids: np.ndarray, R: int) -> np.ndarray:
    """Sum [B, T, T] ``values`` into [B, T, R] buckets keyed by ``rel_ids``.

    One vectorized ``bincount`` over flattened (b, i, r) keys — the scalar
    analogue of the [B, T, T, d] embedding scatter it replaces.
    """
    B, T, _ = values.shape
    flat_keys = (np.arange(B * T)[:, None] * R + rel_ids.reshape(B * T, T)).ravel()
    out = np.bincount(flat_keys, weights=values.ravel(), minlength=B * T * R)
    return out.reshape(B, T, R).astype(values.dtype, copy=False)


def relation_scores(q: Tensor, table: Tensor, rel_ids: np.ndarray) -> Tensor:
    """``out[b,i,j] = q[b,i] . table[rel_ids[b,i,j]]`` as one node.

    The naive composition gathers a [B, T, T, d] tensor of relation
    embeddings and reduces it against ``q``; since the relation vocabulary
    ``R`` is tiny ((num_ops+1)^2), it is far cheaper to project ``q`` onto
    ALL relations at once (``q @ table.T`` -> [B, T, R]) and gather
    scalars. Same math, different summation order — parity with the
    composed version holds to roundoff, not bit-exactly.
    """
    ids_src = rel_ids
    rel_ids = np.asarray(rel_ids, dtype=np.int64)
    R = table.data.shape[0]
    projected = np.matmul(q.data, table.data.T)  # [B, T, R]
    out_data = np.take_along_axis(projected, rel_ids, axis=2)
    if not _tracking(q, table):
        return Tensor(out_data)

    def backward() -> None:
        q_data = q.data
        d_projected = _scatter_relations(out.grad, rel_ids, R)  # [B, T, R]
        if q.requires_grad:
            q._accumulate(np.matmul(d_projected, table.data))
        if table.requires_grad:
            flat = d_projected.reshape(-1, R)
            table._accumulate(flat.T @ q_data.reshape(-1, q_data.shape[-1]))

    out = Tensor._make(out_data, (q, table), backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            if ids_src is not rel_ids:
                np.copyto(rel_ids, ids_src, casting="unsafe")
            np.matmul(q.data, table.data.T, out=projected)
            np.copyto(out_data, np.take_along_axis(projected, rel_ids, axis=2))

        _tensor._TAPE._record(out, replay, operands=(ids_src,))
    return out


def relation_values(alpha: Tensor, table: Tensor, rel_ids: np.ndarray) -> Tensor:
    """``out[b,i] = sum_j alpha[b,i,j] * table[rel_ids[b,i,j]]`` as one node.

    Buckets the attention weights by relation id ([B, T, R] via bincount)
    and hits the tiny relation table with one matmul — no [B, T, T, d]
    gather, no giant broadcast multiply, and the backward scatters scalars
    instead of d-vectors.
    """
    ids_src = rel_ids
    rel_ids = np.asarray(rel_ids, dtype=np.int64)
    R = table.data.shape[0]
    bucketed = _scatter_relations(alpha.data, rel_ids, R)  # [B, T, R]
    out_data = np.matmul(bucketed, table.data)  # [B, T, d]
    if not _tracking(alpha, table):
        return Tensor(out_data)

    def backward() -> None:
        g = out.grad  # [B, T, d]
        if alpha.requires_grad:
            d_bucketed = np.matmul(g, table.data.T)  # [B, T, R]
            alpha._accumulate(np.take_along_axis(d_bucketed, rel_ids, axis=2))
        if table.requires_grad:
            table._accumulate(bucketed.reshape(-1, R).T @ g.reshape(-1, g.shape[-1]))

    out = Tensor._make(out_data, (alpha, table), backward)
    if _tensor._TAPE is not None:

        def replay() -> None:
            if ids_src is not rel_ids:
                np.copyto(rel_ids, ids_src, casting="unsafe")
            np.copyto(bucketed, _scatter_relations(alpha.data, rel_ids, R))
            np.matmul(bucketed, table.data, out=out_data)

        _tensor._TAPE._record(out, replay, operands=(ids_src,))
    return out


# ----------------------------------------------------------------------
# Loss
# ----------------------------------------------------------------------
def log_softmax_nll(logits: Tensor, targets: np.ndarray, total: int | None = None) -> Tensor:
    """Mean negative log-likelihood of ``targets`` under softmax(logits).

    Fuses the max-shift, log-sum-exp, gather, and mean into one node; the
    backward is the textbook ``(softmax - onehot) / batch`` — no [B, C]
    temporaries beyond the cached probabilities.

    ``total`` overrides the divisor of the per-row loss sum (default: the
    batch size). Sharded data-parallel steps score a slice of a batch but
    divide by the full batch size, so summing shard losses in fixed order
    reproduces the whole-batch mean objective.
    """
    tgt_src = targets
    targets = np.asarray(targets, dtype=np.int64)
    batch = logits.data.shape[0]
    divisor = batch if total is None else int(total)
    rows = np.arange(batch)
    shifted = logits.data - logits.data.max(axis=1, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs_at_target = shifted[rows, targets] - lse[:, 0]
    if divisor == batch:
        out_data = -log_probs_at_target.mean()
    else:
        out_data = -(log_probs_at_target.sum() / divisor)
    if not _tracking(logits):
        return Tensor(out_data)

    def backward() -> None:
        scale = out.grad / divisor  # scalar
        d_logits = np.exp(shifted - lse) * scale
        d_logits[rows, targets] -= scale
        logits._accumulate(d_logits)

    out = Tensor._make(np.asarray(out_data), (logits,), backward)
    if _tensor._TAPE is not None:
        dst = out.data  # 0-d loss buffer

        def replay() -> None:
            if tgt_src is not targets:
                np.copyto(targets, tgt_src, casting="unsafe")
            ld = logits.data
            np.subtract(ld, ld.max(axis=1, keepdims=True), out=shifted)
            np.log(np.exp(shifted).sum(axis=1, keepdims=True), out=lse)
            lpt = shifted[rows, targets] - lse[:, 0]
            if divisor == batch:
                dst[...] = -lpt.mean()
            else:
                dst[...] = -(lpt.sum() / divisor)

        _tensor._TAPE._record(out, replay, operands=(tgt_src,))
    return out
