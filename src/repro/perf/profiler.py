"""Op-level profiler for the autograd substrate.

Two hook points, both zero-cost when no profiler is active:

- ``Tensor._make`` reports every backward-node allocation (one per tracked
  op), and ``Tensor.backward`` routes each backward closure through
  :meth:`OpProfiler._run_backward` so per-op backward time is measured.
- ``Module.__call__`` routes through :meth:`OpProfiler._call_module`,
  giving per-module-class call counts plus cumulative and *self* forward
  time (cumulative minus time spent in child modules).

Typical use::

    with OpProfiler() as prof:
        loss = model(batch)
        loss.backward()
    print(prof.table())
    prof.dump_json("profile.json")

The ``repro profile`` CLI subcommand wraps exactly this around a few
training steps; ``docs/performance.md`` documents how to read the output.
"""

from __future__ import annotations

import json
import pathlib
import time
from collections import Counter

from ..autograd import tensor as _tensor
from ..utils import render_table

__all__ = ["OpProfiler", "active_profiler"]

# The active profiler, or None. Module.__call__ reads this module global on
# every call, so activation must go through OpProfiler.enable/disable.
_ACTIVE: "OpProfiler | None" = None


def active_profiler() -> "OpProfiler | None":
    """Return the currently enabled profiler (None when profiling is off)."""
    return _ACTIVE


def _op_name(closure) -> str:
    """Derive the op name from a backward closure's qualname.

    Closures are defined as ``<op>.<locals>.backward`` inside each op, so
    the third-from-last component names the op (``__add__``, ``matmul``,
    ``gru_sequence``, ...).
    """
    qualname = getattr(closure, "__qualname__", "")
    parts = qualname.split(".")
    return parts[-3] if len(parts) >= 3 else (qualname or "op")


class OpProfiler:
    """Collects per-op node counts / backward times and per-module timings.

    Attributes
    ----------
    backward_nodes:
        Total backward-node allocations while enabled. Inference under
        ``no_grad`` must keep this at zero (asserted in ``tests/perf``).
    node_counts:
        Backward-node allocations per op name.
    """

    def __init__(self):
        self.backward_nodes: int = 0
        self.node_counts: Counter[str] = Counter()
        self.backward_stats: dict[str, list] = {}  # name -> [calls, seconds]
        self.module_stats: dict[str, list] = {}  # class -> [calls, cum, self]
        self.replay_stats: dict[str, list] = {}  # slot name -> [calls, seconds]
        # Timeline of (category, name, start_s, duration_s) tuples relative
        # to _origin; exported by dump_trace() in chrome://tracing format.
        self.events: list[tuple[str, str, float, float]] = []
        self._origin = time.perf_counter()
        self._stack: list[float] = []
        self._previous = None

    # -- activation ----------------------------------------------------
    def enable(self) -> "OpProfiler":
        """Install this profiler into the Tensor/Module hook points."""
        global _ACTIVE
        self._previous = _ACTIVE
        _ACTIVE = self
        _tensor._set_profiler(self)
        return self

    def disable(self) -> "OpProfiler":
        """Remove this profiler, restoring whatever was active before."""
        global _ACTIVE
        _ACTIVE = self._previous
        _tensor._set_profiler(self._previous)
        self._previous = None
        return self

    def __enter__(self) -> "OpProfiler":
        return self.enable()

    def __exit__(self, *exc) -> None:
        self.disable()

    def reset(self) -> None:
        """Zero all counters without detaching the hooks."""
        self.backward_nodes = 0
        self.node_counts.clear()
        self.backward_stats.clear()
        self.module_stats.clear()
        self.replay_stats.clear()
        self.events.clear()
        self._origin = time.perf_counter()
        self._stack.clear()

    # -- hook callbacks (called from repro.autograd / repro.nn) --------
    def _record_node(self, closure) -> None:
        self.backward_nodes += 1
        self.node_counts[_op_name(closure)] += 1

    def _run_backward(self, closure) -> None:
        name = _op_name(closure)
        start = time.perf_counter()
        closure()
        elapsed = time.perf_counter() - start
        stats = self.backward_stats.setdefault(name, [0, 0.0])
        stats[0] += 1
        stats[1] += elapsed
        self.events.append(("backward", name, start - self._origin, elapsed))

    def _run_replay_slot(self, name: str, fn) -> None:
        """Time one compiled-tape forward slot (``repro.compile``).

        Replays never call ``Module.forward`` or allocate graph nodes, so
        without this hook a compiled step would profile as empty. Slot
        timings land under ``replay_stats``/``events`` with per-op names
        derived the same way as the backward table, keeping eager and
        compiled tables comparable.
        """
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        stats = self.replay_stats.setdefault(name, [0, 0.0])
        stats[0] += 1
        stats[1] += elapsed
        self.events.append(("replay", name, start - self._origin, elapsed))

    def _call_module(self, module, args, kwargs):
        name = type(module).__name__
        self._stack.append(0.0)
        start = time.perf_counter()
        try:
            return module.forward(*args, **kwargs)
        finally:
            elapsed = time.perf_counter() - start
            child_time = self._stack.pop()
            if self._stack:
                self._stack[-1] += elapsed
            stats = self.module_stats.setdefault(name, [0, 0.0, 0.0])
            stats[0] += 1
            stats[1] += elapsed
            stats[2] += elapsed - child_time
            self.events.append(("forward", name, start - self._origin, elapsed))

    # -- reporting -----------------------------------------------------
    def table(self) -> str:
        """Self/cumulative-time tables for modules and backward ops."""
        sections = []
        if self.module_stats:
            rows = [
                [name, calls, cum * 1e3, self_t * 1e3, self_t / calls * 1e6]
                for name, (calls, cum, self_t) in sorted(
                    self.module_stats.items(), key=lambda kv: -kv[1][2]
                )
            ]
            sections.append(
                "forward (per module class)\n"
                + render_table(
                    ["module", "calls", "cum ms", "self ms", "self us/call"], rows
                )
            )
        if self.node_counts:
            rows = []
            for name, count in self.node_counts.most_common():
                calls, seconds = self.backward_stats.get(name, (0, 0.0))
                rows.append([name, count, calls, seconds * 1e3])
            sections.append(
                "backward ops (node allocations / closure time)\n"
                + render_table(["op", "nodes", "bwd calls", "bwd ms"], rows)
            )
        if self.replay_stats:
            rows = [
                [name, calls, seconds * 1e3, seconds / calls * 1e6]
                for name, (calls, seconds) in sorted(
                    self.replay_stats.items(), key=lambda kv: -kv[1][1]
                )
            ]
            sections.append(
                "compiled replay slots (repro.compile)\n"
                + render_table(["slot", "calls", "cum ms", "us/call"], rows)
            )
        if not sections:
            return "(no profiled activity)"
        return "\n\n".join(sections)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of every counter."""
        return {
            "backward_nodes": self.backward_nodes,
            "node_counts": dict(self.node_counts),
            "backward_ops": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in self.backward_stats.items()
            },
            "modules": {
                name: {"calls": calls, "cum_seconds": cum, "self_seconds": self_t}
                for name, (calls, cum, self_t) in self.module_stats.items()
            },
            "replay_slots": {
                name: {"calls": calls, "seconds": seconds}
                for name, (calls, seconds) in self.replay_stats.items()
            },
        }

    def dump_json(self, path) -> pathlib.Path:
        """Write :meth:`to_dict` to ``path`` and return it."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2) + "\n")
        return path

    def dump_trace(self, path) -> pathlib.Path:
        """Write the recorded timeline as a chrome://tracing JSON file.

        The file loads in ``chrome://tracing`` or https://ui.perfetto.dev:
        forward module calls and backward op closures land on two named
        tracks, as complete ("X") events whose nesting mirrors the module
        call tree. Timestamps are microseconds relative to the profiler's
        construction (or last :meth:`reset`).
        """
        import os

        pid = os.getpid()
        tids = {"forward": 1, "backward": 2, "replay": 3}
        present = {category for category, _, _, _ in self.events}
        trace_events: list[dict] = [
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": category},
            }
            for category, tid in tids.items()
            if category in present
        ]
        for category, name, start, duration in self.events:
            trace_events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "X",
                    "ts": round(start * 1e6, 3),
                    "dur": round(duration * 1e6, 3),
                    "pid": pid,
                    "tid": tids[category],
                }
            )
        path = pathlib.Path(path)
        path.write_text(
            json.dumps({"traceEvents": trace_events, "displayTimeUnit": "ms"}) + "\n"
        )
        return path
