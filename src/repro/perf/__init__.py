"""Performance toolkit: op-level profiler + fused-kernel fast path.

``repro.perf`` is the substrate's answer to "as fast as the hardware
allows" without leaving pure NumPy: :class:`OpProfiler` shows where the
time goes (per-op backward-node counts and times, per-module forward
self/cumulative time), and the fused kernels collapse the hottest op
compositions into single autograd nodes with hand-written backwards.

The ``nn`` layers consult :func:`fusion_enabled` at forward time, so
``set_fusion(False)`` restores the generic composed ops everywhere —
parity tests and the training benchmark rely on that toggle.
"""

from .fused import (
    addmm,
    embedding_lookup,
    fusion,
    fusion_enabled,
    gru_cell,
    gru_sequence,
    log_softmax_nll,
    relation_scores,
    relation_values,
    set_fusion,
)
from .profiler import OpProfiler, active_profiler

__all__ = [
    "OpProfiler",
    "active_profiler",
    "fusion_enabled",
    "set_fusion",
    "fusion",
    "addmm",
    "gru_cell",
    "gru_sequence",
    "embedding_lookup",
    "relation_scores",
    "relation_values",
    "log_softmax_nll",
]
