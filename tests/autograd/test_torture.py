"""Torture tests: deep graphs, heavy sharing, and numerical stability."""

import numpy as np
import pytest

from repro.autograd import Tensor, concat


class TestDeepGraphs:
    def test_thousand_op_chain(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        out = x
        for _ in range(1000):
            out = out * 1.001
        out.backward()
        assert x.grad[0] == pytest.approx(1.001**1000, rel=1e-9)

    def test_deep_tanh_chain_vanishes_but_finite(self):
        x = Tensor(np.ones(4), requires_grad=True)
        out = x
        for _ in range(100):
            out = out.tanh()
        out.sum().backward()
        assert np.isfinite(x.grad).all()

    def test_wide_fan_out(self):
        """One tensor feeding 200 consumers accumulates all contributions."""
        x = Tensor(np.ones(3), requires_grad=True)
        total = (x * 0.0).sum()
        for i in range(200):
            total = total + (x * float(i)).sum()
        total.backward()
        assert np.allclose(x.grad, sum(range(200)))

    def test_shared_subgraph_counted_once_per_path(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        shared = x * 3  # used by two downstream paths
        out = shared * shared + shared
        # d/dx (9x^2 + 3x) = 18x + 3 = 39 at x=2
        out.backward()
        assert np.allclose(x.grad, [39.0])

    def test_recursive_concat_pyramid(self):
        x = Tensor(np.ones(2), requires_grad=True)
        level = [x, x, x, x]
        while len(level) > 1:
            level = [concat(level[i : i + 2]) for i in range(0, len(level), 2)]
        level[0].sum().backward()
        assert np.allclose(x.grad, 4.0)


class TestNumericalStability:
    def test_softmax_with_mask_bias(self):
        """The -1e9 masking pattern must not produce NaNs."""
        scores = np.full((2, 5), -1e9)
        scores[:, 0] = 1.0
        out = Tensor(scores, requires_grad=True).softmax(axis=-1)
        assert np.isfinite(out.data).all()
        assert np.allclose(out.data[:, 0], 1.0)
        out.sum().backward()

    def test_log_softmax_extreme_logits(self):
        logits = Tensor(np.array([[1000.0, 0.0, -1000.0]]), requires_grad=True)
        out = logits.log_softmax(axis=-1)
        assert np.isfinite(out.data[0, 0])
        assert out.data[0, 0] == pytest.approx(0.0, abs=1e-6)

    def test_l2_normalize_tiny_vector(self):
        v = Tensor(np.full(4, 1e-30), requires_grad=True)
        out = v.l2_normalize()
        assert np.isfinite(out.data).all()
        out.sum().backward()
        assert np.isfinite(v.grad).all()

    def test_division_by_small_number_gradient(self):
        x = Tensor(np.array([1.0]), requires_grad=True)
        eps = Tensor(np.array([1e-8]))
        (x / (eps + 1.0)).backward()
        assert np.isfinite(x.grad).all()

    def test_exp_overflow_is_inf_not_nan(self):
        with np.errstate(over="ignore"):
            out = Tensor(np.array([1e4])).exp()
        assert np.isposinf(out.data).all()


class TestBigShapes:
    def test_large_matmul_grad_shapes(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(64, 128)), requires_grad=True)
        b = Tensor(rng.normal(size=(128, 256)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad.shape == a.shape
        assert b.grad.shape == b.shape

    def test_4d_broadcasting_grad(self):
        rng = np.random.default_rng(1)
        a = Tensor(rng.normal(size=(2, 3, 4, 5)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
        (a * b).sum().backward()
        assert b.grad.shape == (4, 5)
        assert np.allclose(b.grad, a.data.sum(axis=(0, 1)))
