"""Property-based tests (hypothesis) for the autograd engine."""

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.autograd import Tensor, check_gradients, concat

settings.register_profile("repro", deadline=None, max_examples=40)
settings.load_profile("repro")


def arrays(max_side=4, min_dims=1, max_dims=3):
    return hnp.arrays(
        dtype=np.float64,
        shape=hnp.array_shapes(min_dims=min_dims, max_dims=max_dims, max_side=max_side),
        elements=st.floats(-5, 5, allow_nan=False, width=64),
    )


class TestAlgebraicProperties:
    @given(arrays())
    def test_add_commutative(self, a):
        x, y = Tensor(a), Tensor(a * 2 - 1)
        assert np.allclose((x + y).data, (y + x).data)

    @given(arrays())
    def test_mul_identity(self, a):
        assert np.allclose((Tensor(a) * 1.0).data, a)

    @given(arrays())
    def test_double_negation(self, a):
        assert np.allclose((-(-Tensor(a))).data, a)

    @given(arrays())
    def test_exp_log_inverse(self, a):
        t = Tensor(np.clip(a, -4, 4))
        assert np.allclose(t.exp().log().data, t.data, atol=1e-9)

    @given(arrays())
    def test_tanh_odd(self, a):
        assert np.allclose(Tensor(a).tanh().data, -((-Tensor(a)).tanh().data))

    @given(arrays())
    def test_sigmoid_symmetry(self, a):
        # sigma(x) + sigma(-x) == 1
        s1 = Tensor(a).sigmoid().data
        s2 = (-Tensor(a)).sigmoid().data
        assert np.allclose(s1 + s2, 1.0)

    @given(arrays(min_dims=2, max_dims=2))
    def test_softmax_is_distribution(self, a):
        out = Tensor(a).softmax(axis=-1).data
        assert np.allclose(out.sum(axis=-1), 1.0)
        assert (out >= 0).all()

    @given(arrays(min_dims=2, max_dims=2))
    def test_softmax_shift_invariant(self, a):
        base = Tensor(a).softmax(axis=-1).data
        shifted = Tensor(a + 100.0).softmax(axis=-1).data
        assert np.allclose(base, shifted, atol=1e-9)

    @given(arrays())
    def test_sum_matches_numpy(self, a):
        assert np.allclose(Tensor(a).sum().data, a.sum())

    @given(arrays(min_dims=2, max_dims=2))
    def test_transpose_involution(self, a):
        t = Tensor(a)
        assert np.allclose(t.T.T.data, a)


class TestGradientProperties:
    @given(arrays(max_side=3))
    def test_sum_gradient_is_ones(self, a):
        t = Tensor(a, requires_grad=True)
        t.sum().backward()
        assert np.allclose(t.grad, np.ones_like(a))

    @given(arrays(max_side=3))
    def test_linear_gradient_is_coefficient(self, a):
        t = Tensor(a, requires_grad=True)
        (t * 3.5).sum().backward()
        assert np.allclose(t.grad, 3.5)

    @given(arrays(max_side=3))
    def test_smooth_composition_gradcheck(self, a):
        t = Tensor(a, requires_grad=True)
        check_gradients(lambda t: (t.tanh() * t.sigmoid()).sum(keepdims=False).reshape(1), [t])

    @given(st.integers(1, 4), st.integers(1, 4), st.integers(1, 4))
    def test_matmul_gradcheck_random_shapes(self, m, k, n):
        rng = np.random.default_rng(m * 100 + k * 10 + n)
        a = Tensor(rng.normal(size=(m, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, n)), requires_grad=True)
        check_gradients(lambda a, b: a @ b, [a, b])

    @given(arrays(max_side=3, min_dims=2, max_dims=2))
    def test_concat_split_gradient(self, a):
        t = Tensor(a, requires_grad=True)
        out = concat([t, t], axis=0)
        out.sum().backward()
        assert np.allclose(t.grad, 2.0)
